"""The event bus: an ordered, bounded, resumable feed of what happened.

Every telemetry-emitting process (a ``repro.service`` shard, the
cluster router) owns one :class:`EventBus`.  An event is a plain
JSON-able dict::

    {"seq": 17, "ts": 12.503, "type": "shard.down",
     "data": {"shard": "http://127.0.0.1:9001"}}

``seq`` is assigned by the bus — strictly monotonic, starting at 1 —
and is the resume cursor of the streaming layer: a consumer that
remembers the last ``seq`` it saw asks for ``?from=<seq>`` and receives
exactly the retained events after it (see docs/TELEMETRY.md for the
resume contract and the event-type catalogue).

The buffer is a fixed-size ring: old events fall off, and
:attr:`dropped` counts how many a late consumer can no longer replay —
a consumer detects the gap as a jump in ``seq``.  Timestamps and waits
go through the injectable :class:`~repro.service.clock.Clock`, so every
streaming test drives time with
:class:`~repro.service.clock.ManualClock` and is deterministic.
"""

from __future__ import annotations

import asyncio
from collections import Counter, deque

from repro.service.clock import Clock

__all__ = ["EventBus", "DEFAULT_CAPACITY"]

#: Default ring-buffer size; at the default 1 s sample cadence this
#: retains over an hour of samples plus every rare lifecycle event.
DEFAULT_CAPACITY = 4096


class EventBus:
    """Bounded, seq-numbered event ring with async wakeups.

    All mutation happens on the owning event-loop thread (the same
    discipline as :class:`~repro.service.metrics.ServiceMetrics`), so
    no locks are needed.
    """

    def __init__(
        self, *, capacity: int = DEFAULT_CAPACITY,
        clock: "Clock | None" = None,
    ) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self.clock = clock or Clock()
        self._buffer: deque[dict] = deque(maxlen=capacity)
        self._seq = 0
        self._by_type: Counter[str] = Counter()
        self._arrival = asyncio.Event()

    # -- producing ---------------------------------------------------------
    def emit(self, type: str, **data) -> dict:
        """Append one event; wakes every waiting consumer."""
        self._seq += 1
        event = {
            "seq": self._seq,
            "ts": round(self.clock.monotonic(), 3),
            "type": type,
            "data": data,
        }
        self._buffer.append(event)
        self._by_type[type] += 1
        arrival, self._arrival = self._arrival, asyncio.Event()
        arrival.set()
        return event

    # -- consuming ---------------------------------------------------------
    @property
    def last_seq(self) -> int:
        """Seq of the newest event (0 before anything was emitted)."""
        return self._seq

    @property
    def dropped(self) -> int:
        """Events that have fallen off the ring (not resumable)."""
        return self._seq - len(self._buffer)

    def since(self, after_seq: int, limit: "int | None" = None) -> list[dict]:
        """Retained events with ``seq > after_seq``, oldest first."""
        out = [ev for ev in self._buffer if ev["seq"] > after_seq]
        return out[:limit] if limit is not None else out

    async def wait_since(
        self, after_seq: int, timeout_s: float,
        limit: "int | None" = None,
    ) -> list[dict]:
        """Like :meth:`since`, but wait up to ``timeout_s`` for news.

        Returns immediately when events past ``after_seq`` are already
        retained; otherwise parks on the next :meth:`emit` through the
        injectable clock (a :class:`ManualClock` drives this
        deterministically).  An empty list means the timeout elapsed.
        """
        events = self.since(after_seq, limit)
        if events or timeout_s <= 0:
            return events
        arrival = self._arrival
        await self.clock.wait(arrival, timeout_s)
        return self.since(after_seq, limit)

    def poll_body(self, after_seq: int, events: list[dict]) -> dict:
        """The long-poll response body both servers return."""
        return {
            "events": events,
            "next_from": events[-1]["seq"] if events else after_seq,
            "last_seq": self._seq,
            "dropped": self.dropped,
        }

    # -- observability -----------------------------------------------------
    def snapshot(self) -> dict:
        """JSON-able counters for ``/metrics``."""
        return {
            "emitted": self._seq,
            "buffered": len(self._buffer),
            "dropped": self.dropped,
            "capacity": self.capacity,
            "by_type": dict(sorted(self._by_type.items())),
        }
