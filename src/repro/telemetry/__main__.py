"""``python -m repro.telemetry`` — watch a live service or cluster.

Subcommands::

    watch <url>    terminal dashboard, redrawn every --interval seconds
    events <url>   tail the raw /v1/events feed (SSE, or --poll)

``watch`` works against both a ``repro.service`` shard and the cluster
router: it polls ``/metrics``, derives request rates from successive
``requests_total`` readings, keeps a short in-process history for the
sparklines, and tails ``/v1/events`` for the recent-events footer.
``events`` prints one line per event (``#seq ts type key=value ...``)
and exits when the server drains or ``--limit`` is reached.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from collections import deque

from repro.service.client import ServiceClient, ServiceError, Unavailable
from repro.telemetry.stream import sse_events
from repro.viz.dashboard import render_dashboard

_CLEAR = "\x1b[2J\x1b[H"


def _format_event(event: dict) -> str:
    data = event.get("data", {})
    bits = " ".join(f"{k}={data[k]}" for k in sorted(data))
    return (f"#{event.get('seq')} {event.get('ts')}s {event.get('type')}"
            + (f" {bits}" if bits else ""))


def _shard_totals(metrics: dict) -> dict[str, int]:
    """``requests_total`` per shard (or the single service's)."""
    if "cluster" in metrics:
        out = {"cluster": metrics["cluster"]["router"].get("requests_total", 0)}
        for url, body in metrics.get("shards", {}).items():
            if isinstance(body, dict):
                out[url] = body.get("requests_total", 0)
        return out
    return {"service": metrics.get("requests_total", 0)}


def _cmd_watch(args: argparse.Namespace) -> int:
    client = ServiceClient(args.url, retries=1)
    history: dict = {"rps": {}}
    recent: deque = deque(maxlen=12)
    prev_totals: dict[str, int] = {}
    prev_t = 0.0
    cursor = 0
    frames = 0
    while True:
        try:
            metrics = client.metrics()
        except (ServiceError, Unavailable) as exc:
            print(f"watch: {args.url} unreachable: {exc}", file=sys.stderr)
            return 1
        now = time.monotonic()
        totals = _shard_totals(metrics)
        if prev_t and now > prev_t:
            dt = now - prev_t
            for name, total in totals.items():
                delta = max(0, total - prev_totals.get(name, total))
                history["rps"].setdefault(name, []).append(delta / dt)
                del history["rps"][name][:-64]
        prev_totals, prev_t = totals, now
        try:
            body = client.events(from_seq=cursor, timeout_s=0.0, limit=200)
            recent.extend(body["events"])
            cursor = body["next_from"]
        except (ServiceError, Unavailable):
            pass  # a pre-telemetry server: dashboard without the footer
        frame = render_dashboard(metrics, source=args.url, history=history,
                                 events=list(recent))
        if args.once:
            print(frame)
            return 0
        print((_CLEAR if not args.no_clear else "") + frame, flush=True)
        frames += 1
        if args.iterations and frames >= args.iterations:
            return 0
        time.sleep(args.interval)


def _cmd_events(args: argparse.Namespace) -> int:
    try:
        if args.poll:
            client = ServiceClient(args.url, retries=1)
            cursor = args.from_seq
            printed = 0
            while args.limit is None or printed < args.limit:
                body = client.events(from_seq=cursor, timeout_s=20.0,
                                     limit=args.limit)
                for event in body["events"]:
                    print(_format_event(event) if not args.json
                          else json.dumps(event, sort_keys=True))
                    printed += 1
                cursor = body["next_from"]
            return 0
        for event in sse_events(args.url, from_seq=args.from_seq,
                                limit=args.limit):
            print(_format_event(event) if not args.json
                  else json.dumps(event, sort_keys=True), flush=True)
        return 0
    except (ServiceError, Unavailable, ConnectionError, OSError) as exc:
        print(f"events: {args.url}: {exc}", file=sys.stderr)
        return 1


def main(argv: "list[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.telemetry",
        description="Live telemetry: terminal dashboard and event tail.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    watch = sub.add_parser("watch", help="terminal dashboard")
    watch.add_argument("url", help="service or router base URL")
    watch.add_argument("--interval", type=float, default=2.0,
                       help="seconds between frames (default 2)")
    watch.add_argument("--iterations", type=int, default=0,
                       help="stop after N frames (default: run forever)")
    watch.add_argument("--once", action="store_true",
                       help="render a single frame and exit")
    watch.add_argument("--no-clear", action="store_true",
                       help="do not clear the screen between frames")
    watch.set_defaults(func=_cmd_watch)

    events = sub.add_parser("events", help="tail the raw event feed")
    events.add_argument("url", help="service or router base URL")
    events.add_argument("--from", dest="from_seq", type=int, default=0,
                        help="resume after this sequence id (default 0)")
    events.add_argument("--limit", type=int, default=None,
                        help="server closes the stream after N events")
    events.add_argument("--poll", action="store_true",
                        help="long-poll instead of SSE")
    events.add_argument("--json", action="store_true",
                        help="print full event JSON per line")
    events.set_defaults(func=_cmd_events)

    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except KeyboardInterrupt:
        return 130
    except BrokenPipeError:  # e.g. `... events <url> | head`
        return 0


if __name__ == "__main__":
    sys.exit(main())
