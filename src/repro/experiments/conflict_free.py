"""Naive vs conflict-free kernel comparison (Table I/II-style rows).

For each of the three kernels the bank-conflict-free suite covers —
sort, merge, permutation — this driver measures the naive variant and
the conflict-free variant from
:mod:`repro.core.kernels.conflict_free` over a latency grid, reporting
cycles and avoidable excess slots per point, and runs the trace-level
certificate pass from :mod:`repro.analysis.certify` on every
conflict-free kernel.  The reproduction criteria:

* every conflict-free point shows **zero** excess slots while the
  conflicted naive points show plenty;
* the unfused conflict-free sort matches the naive network
  transaction-for-transaction — equal transaction counts, and its slot
  total is *exactly* the naive total minus the naive conflict excess —
  while costing fewer cycles at every latency; the fused burst variant
  beats both;
* the conflict-free permutation beats the naive schedule on the
  bank-adversarial target at every latency;
* all three conflict-free kernels are **machine-certified**: identical
  access streams across random inputs, zero avoidable conflicts.

Grids and point tasks are module-level so the sweep executor can shard
and cache them like the table drivers.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from functools import partial
from typing import Callable

import numpy as np

from repro.analysis.certify import CertificateReport, certify_launch
from repro.analysis.executor import SweepExecutor, SweepProgress
from repro.machine.engine import MachineEngine
from repro.machine.policy import DMMBankPolicy
from repro.params import MachineParams
from repro.core.kernels.conflict_free import (
    flat_cf_merge,
    flat_cf_permutation,
    flat_cf_sort,
)
from repro.core.kernels.merge import flat_merge
from repro.core.kernels.sorting import flat_bitonic_sort

__all__ = [
    "ConflictFreeResult",
    "reproduce_conflict_free",
    "conflict_free_task",
    "CF_GRID",
    "CF_LATENCIES",
]

CF_LATENCIES = (4, 16, 64)
_N, _W, _P = 256, 8, 32

#: One point per (kernel, variant, latency).
CF_GRID = tuple(
    dict(kernel=kernel, variant=variant, n=_N, w=_W, p=_P, l=l)
    for kernel, variants in (
        ("sort", ("naive", "conflict-free", "fused")),
        ("merge", ("naive", "conflict-free")),
        ("permutation", ("naive", "conflict-free")),
    )
    for variant in variants
    for l in CF_LATENCIES
)


def _rng(seed: int, *parts) -> np.random.Generator:
    material = "conflict-free:" + ":".join(str(p) for p in parts)
    digest = hashlib.sha256(f"{material}:{seed}".encode()).digest()
    return np.random.default_rng(int.from_bytes(digest[:8], "little"))


def _engine(q: dict, mode: str) -> MachineEngine:
    return MachineEngine(
        MachineParams(width=q["w"], latency=q["l"]), DMMBankPolicy(),
        name="dmm", mode=mode,
    )


def _adversarial_perm(n: int, w: int) -> np.ndarray:
    """Transpose-style permutation: naive write rounds are one-bank."""
    i = np.arange(n, dtype=np.int64)
    return (i % w) * (n // w) + i // w


def conflict_free_task(
    q: dict, *, seed: int, mode: str = "batch"
) -> tuple[int, dict]:
    """One grid point: cost ``q['kernel']`` under ``q['variant']``."""
    n, p = q["n"], q["p"]
    eng = _engine(q, mode)
    if q["kernel"] == "sort":
        values = _rng(seed, "sort", n).standard_normal(n)
        if q["variant"] == "naive":
            _, report = flat_bitonic_sort(eng, values, p)
        else:
            _, report = flat_cf_sort(eng, values, p,
                                     fused=q["variant"] == "fused")
    elif q["kernel"] == "merge":
        rng = _rng(seed, "merge", n)
        a = np.sort(rng.standard_normal(n - n // 3))
        b = np.sort(rng.standard_normal(n // 3))
        if q["variant"] == "naive":
            _, report = flat_merge(eng, a, b, p)
        else:
            _, report = flat_cf_merge(eng, a, b, p)
    else:
        values = _rng(seed, "perm", n).standard_normal(n)
        perm = _adversarial_perm(n, q["w"])
        schedule = "naive" if q["variant"] == "naive" else "conflict-free"
        _, report = flat_cf_permutation(eng, values, perm, p,
                                        schedule=schedule)
    excess = sum(s.excess_slots for s in report.unit_stats.values())
    return report.cycles, {
        "engine": report.engine,
        "excess": excess,
        "slots": report.total_slots(),
        "transactions": report.total_transactions(),
    }


def _certificates(seed: int) -> dict[str, CertificateReport]:
    """The machine-checked pass over the three conflict-free kernels."""
    n, w, p = _N, _W, _P
    l = CF_LATENCIES[0]
    params = MachineParams(width=w, latency=l)

    def eng():
        return MachineEngine(params, DMMBankPolicy(), name="dmm")

    perm = _adversarial_perm(n, w)

    def sort_run(rng, trace):
        flat_cf_sort(eng(), rng.standard_normal(n), p, trace=trace)

    def merge_run(rng, trace):
        a = np.sort(rng.standard_normal(n - n // 3))
        b = np.sort(rng.standard_normal(n // 3))
        flat_cf_merge(eng(), a, b, p, trace=trace)

    def perm_run(rng, trace):
        flat_cf_permutation(eng(), rng.standard_normal(n), perm, p,
                            trace=trace)

    return {
        "sort": certify_launch(sort_run, width=w, seed=seed),
        "merge": certify_launch(merge_run, width=w, seed=seed),
        "permutation": certify_launch(perm_run, width=w, seed=seed),
    }


@dataclass(frozen=True)
class ConflictFreeResult:
    """Measured naive-vs-conflict-free rows plus machine certificates."""

    #: ``rows[(kernel, variant, l)]`` = dict with ``cycles``,
    #: ``excess``, ``slots``, ``transactions``.
    rows: dict
    certificates: dict[str, CertificateReport]

    def render(self) -> str:
        lines = [
            "Conflict-free kernel suite "
            f"(flat DMM, n={_N} w={_W} p={_P})",
            "",
            f"{'kernel':<12} {'variant':<14} "
            + "".join(f"l={l:<10}" for l in CF_LATENCIES)
            + "excess",
        ]
        for kernel, variants in (
            ("sort", ("naive", "conflict-free", "fused")),
            ("merge", ("naive", "conflict-free")),
            ("permutation", ("naive", "conflict-free")),
        ):
            for variant in variants:
                cells = []
                excess = 0
                for l in CF_LATENCIES:
                    row = self.rows[(kernel, variant, l)]
                    cells.append(f"{row['cycles']:<12}")
                    excess = max(excess, row["excess"])
                lines.append(
                    f"{kernel:<12} {variant:<14} " + "".join(cells)
                    + f"{excess}"
                )
            lines.append("")
        lines.append("machine-checked certificates:")
        for kernel, cert in self.certificates.items():
            verdict = "CERTIFIED" if cert.certified else "REFUSED"
            lines.append(
                f"  {kernel:<12} {verdict}  "
                f"(oblivious={cert.oblivious}, "
                f"excess={cert.avoidable_excess_slots}, "
                f"{cert.transactions} transactions x {cert.runs} inputs)"
            )
        return "\n".join(lines)

    def conflict_free_holds(self) -> bool:
        """The reproduction criteria (module docstring)."""
        ok = all(c.certified for c in self.certificates.values())
        for (kernel, variant, l), row in self.rows.items():
            if variant != "naive":
                ok &= row["excess"] == 0
        for l in CF_LATENCIES:
            naive = self.rows[("sort", "naive", l)]
            parity = self.rows[("sort", "conflict-free", l)]
            fused = self.rows[("sort", "fused", l)]
            # Transaction parity: same transaction count, and the slot
            # total drops by exactly the naive conflict excess.  (In
            # cycle space the win is smaller — the pipeline hides part
            # of the excess behind latency — so slots, not cycles, is
            # where the exact identity lives.)
            ok &= parity["transactions"] == naive["transactions"]
            ok &= parity["slots"] == naive["slots"] - naive["excess"]
            ok &= fused["cycles"] < parity["cycles"] < naive["cycles"]
            pn = self.rows[("permutation", "naive", l)]
            pc = self.rows[("permutation", "conflict-free", l)]
            ok &= pc["cycles"] < pn["cycles"]
        return ok


def reproduce_conflict_free(
    seed: int = 20130520,
    *,
    jobs: int | str = 1,
    cache: bool = False,
    cache_dir=None,
    mode: str = "batch",
    progress: "Callable[[SweepProgress], None] | None" = None,
) -> ConflictFreeResult:
    """Measure the grid and run the certificate pass."""
    executor = SweepExecutor(
        jobs=jobs, cache=cache, cache_dir=cache_dir, progress=progress
    )
    points = executor.run(
        partial(conflict_free_task, seed=seed, mode=mode), CF_GRID,
        mode=mode, label="conflict-free/variants",
    )
    rows = {
        (pt.params["kernel"], pt.params["variant"], pt.params["l"]):
            {"cycles": pt.cycles, **{k: pt.extra[k] for k in
                                     ("excess", "slots", "transactions")}}
        for pt in points
    }
    return ConflictFreeResult(
        rows=rows, certificates=_certificates(seed))
