"""Ablation drivers: what each modeled mechanism contributes.

Programmatic versions of ``benchmarks/bench_ablations.py`` for the CLI:
pipelining on/off, the three slot policies under stride sweeps, and the
shared-tile padding effect.  Each ablation is a grid of independent
simulator launches, so all three route through the sweep executor
(sharding, caching, progress) like the table drivers; the grids and
point tasks are module-level so the benchmarks reuse the same cache
entries.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from functools import partial
from typing import Callable

import numpy as np

from repro.analysis.executor import SweepExecutor, SweepProgress
from repro.machine.engine import MachineEngine
from repro.machine.hmm import HMMEngine
from repro.machine.policy import DMMBankPolicy, IdealPolicy, UMMGroupPolicy
from repro.params import HMMParams, MachineParams
from repro.core.kernels.contiguous import contiguous_read, strided_read
from repro.core.kernels.matmul import hmm_transpose

__all__ = [
    "AblationsResult",
    "reproduce_ablations",
    "pipelining_task",
    "policy_task",
    "padding_task",
]

#: ABL-1: contiguous read with the pipelined port on and off.
PIPELINING_GRID = tuple(
    dict(n=1 << 12, p=512, w=16, l=l, pipelined=pipelined)
    for l in (8, 64, 256)
    for pipelined in (True, False)
)

#: ABL-2: stride-s reads under each slot policy.
POLICY_GRID = tuple(
    dict(n=1 << 12, p=256, w=16, l=8, stride=stride, policy=policy)
    for stride in (1, 2, 4, 16, 17)
    for policy in ("dmm", "umm", "ideal")
)

#: ABL-3: the tiled transpose with and without the ``w + 1`` padding.
PADDING_GRID = tuple(
    dict(t=64, d=4, w=16, l=l, padded=padded)
    for l in (2, 32)
    for padded in (False, True)
)

_POLICIES = {
    "dmm": DMMBankPolicy,
    "umm": UMMGroupPolicy,
    "ideal": IdealPolicy,
}


def pipelining_task(q: dict, *, mode: str = "batch") -> tuple[int, dict]:
    """ABL-1 point: contiguous read, pipelined per ``q['pipelined']``."""
    eng = MachineEngine(
        MachineParams(width=q["w"], latency=q["l"]),
        UMMGroupPolicy(),
        pipelined=bool(q["pipelined"]),
        mode=mode,
    )
    a = eng.alloc(q["n"])
    report = eng.launch(contiguous_read(a, q["n"]), q["p"])
    return report.cycles, {"engine": report.engine}


def policy_task(q: dict, *, mode: str = "batch") -> tuple[int, dict]:
    """ABL-2 point: stride-``q['stride']`` read under ``q['policy']``."""
    eng = MachineEngine(
        MachineParams(width=q["w"], latency=q["l"]),
        _POLICIES[q["policy"]](),
        mode=mode,
    )
    a = eng.alloc(q["n"])
    report = eng.launch(strided_read(a, q["n"], q["stride"]), q["p"])
    return report.cycles, {"engine": report.engine}


def padding_task(
    q: dict, *, seed: int, mode: str = "batch"
) -> tuple[int, dict]:
    """ABL-3 point: ``t x t`` tiled transpose, padded per ``q['padded']``."""
    material = f"ablation-padding:{seed}:{q['t']}"
    digest = hashlib.sha256(material.encode()).digest()
    rng = np.random.default_rng(int.from_bytes(digest[:8], "little"))
    matrix = rng.normal(size=(q["t"], q["t"]))
    params = HMMParams(num_dmms=q["d"], width=q["w"], global_latency=q["l"])
    _, report = hmm_transpose(
        HMMEngine(params, mode=mode), matrix, padded=bool(q["padded"])
    )
    return report.cycles, {"engine": report.engine}


@dataclass(frozen=True)
class AblationsResult:
    """Measured effect of each mechanism."""

    #: (latency, pipelined cycles, unpipelined cycles) rows.
    pipelining: tuple[tuple[int, int, int], ...]
    #: (stride, dmm, umm, ideal) rows.
    policies: tuple[tuple[int, int, int, int], ...]
    #: (latency, naive cycles, padded cycles) rows.
    padding: tuple[tuple[int, int, int], ...]

    def render(self) -> str:
        lines = ["Ablations", "", "pipelining (contiguous read, n=4096 w=16 p=512):"]
        for l, piped, serial in self.pipelining:
            lines.append(
                f"  l={l:4d}: pipelined {piped:6d}  serialized {serial:7d}  "
                f"({serial / piped:.1f}x)"
            )
        lines.append("")
        lines.append("slot policies (stride-s read, n=4096 w=16 l=8 p=256):")
        for stride, dmm, umm, ideal in self.policies:
            lines.append(
                f"  s={stride:3d}: DMM {dmm:6d}  UMM {umm:6d}  ideal {ideal:6d}"
            )
        lines.append("")
        lines.append("shared-tile padding (64x64 transpose, d=4 w=16):")
        for l, naive, padded in self.padding:
            lines.append(
                f"  l={l:3d}: naive {naive:6d}  padded {padded:6d}  "
                f"({naive / padded:.2f}x)"
            )
        return "\n".join(lines)

    def mechanisms_all_matter(self) -> bool:
        """The reproduction criterion: every mechanism shows its effect."""
        pipelining_helps = all(s > p for _, p, s in self.pipelining)
        stride_w = next(r for r in self.policies if r[0] == 16)
        policies_charge = stride_w[1] > 4 * stride_w[3]
        padding_helps = all(n > p for _, n, p in self.padding)
        return pipelining_helps and policies_charge and padding_helps


def reproduce_ablations(
    seed: int = 20130520,
    *,
    jobs: int | str = 1,
    cache: bool = False,
    cache_dir=None,
    mode: str = "batch",
    progress: "Callable[[SweepProgress], None] | None" = None,
) -> AblationsResult:
    """Run the three ablations and collect the rows.

    ``jobs``/``cache``/``mode`` configure the sweep executor; cycle
    counts are identical for every setting."""
    executor = SweepExecutor(
        jobs=jobs, cache=cache, cache_dir=cache_dir, progress=progress
    )

    pipe = executor.run(
        partial(pipelining_task, mode=mode), PIPELINING_GRID,
        mode=mode, label="ablations/pipelining",
    )
    by_pipe = {
        (pt.params["l"], pt.params["pipelined"]): pt.cycles for pt in pipe
    }
    pipelining = tuple(
        (l, by_pipe[(l, True)], by_pipe[(l, False)]) for l in (8, 64, 256)
    )

    pol = executor.run(
        partial(policy_task, mode=mode), POLICY_GRID,
        mode=mode, label="ablations/policies",
    )
    by_pol = {
        (pt.params["stride"], pt.params["policy"]): pt.cycles for pt in pol
    }
    policies = tuple(
        (s, by_pol[(s, "dmm")], by_pol[(s, "umm")], by_pol[(s, "ideal")])
        for s in (1, 2, 4, 16, 17)
    )

    pad = executor.run(
        partial(padding_task, seed=seed, mode=mode), PADDING_GRID,
        mode=mode, label="ablations/padding",
    )
    by_pad = {(pt.params["l"], pt.params["padded"]): pt.cycles for pt in pad}
    padding = tuple(
        (l, by_pad[(l, False)], by_pad[(l, True)]) for l in (2, 32)
    )

    return AblationsResult(
        pipelining=pipelining,
        policies=policies,
        padding=padding,
    )
