"""Ablation drivers: what each modeled mechanism contributes.

Programmatic versions of ``benchmarks/bench_ablations.py`` for the CLI:
pipelining on/off, the three slot policies under stride sweeps, and the
shared-tile padding effect.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.machine.engine import MachineEngine
from repro.machine.hmm import HMMEngine
from repro.machine.policy import DMMBankPolicy, IdealPolicy, UMMGroupPolicy
from repro.params import HMMParams, MachineParams
from repro.core.kernels.contiguous import contiguous_read, strided_read
from repro.core.kernels.matmul import hmm_transpose

__all__ = ["AblationsResult", "reproduce_ablations"]


@dataclass(frozen=True)
class AblationsResult:
    """Measured effect of each mechanism."""

    #: (latency, pipelined cycles, unpipelined cycles) rows.
    pipelining: tuple[tuple[int, int, int], ...]
    #: (stride, dmm, umm, ideal) rows.
    policies: tuple[tuple[int, int, int, int], ...]
    #: (latency, naive cycles, padded cycles) rows.
    padding: tuple[tuple[int, int, int], ...]

    def render(self) -> str:
        lines = ["Ablations", "", "pipelining (contiguous read, n=4096 w=16 p=512):"]
        for l, piped, serial in self.pipelining:
            lines.append(
                f"  l={l:4d}: pipelined {piped:6d}  serialized {serial:7d}  "
                f"({serial / piped:.1f}x)"
            )
        lines.append("")
        lines.append("slot policies (stride-s read, n=4096 w=16 l=8 p=256):")
        for stride, dmm, umm, ideal in self.policies:
            lines.append(
                f"  s={stride:3d}: DMM {dmm:6d}  UMM {umm:6d}  ideal {ideal:6d}"
            )
        lines.append("")
        lines.append("shared-tile padding (64x64 transpose, d=4 w=16):")
        for l, naive, padded in self.padding:
            lines.append(
                f"  l={l:3d}: naive {naive:6d}  padded {padded:6d}  "
                f"({naive / padded:.2f}x)"
            )
        return "\n".join(lines)

    def mechanisms_all_matter(self) -> bool:
        """The reproduction criterion: every mechanism shows its effect."""
        pipelining_helps = all(s > p for _, p, s in self.pipelining)
        stride_w = next(r for r in self.policies if r[0] == 16)
        policies_charge = stride_w[1] > 4 * stride_w[3]
        padding_helps = all(n > p for _, n, p in self.padding)
        return pipelining_helps and policies_charge and padding_helps


def reproduce_ablations(seed: int = 20130520) -> AblationsResult:
    """Run the three ablations and collect the rows."""
    rng = np.random.default_rng(seed)

    pipelining = []
    for l in (8, 64, 256):
        rows = {}
        for pipelined in (True, False):
            eng = MachineEngine(
                MachineParams(width=16, latency=l),
                UMMGroupPolicy(),
                pipelined=pipelined,
            )
            a = eng.alloc(1 << 12)
            rows[pipelined] = eng.launch(contiguous_read(a, 1 << 12), 512).cycles
        pipelining.append((l, rows[True], rows[False]))

    policies = []
    for stride in (1, 2, 4, 16, 17):
        cycles = []
        for policy in (DMMBankPolicy(), UMMGroupPolicy(), IdealPolicy()):
            eng = MachineEngine(MachineParams(width=16, latency=8), policy)
            a = eng.alloc(1 << 12)
            cycles.append(eng.launch(strided_read(a, 1 << 12, stride), 256).cycles)
        policies.append((stride, *cycles))

    padding = []
    matrix = rng.normal(size=(64, 64))
    for l in (2, 32):
        params = HMMParams(num_dmms=4, width=16, global_latency=l)
        _, naive = hmm_transpose(HMMEngine(params), matrix, padded=False)
        _, padded = hmm_transpose(HMMEngine(params), matrix, padded=True)
        padding.append((l, naive.cycles, padded.cycles))

    return AblationsResult(
        pipelining=tuple(pipelining),
        policies=tuple(policies),
        padding=tuple(padding),
    )
