"""Table II reproduction driver: optimality against the lower bounds."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.lower_bounds import CONV_BOUNDS, SUM_BOUNDS
from repro.analysis.optimality import OptimalityReport, check_optimality
from repro.analysis.tables import render_table2
from repro.analysis.terms import Params
from repro.experiments.table1 import (
    CONV_GRID,
    SUM_GRID,
    measure_convolution,
    measure_sum,
)

__all__ = ["Table2Result", "reproduce_table2"]

MODELS = ("pram", "dmm", "umm", "hmm")


@dataclass(frozen=True)
class Table2Result:
    """Optimality reports for every model on both problems."""

    sum_reports: dict[str, OptimalityReport]
    conv_reports: dict[str, OptimalityReport]

    def render(self) -> str:
        lines = [render_table2(), "", "Empirical optimality (measured vs "
                 "max limitation across the sweep):", ""]
        for problem, reports in (
            ("sum", self.sum_reports),
            ("convolution", self.conv_reports),
        ):
            for model in MODELS:
                lines.append(f"{problem:>12} on {model:>4}: "
                             f"{reports[model].describe()}")
        return "\n".join(lines)

    def all_sound_and_tight(self, constant: float = 16.0) -> bool:
        """Every run respects every limitation and stays within
        ``constant`` of the bound — the optimality theorems."""
        return all(
            r.tight_within(constant)
            for r in (*self.sum_reports.values(), *self.conv_reports.values())
        )


def reproduce_table2(seed: int = 20130520) -> Table2Result:
    """Measure both problems over the grids and check every model's
    lower bounds."""
    rng = np.random.default_rng(seed)

    sum_points = [Params(**q) for q in SUM_GRID]
    sum_reports = {}
    sum_inputs = [rng.normal(size=q["n"]) for q in SUM_GRID]
    for model in MODELS:
        measured = [
            measure_sum(model, q, vals)
            for q, vals in zip(SUM_GRID, sum_inputs)
        ]
        sum_reports[model] = check_optimality(
            SUM_BOUNDS[model], sum_points, measured
        )

    conv_points = [Params(**q) for q in CONV_GRID]
    conv_inputs = [
        (rng.normal(size=q["k"]), rng.normal(size=q["n"] + q["k"] - 1))
        for q in CONV_GRID
    ]
    conv_reports = {}
    for model in MODELS:
        measured = [
            measure_convolution(model, q, x, y)
            for q, (x, y) in zip(CONV_GRID, conv_inputs)
        ]
        conv_reports[model] = check_optimality(
            CONV_BOUNDS[model], conv_points, measured
        )
    return Table2Result(sum_reports=sum_reports, conv_reports=conv_reports)
