"""Table II reproduction driver: optimality against the lower bounds.

The measurement sweeps are shared with the Table I driver (same task
functions, same grids, same per-point inputs), so a cached run of either
table warms the other: ``python -m repro.experiments all`` re-measures
nothing the second time.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import partial
from typing import Callable

from repro.analysis.executor import SweepExecutor, SweepProgress
from repro.analysis.lower_bounds import CONV_BOUNDS, SUM_BOUNDS
from repro.analysis.optimality import OptimalityReport, check_optimality
from repro.analysis.tables import render_table2
from repro.analysis.terms import Params
from repro.experiments.table1 import (
    CONV_GRID,
    SUM_GRID,
    conv_task,
    sum_task,
)

__all__ = ["Table2Result", "reproduce_table2"]

MODELS = ("pram", "dmm", "umm", "hmm")


@dataclass(frozen=True)
class Table2Result:
    """Optimality reports for every model on both problems."""

    sum_reports: dict[str, OptimalityReport]
    conv_reports: dict[str, OptimalityReport]

    def render(self) -> str:
        lines = [render_table2(), "", "Empirical optimality (measured vs "
                 "max limitation across the sweep):", ""]
        for problem, reports in (
            ("sum", self.sum_reports),
            ("convolution", self.conv_reports),
        ):
            for model in MODELS:
                lines.append(f"{problem:>12} on {model:>4}: "
                             f"{reports[model].describe()}")
        return "\n".join(lines)

    def all_sound_and_tight(self, constant: float = 16.0) -> bool:
        """Every run respects every limitation and stays within
        ``constant`` of the bound — the optimality theorems."""
        return all(
            r.tight_within(constant)
            for r in (*self.sum_reports.values(), *self.conv_reports.values())
        )


def reproduce_table2(
    seed: int = 20130520,
    *,
    jobs: int | str = 1,
    cache: bool = False,
    cache_dir=None,
    mode: str = "batch",
    progress: "Callable[[SweepProgress], None] | None" = None,
) -> Table2Result:
    """Measure both problems over the grids and check every model's
    lower bounds.  ``jobs``/``cache``/``mode`` configure the sweep
    executor; measured cycles are identical for every setting."""
    executor = SweepExecutor(
        jobs=jobs, cache=cache, cache_dir=cache_dir, progress=progress
    )

    sum_points = [Params(**q) for q in SUM_GRID]
    sum_reports = {}
    for model in MODELS:
        measured = [
            pt.cycles
            for pt in executor.run(
                partial(sum_task, model=model, seed=seed, mode=mode),
                sum_points,
                mode=mode,
                label=f"table2/sum/{model}",
            )
        ]
        sum_reports[model] = check_optimality(
            SUM_BOUNDS[model], sum_points, measured
        )

    conv_points = [Params(**q) for q in CONV_GRID]
    conv_reports = {}
    for model in MODELS:
        measured = [
            pt.cycles
            for pt in executor.run(
                partial(conv_task, model=model, seed=seed, mode=mode),
                conv_points,
                mode=mode,
                label=f"table2/conv/{model}",
            )
        ]
        conv_reports[model] = check_optimality(
            CONV_BOUNDS[model], conv_points, measured
        )
    return Table2Result(sum_reports=sum_reports, conv_reports=conv_reports)
