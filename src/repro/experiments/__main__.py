"""Command-line entry point: ``python -m repro.experiments``.

Subcommands::

    python -m repro.experiments figures    # Figures 1-5
    python -m repro.experiments table1     # Table I sweep + fits
    python -m repro.experiments table2     # Table II optimality checks
    python -m repro.experiments ablations  # mechanism ablations
    python -m repro.experiments conflict-free  # naive vs conflict-free kernels
    python -m repro.experiments all        # everything
    python -m repro.experiments all -o DIR # also write artifacts to DIR

Sweep execution flags (see docs/PERFORMANCE.md, "Parallel sweeps & the
result cache")::

    --jobs N|auto   # shard sweeps over N worker processes
    --mode MODE     # evaluation engine: batch (default), event, or replay
    --no-cache      # skip the persistent result cache
    --cache-stats   # print cache statistics (standalone or after a run)
    --advise        # advisor verdict per measured launch
    --tune          # autotune the demo tasks (docs/TUNER.md)

Results are identical for every jobs/mode/cache setting; a warm cache
makes reruns all cache hits.  ``--mode replay`` additionally keeps a
compiled-trace store (``benchmarks/.store/trace``) so launches repeated
at different latencies re-cost a stored trace instead of re-executing
(see docs/PERFORMANCE.md, "Trace replay").
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys

from repro.analysis.advisor import diagnose
from repro.analysis.executor import SweepExecutor, SweepProgress
from repro.analysis.terms import Params
from repro.experiments.ablations import reproduce_ablations
from repro.experiments.conflict_free import reproduce_conflict_free
from repro.experiments.figures import (
    FIG4_LATENCY_GRID,
    fig4_launch_report,
    reproduce_figures,
)
from repro.experiments.table1 import (
    CONV_GRID,
    SUM_GRID,
    conv_launch_report,
    reproduce_table1,
    sum_launch_report,
)
from repro.experiments.table2 import reproduce_table2
from repro.params import HMMParams, MachineParams


def _write(out_dir: pathlib.Path | None, name: str, text: str) -> None:
    print(text)
    print()
    if out_dir is not None:
        out_dir.mkdir(parents=True, exist_ok=True)
        (out_dir / f"{name}.txt").write_text(text + "\n")


def _jobs_arg(value: str) -> "int | str":
    if value == "auto":
        return "auto"
    try:
        return int(value)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"--jobs takes an integer or 'auto', got {value!r}"
        )


#: Models the advisor can diagnose (it needs per-unit statistics).
_ADVISABLE = ("dmm", "umm", "hmm")


def _advise_line(label: str, report, params) -> str:
    """One compact advisor verdict: regime, occupancy, top finding."""
    advice = diagnose(report, params)
    finding = advice.findings[0] if advice.findings else "no findings"
    return (
        f"{label:<44} {report.cycles:>8} cy  {advice.regime.value:<16} "
        f"occ {advice.occupancy_ratio:>6.2f}  {finding}"
    )


def _advise_figures(mode: str) -> str:
    lines = ["-- Figure 4 launches (umm, w=4) --"]
    for q in FIG4_LATENCY_GRID:
        report = fig4_launch_report(q, mode=mode)
        lines.append(_advise_line(
            f"fig4 l={q['l']}", report,
            MachineParams(width=q["w"], latency=q["l"]),
        ))
    return "\n".join(lines)


def _advise_table1(seed: int, mode: str) -> str:
    lines = []
    for kernel, grid, launch in (
        ("sum", SUM_GRID, sum_launch_report),
        ("conv", CONV_GRID, conv_launch_report),
    ):
        lines.append(f"-- Table I {kernel} launches --")
        for q in grid:
            point = Params(**q)
            for model in _ADVISABLE:
                report = launch(point, model=model, seed=seed, mode=mode)
                if model == "hmm":
                    mparams = HMMParams(num_dmms=point.d, width=point.w,
                                        global_latency=point.l)
                else:
                    mparams = MachineParams(width=point.w, latency=point.l)
                label = (
                    f"{kernel} {model} n={point.n} k={point.k} p={point.p} "
                    f"l={point.l}"
                )
                lines.append(_advise_line(label, report, mparams))
        lines.append("")
    return "\n".join(lines).rstrip()


class _ProgressPrinter:
    """Live sweep status on a tty; one summary line per sweep otherwise."""

    def __init__(self, stream=None) -> None:
        self.stream = stream if stream is not None else sys.stderr
        self._live = getattr(self.stream, "isatty", lambda: False)()

    def __call__(self, p: SweepProgress) -> None:
        if self._live:
            end = "\n" if p.done == p.total else "\r"
            print(f"  [sweep] {p.describe()}    ", end=end, file=self.stream)
        elif p.done == p.total:
            print(f"  [sweep] {p.describe()}", file=self.stream)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Regenerate the paper's tables and figures from the "
        "simulator.",
    )
    parser.add_argument(
        "what",
        nargs="?",
        choices=["figures", "table1", "table2", "ablations",
                 "conflict-free", "all"],
        help="which artifact(s) to reproduce",
    )
    parser.add_argument(
        "-o", "--out", type=pathlib.Path, default=None,
        help="directory to write the text artifacts to (optional)",
    )
    parser.add_argument(
        "--seed", type=int, default=20130520,
        help="sweep RNG seed (default: 20130520)",
    )
    parser.add_argument(
        "--json", action="store_true",
        help="also write a machine-readable summary.json (requires -o)",
    )
    parser.add_argument(
        "--jobs", type=_jobs_arg, default=1, metavar="N|auto",
        help="worker processes for the sweeps: an integer, or 'auto' for "
        "min(points, cpu_count) (default: 1, in-process)",
    )
    parser.add_argument(
        "--mode", choices=["batch", "event", "replay"], default="batch",
        help="evaluation engine for the sweeps (default: batch — the "
        "vectorized fast path; replay re-costs stored kernel traces; "
        "cycles are identical in every mode)",
    )
    parser.add_argument(
        "--no-cache", action="store_true",
        help="recompute every point instead of using the persistent sweep "
        "cache (benchmarks/.store/sweep)",
    )
    parser.add_argument(
        "--cache-stats", action="store_true",
        help="print sweep-cache statistics (standalone, or after the run)",
    )
    parser.add_argument(
        "--advise", action="store_true",
        help="also run the kernel advisor on every measured launch "
        "(figures/table1) and print one verdict line per point",
    )
    parser.add_argument(
        "--tune", action="store_true",
        help="also autotune the demo tasks (layout/launch search against "
        "the cost model; see docs/TUNER.md) and print one report each",
    )
    args = parser.parse_args(argv)
    if args.json and args.out is None:
        parser.error("--json requires -o/--out")
    if args.what is None and not args.cache_stats:
        parser.error("a subcommand is required (or --cache-stats)")

    cache = not args.no_cache
    if args.what is None:
        print(SweepExecutor(cache=True).stats().describe())
        return 0

    sweep_kwargs = dict(
        jobs=args.jobs,
        cache=cache,
        mode=args.mode,
        progress=_ProgressPrinter(),
    )

    ok = True
    summary: dict[str, object] = {"seed": args.seed}
    if args.what in ("figures", "all"):
        figures = reproduce_figures(**sweep_kwargs)
        _write(args.out, "figures", figures.render())
        ok &= figures.fig4_cycles == 8
        ok &= all(m == p for _, m, p in figures.fig4_scaling)
        summary["figure4_cycles"] = figures.fig4_cycles
    if args.what in ("table1", "all"):
        t1 = reproduce_table1(seed=args.seed, **sweep_kwargs)
        _write(args.out, "table1", t1.render())
        ok &= t1.all_shapes_hold()
        summary["table1"] = {
            problem: {
                model: {
                    "r_squared": fit.r_squared,
                    "coefficients": dict(
                        zip(fit.term_names, fit.coefficients)
                    ),
                }
                for model, fit in fits.items()
            }
            for problem, fits in (
                ("sum", t1.sum_fits), ("convolution", t1.conv_fits)
            )
        }
    if args.what in ("table2", "all"):
        t2 = reproduce_table2(seed=args.seed, **sweep_kwargs)
        _write(args.out, "table2", t2.render())
        ok &= t2.all_sound_and_tight()
        summary["table2"] = {
            problem: {
                model: {
                    "sound": rep.sound,
                    "worst_ratio": rep.worst_ratio,
                    "best_ratio": rep.best_ratio,
                }
                for model, rep in reports.items()
            }
            for problem, reports in (
                ("sum", t2.sum_reports), ("convolution", t2.conv_reports)
            )
        }
    if args.what in ("ablations", "all"):
        abl = reproduce_ablations(seed=args.seed, **sweep_kwargs)
        _write(args.out, "ablations", abl.render())
        ok &= abl.mechanisms_all_matter()
    if args.what in ("conflict-free", "all"):
        cf = reproduce_conflict_free(seed=args.seed, **sweep_kwargs)
        _write(args.out, "conflict_free", cf.render())
        ok &= cf.conflict_free_holds()
        summary["conflict_free"] = {
            "criteria_pass": cf.conflict_free_holds(),
            "certificates": {
                kernel: {
                    "certified": cert.certified,
                    "oblivious": cert.oblivious,
                    "avoidable_excess_slots": cert.avoidable_excess_slots,
                }
                for kernel, cert in cf.certificates.items()
            },
        }

    if args.advise:
        sections = ["Kernel advisor verdicts (one line per measured launch)"]
        if args.what in ("figures", "all"):
            sections.append(_advise_figures(args.mode))
        if args.what in ("table1", "all"):
            sections.append(_advise_table1(args.seed, args.mode))
        if len(sections) == 1:
            sections.append(
                f"(no advisable launches in {args.what!r}; use figures, "
                "table1, or all)"
            )
        _write(args.out, "advise", "\n\n".join(sections))

    if args.tune:
        from repro.tuner import TASKS, tune

        sections = ["Autotuner reports (exhaustive search, demo shapes)"]
        tuned: dict[str, object] = {}
        for name in sorted(TASKS):
            report = tune(name, jobs=args.jobs, cache=cache,
                          mode="auto" if args.mode == "batch" else args.mode)
            sections.append(report.render())
            tuned[name] = {
                "best": report.best.config,
                "improvement": report.improvement,
                "certificate": report.certificate,
                "equivalent": report.equivalent,
            }
            ok &= report.improvement >= 1.0 and report.equivalent
        _write(args.out, "tune", "\n\n".join(sections))
        summary["tune"] = tuned

    summary["pass"] = bool(ok)
    if args.json:
        args.out.mkdir(parents=True, exist_ok=True)
        (args.out / "summary.json").write_text(
            json.dumps(summary, indent=2, sort_keys=True) + "\n"
        )

    if args.cache_stats:
        print(SweepExecutor(cache=True).stats().describe())
        if args.mode == "replay":
            from repro.machine.replay import default_store

            print(default_store().stats().describe())

    if ok:
        print("reproduction criteria: PASS")
        return 0
    print("reproduction criteria: FAIL", file=sys.stderr)
    return 1


if __name__ == "__main__":
    raise SystemExit(main())
