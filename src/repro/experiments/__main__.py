"""Command-line entry point: ``python -m repro.experiments``.

Subcommands::

    python -m repro.experiments figures    # Figures 1-5
    python -m repro.experiments table1     # Table I sweep + fits
    python -m repro.experiments table2     # Table II optimality checks
    python -m repro.experiments ablations  # mechanism ablations
    python -m repro.experiments all        # everything
    python -m repro.experiments all -o DIR # also write artifacts to DIR

The table sweeps take a few seconds each (hundreds of simulator runs).
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys

from repro.experiments.ablations import reproduce_ablations
from repro.experiments.figures import reproduce_figures
from repro.experiments.table1 import reproduce_table1
from repro.experiments.table2 import reproduce_table2


def _write(out_dir: pathlib.Path | None, name: str, text: str) -> None:
    print(text)
    print()
    if out_dir is not None:
        out_dir.mkdir(parents=True, exist_ok=True)
        (out_dir / f"{name}.txt").write_text(text + "\n")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Regenerate the paper's tables and figures from the "
        "simulator.",
    )
    parser.add_argument(
        "what",
        choices=["figures", "table1", "table2", "ablations", "all"],
        help="which artifact(s) to reproduce",
    )
    parser.add_argument(
        "-o", "--out", type=pathlib.Path, default=None,
        help="directory to write the text artifacts to (optional)",
    )
    parser.add_argument(
        "--seed", type=int, default=20130520,
        help="sweep RNG seed (default: 20130520)",
    )
    parser.add_argument(
        "--json", action="store_true",
        help="also write a machine-readable summary.json (requires -o)",
    )
    args = parser.parse_args(argv)
    if args.json and args.out is None:
        parser.error("--json requires -o/--out")

    ok = True
    summary: dict[str, object] = {"seed": args.seed}
    if args.what in ("figures", "all"):
        figures = reproduce_figures()
        _write(args.out, "figures", figures.render())
        ok &= figures.fig4_cycles == 8
        summary["figure4_cycles"] = figures.fig4_cycles
    if args.what in ("table1", "all"):
        t1 = reproduce_table1(seed=args.seed)
        _write(args.out, "table1", t1.render())
        ok &= t1.all_shapes_hold()
        summary["table1"] = {
            problem: {
                model: {
                    "r_squared": fit.r_squared,
                    "coefficients": dict(
                        zip(fit.term_names, fit.coefficients)
                    ),
                }
                for model, fit in fits.items()
            }
            for problem, fits in (
                ("sum", t1.sum_fits), ("convolution", t1.conv_fits)
            )
        }
    if args.what in ("table2", "all"):
        t2 = reproduce_table2(seed=args.seed)
        _write(args.out, "table2", t2.render())
        ok &= t2.all_sound_and_tight()
        summary["table2"] = {
            problem: {
                model: {
                    "sound": rep.sound,
                    "worst_ratio": rep.worst_ratio,
                    "best_ratio": rep.best_ratio,
                }
                for model, rep in reports.items()
            }
            for problem, reports in (
                ("sum", t2.sum_reports), ("convolution", t2.conv_reports)
            )
        }
    if args.what in ("ablations", "all"):
        abl = reproduce_ablations(seed=args.seed)
        _write(args.out, "ablations", abl.render())
        ok &= abl.mechanisms_all_matter()

    summary["pass"] = bool(ok)
    if args.json:
        args.out.mkdir(parents=True, exist_ok=True)
        (args.out / "summary.json").write_text(
            json.dumps(summary, indent=2, sort_keys=True) + "\n"
        )

    if ok:
        print("reproduction criteria: PASS")
        return 0
    print("reproduction criteria: FAIL", file=sys.stderr)
    return 1


if __name__ == "__main__":
    raise SystemExit(main())
