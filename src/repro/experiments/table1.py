"""Table I reproduction driver.

Measures the sum and the direct convolution on every model across a
parameter grid, fits the Table I closed forms, and reports the results
as structured data plus a rendered text report.

The sweeps route through :class:`repro.analysis.executor.SweepExecutor`:
``jobs=`` shards the grid across worker processes, ``cache=`` memoizes
the deterministic per-point measurements on disk, and ``mode="batch"``
(the default) evaluates each launch on the vectorized fast path with
automatic per-point fallback to the event engine (recorded in each
point's ``extra["engine"]``).  Cycle counts are identical across modes
and job counts.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from functools import partial
from typing import Callable

import numpy as np

from repro.analysis.costmodel import CONV_FORMULAS, SUM_FORMULAS
from repro.analysis.executor import SweepExecutor, SweepProgress
from repro.analysis.fitting import FitResult, fit_terms
from repro.analysis.terms import Params
from repro.core.machines import DMM, HMM, UMM
from repro.core.pram import PRAM
from repro.core.sequential import SequentialMachine
from repro.params import HMMParams, MachineParams

__all__ = [
    "Table1Result",
    "reproduce_table1",
    "measure_sum",
    "measure_convolution",
    "sum_task",
    "conv_task",
    "sum_launch_report",
    "conv_launch_report",
]

#: Default sweep grids (simulator-friendly scale of the paper's regime).
SUM_GRID = tuple(
    dict(n=n, p=p, w=16, l=l, d=8)
    for n in (1 << 10, 1 << 12, 1 << 13)
    for p in (64, 256, 1024)
    for l in (16, 128)
)
CONV_GRID = tuple(
    dict(n=n, k=k, p=p, w=16, l=l, d=8)
    for n, k in ((1 << 9, 8), (1 << 10, 16))
    for p in (128, 512, 2048)
    for l in (8, 64)
)

MODELS = ("sequential", "pram", "dmm", "umm", "hmm")

#: Formula used per model for the convolution fit (the HMM is fitted
#: against the unconditional Theorem 9 form).
CONV_FORMULA_KEY = {
    "sequential": "sequential",
    "pram": "pram",
    "dmm": "dmm",
    "umm": "umm",
    "hmm": "hmm_general",
}


def _sum_report(model: str, q: dict, values: np.ndarray, mode: str,
                backend: "str | None" = None):
    if model == "sequential":
        return SequentialMachine().sum(values)
    if model == "pram":
        return PRAM(q["p"]).sum(values)
    if model == "dmm":
        machine = DMM(MachineParams(width=q["w"], latency=q["l"]), mode=mode,
                      backend=backend)
        return machine.sum(values, q["p"])[1]
    if model == "umm":
        machine = UMM(MachineParams(width=q["w"], latency=q["l"]), mode=mode,
                      backend=backend)
        return machine.sum(values, q["p"])[1]
    if model == "hmm":
        machine = HMM(
            HMMParams(num_dmms=q["d"], width=q["w"], global_latency=q["l"]),
            mode=mode,
            backend=backend,
        )
        return machine.sum(values, q["p"])[1]
    raise ValueError(f"unknown model {model!r}")


def _conv_report(
    model: str, q: dict, x: np.ndarray, y: np.ndarray, mode: str,
    backend: "str | None" = None,
):
    if model == "sequential":
        return SequentialMachine().convolution(x, y)
    if model == "pram":
        return PRAM(q["p"]).convolution(x, y)
    if model == "dmm":
        machine = DMM(MachineParams(width=q["w"], latency=q["l"]), mode=mode,
                      backend=backend)
        return machine.convolve(x, y, q["p"])[1]
    if model == "umm":
        machine = UMM(MachineParams(width=q["w"], latency=q["l"]), mode=mode,
                      backend=backend)
        return machine.convolve(x, y, q["p"])[1]
    if model == "hmm":
        machine = HMM(
            HMMParams(num_dmms=q["d"], width=q["w"], global_latency=q["l"]),
            mode=mode,
            backend=backend,
        )
        return machine.convolve(x, y, q["p"])[1]
    raise ValueError(f"unknown model {model!r}")


def measure_sum(
    model: str, q: dict, values: np.ndarray, *, mode: str = "event"
) -> int:
    """Time units to sum ``values`` on ``model`` at grid point ``q``."""
    return _sum_report(model, q, values, mode).cycles


def measure_convolution(
    model: str, q: dict, x: np.ndarray, y: np.ndarray, *, mode: str = "event"
) -> int:
    """Time units to convolve ``x`` with ``y`` on ``model`` at ``q``."""
    return _conv_report(model, q, x, y, mode).cycles


def point_rng(seed: int, kind: str, q: Params) -> np.random.Generator:
    """Per-point input stream, independent of sweep order and job count
    (so parallel and serial sweeps see byte-identical inputs)."""
    material = f"{kind}:{seed}:{q.n}:{q.k}:{q.p}:{q.w}:{q.l}:{q.d}"
    digest = hashlib.sha256(material.encode()).digest()
    return np.random.default_rng(int.from_bytes(digest[:8], "little"))


def _as_grid_dict(q: Params) -> dict:
    return dict(n=q.n, k=q.k, p=q.p, w=q.w, l=q.l, d=q.d)


def sum_launch_report(
    q: Params, *, model: str, seed: int = 20130520, mode: str = "batch",
    backend: "str | None" = None,
):
    """The full :class:`~repro.machine.report.RunReport` of one Table I
    sum point — same deterministic inputs as :func:`sum_task`, so the
    advisor (and the serving layer) diagnose exactly what was measured."""
    values = point_rng(seed, "sum", q).normal(size=q.n)
    return _sum_report(model, _as_grid_dict(q), values, mode, backend)


def conv_launch_report(
    q: Params, *, model: str, seed: int = 20130520, mode: str = "batch",
    backend: "str | None" = None,
):
    """The full run report of one Table I convolution point."""
    rng = point_rng(seed, "conv", q)
    x = rng.normal(size=q.k)
    y = rng.normal(size=q.n + q.k - 1)
    return _conv_report(model, _as_grid_dict(q), x, y, mode, backend)


def sum_task(
    q: Params, *, model: str, seed: int, mode: str = "batch",
    backend: "str | None" = None,
) -> tuple[int, dict]:
    """Self-contained Table I sum measurement at one grid point.

    Module-level and scalar-parameterized so the sweep executor can ship
    it to worker processes and key the result cache on it.
    """
    report = sum_launch_report(q, model=model, seed=seed, mode=mode,
                               backend=backend)
    return report.cycles, {"engine": getattr(report, "engine", "exact")}


def conv_task(
    q: Params, *, model: str, seed: int, mode: str = "batch",
    backend: "str | None" = None,
) -> tuple[int, dict]:
    """Self-contained Table I convolution measurement at one grid point."""
    report = conv_launch_report(q, model=model, seed=seed, mode=mode,
                                backend=backend)
    return report.cycles, {"engine": getattr(report, "engine", "exact")}


@dataclass(frozen=True)
class Table1Result:
    """Fits for every model on both problems."""

    sum_fits: dict[str, FitResult]
    conv_fits: dict[str, FitResult]
    sum_points: list[Params]
    conv_points: list[Params]
    sum_measured: dict[str, list[int]]
    conv_measured: dict[str, list[int]]

    def render(self) -> str:
        lines = ["Table I reproduction: measured vs closed forms", ""]
        lines.append("-- Sum --")
        for model in MODELS:
            lines.append(
                f"{model:>11}: {SUM_FORMULAS[model].text():<36} "
                f"{self.sum_fits[model].describe()}"
            )
        lines.append("")
        lines.append("-- Direct convolution --")
        for model in MODELS:
            formula = CONV_FORMULAS[CONV_FORMULA_KEY[model]]
            lines.append(
                f"{model:>11}: {formula.text():<36} "
                f"{self.conv_fits[model].describe()}"
            )
        return "\n".join(lines)

    def all_shapes_hold(self, min_r2: float = 0.97, max_coef: float = 12.0) -> bool:
        """The reproduction criterion of EXPERIMENTS.md."""
        for fit in (*self.sum_fits.values(), *self.conv_fits.values()):
            if fit.r_squared < min_r2:
                return False
            if any(c > max_coef for c in fit.coefficients):
                return False
        return True


def reproduce_table1(
    seed: int = 20130520,
    *,
    jobs: int | str = 1,
    cache: bool = False,
    cache_dir=None,
    mode: str = "batch",
    progress: "Callable[[SweepProgress], None] | None" = None,
) -> Table1Result:
    """Run the full Table I sweep on every model and fit the formulas.

    ``jobs``/``cache``/``mode`` configure the sweep executor; results
    (cycle counts, fits, point order) are identical for every setting.
    """
    executor = SweepExecutor(
        jobs=jobs, cache=cache, cache_dir=cache_dir, progress=progress
    )

    sum_points = [Params(**q) for q in SUM_GRID]
    sum_measured = {
        model: [
            pt.cycles
            for pt in executor.run(
                partial(sum_task, model=model, seed=seed, mode=mode),
                sum_points,
                mode=mode,
                label=f"table1/sum/{model}",
            )
        ]
        for model in MODELS
    }
    sum_fits = {
        model: fit_terms(SUM_FORMULAS[model], sum_points, sum_measured[model])
        for model in MODELS
    }

    conv_points = [Params(**q) for q in CONV_GRID]
    conv_measured = {
        model: [
            pt.cycles
            for pt in executor.run(
                partial(conv_task, model=model, seed=seed, mode=mode),
                conv_points,
                mode=mode,
                label=f"table1/conv/{model}",
            )
        ]
        for model in MODELS
    }
    conv_fits = {
        model: fit_terms(
            CONV_FORMULAS[CONV_FORMULA_KEY[model]], conv_points,
            conv_measured[model],
        )
        for model in MODELS
    }
    return Table1Result(
        sum_fits=sum_fits,
        conv_fits=conv_fits,
        sum_points=sum_points,
        conv_points=conv_points,
        sum_measured=sum_measured,
        conv_measured=conv_measured,
    )
