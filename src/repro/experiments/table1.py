"""Table I reproduction driver.

Measures the sum and the direct convolution on every model across a
parameter grid, fits the Table I closed forms, and reports the results
as structured data plus a rendered text report.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.costmodel import CONV_FORMULAS, SUM_FORMULAS
from repro.analysis.fitting import FitResult, fit_terms
from repro.analysis.terms import Params
from repro.core.machines import DMM, HMM, UMM
from repro.core.pram import PRAM
from repro.core.sequential import SequentialMachine
from repro.params import HMMParams, MachineParams

__all__ = ["Table1Result", "reproduce_table1", "measure_sum", "measure_convolution"]

#: Default sweep grids (simulator-friendly scale of the paper's regime).
SUM_GRID = tuple(
    dict(n=n, p=p, w=16, l=l, d=8)
    for n in (1 << 10, 1 << 12, 1 << 13)
    for p in (64, 256, 1024)
    for l in (16, 128)
)
CONV_GRID = tuple(
    dict(n=n, k=k, p=p, w=16, l=l, d=8)
    for n, k in ((1 << 9, 8), (1 << 10, 16))
    for p in (128, 512, 2048)
    for l in (8, 64)
)

MODELS = ("sequential", "pram", "dmm", "umm", "hmm")

#: Formula used per model for the convolution fit (the HMM is fitted
#: against the unconditional Theorem 9 form).
CONV_FORMULA_KEY = {
    "sequential": "sequential",
    "pram": "pram",
    "dmm": "dmm",
    "umm": "umm",
    "hmm": "hmm_general",
}


def measure_sum(model: str, q: dict, values: np.ndarray) -> int:
    """Time units to sum ``values`` on ``model`` at grid point ``q``."""
    if model == "sequential":
        return SequentialMachine().sum(values).cycles
    if model == "pram":
        return PRAM(q["p"]).sum(values).cycles
    if model == "dmm":
        machine = DMM(MachineParams(width=q["w"], latency=q["l"]))
        return machine.sum(values, q["p"])[1].cycles
    if model == "umm":
        machine = UMM(MachineParams(width=q["w"], latency=q["l"]))
        return machine.sum(values, q["p"])[1].cycles
    if model == "hmm":
        machine = HMM(
            HMMParams(num_dmms=q["d"], width=q["w"], global_latency=q["l"])
        )
        return machine.sum(values, q["p"])[1].cycles
    raise ValueError(f"unknown model {model!r}")


def measure_convolution(model: str, q: dict, x: np.ndarray, y: np.ndarray) -> int:
    """Time units to convolve ``x`` with ``y`` on ``model`` at ``q``."""
    if model == "sequential":
        return SequentialMachine().convolution(x, y).cycles
    if model == "pram":
        return PRAM(q["p"]).convolution(x, y).cycles
    if model == "dmm":
        machine = DMM(MachineParams(width=q["w"], latency=q["l"]))
        return machine.convolve(x, y, q["p"])[1].cycles
    if model == "umm":
        machine = UMM(MachineParams(width=q["w"], latency=q["l"]))
        return machine.convolve(x, y, q["p"])[1].cycles
    if model == "hmm":
        machine = HMM(
            HMMParams(num_dmms=q["d"], width=q["w"], global_latency=q["l"])
        )
        return machine.convolve(x, y, q["p"])[1].cycles
    raise ValueError(f"unknown model {model!r}")


@dataclass(frozen=True)
class Table1Result:
    """Fits for every model on both problems."""

    sum_fits: dict[str, FitResult]
    conv_fits: dict[str, FitResult]
    sum_points: list[Params]
    conv_points: list[Params]
    sum_measured: dict[str, list[int]]
    conv_measured: dict[str, list[int]]

    def render(self) -> str:
        lines = ["Table I reproduction: measured vs closed forms", ""]
        lines.append("-- Sum --")
        for model in MODELS:
            lines.append(
                f"{model:>11}: {SUM_FORMULAS[model].text():<36} "
                f"{self.sum_fits[model].describe()}"
            )
        lines.append("")
        lines.append("-- Direct convolution --")
        for model in MODELS:
            formula = CONV_FORMULAS[CONV_FORMULA_KEY[model]]
            lines.append(
                f"{model:>11}: {formula.text():<36} "
                f"{self.conv_fits[model].describe()}"
            )
        return "\n".join(lines)

    def all_shapes_hold(self, min_r2: float = 0.97, max_coef: float = 12.0) -> bool:
        """The reproduction criterion of EXPERIMENTS.md."""
        for fit in (*self.sum_fits.values(), *self.conv_fits.values()):
            if fit.r_squared < min_r2:
                return False
            if any(c > max_coef for c in fit.coefficients):
                return False
        return True


def reproduce_table1(seed: int = 20130520) -> Table1Result:
    """Run the full Table I sweep on every model and fit the formulas."""
    rng = np.random.default_rng(seed)

    sum_points = [Params(**q) for q in SUM_GRID]
    sum_inputs = [rng.normal(size=q["n"]) for q in SUM_GRID]
    sum_measured = {
        model: [
            measure_sum(model, q, vals)
            for q, vals in zip(SUM_GRID, sum_inputs)
        ]
        for model in MODELS
    }
    sum_fits = {
        model: fit_terms(SUM_FORMULAS[model], sum_points, sum_measured[model])
        for model in MODELS
    }

    conv_points = [Params(**q) for q in CONV_GRID]
    conv_inputs = [
        (rng.normal(size=q["k"]), rng.normal(size=q["n"] + q["k"] - 1))
        for q in CONV_GRID
    ]
    conv_measured = {
        model: [
            measure_convolution(model, q, x, y)
            for q, (x, y) in zip(CONV_GRID, conv_inputs)
        ]
        for model in MODELS
    }
    conv_fits = {
        model: fit_terms(
            CONV_FORMULAS[CONV_FORMULA_KEY[model]], conv_points,
            conv_measured[model],
        )
        for model in MODELS
    }
    return Table1Result(
        sum_fits=sum_fits,
        conv_fits=conv_fits,
        sum_points=sum_points,
        conv_points=conv_points,
        sum_measured=sum_measured,
        conv_measured=conv_measured,
    )
