"""Self-contained experiment drivers.

The modules here regenerate the paper's artifacts programmatically —
the same measurements the benchmark suite makes, packaged as library
functions so downstream users can run them without pytest:

* :func:`repro.experiments.table1.reproduce_table1` — measured vs
  closed-form for both problems on every model;
* :func:`repro.experiments.table2.reproduce_table2` — optimality
  checks against the lower bounds;
* :func:`repro.experiments.figures.reproduce_figures` — Figures 1-5;
* :func:`repro.experiments.ablations.reproduce_ablations` — the
  pipelining / policy / padding mechanism ablations;
* ``python -m repro.experiments`` — the command-line entry point.
"""

from repro.experiments.ablations import reproduce_ablations
from repro.experiments.figures import reproduce_figures
from repro.experiments.table1 import reproduce_table1
from repro.experiments.table2 import reproduce_table2

__all__ = [
    "reproduce_ablations",
    "reproduce_figures",
    "reproduce_table1",
    "reproduce_table2",
]
