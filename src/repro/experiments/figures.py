"""Figures 1-5 reproduction driver."""

from __future__ import annotations

from dataclasses import dataclass
from functools import partial
from typing import Callable

import numpy as np

from repro.analysis.executor import SweepExecutor, SweepProgress
from repro.machine.engine import MachineEngine
from repro.machine.hmm import HMMEngine
from repro.machine.policy import UMMGroupPolicy
from repro.machine.trace import TraceRecorder
from repro.params import FIG4_PARAMS, GTX580, MachineParams
from repro.viz import render_banks_and_groups, render_sum_tree

__all__ = [
    "FiguresResult",
    "reproduce_figures",
    "run_figure4_example",
    "fig4_latency_task",
    "fig4_launch_report",
]

#: The Figure 4 access pattern at other latencies: the paper's pipelining
#: arithmetic predicts ``(3 + 1) + l - 1`` time units at every ``l``.
FIG4_LATENCY_GRID = tuple(dict(w=4, l=l) for l in (2, 5, 9, 17))

_FIG4_PATTERN = {0: (15, 2, 6, 0), 1: (8, 9, 10, 11)}


def fig4_launch_report(q: dict, *, mode: str = "batch"):
    """Full run report of the Figure 4 two-warp launch at ``q['l']`` —
    the advisor (``--advise``) diagnoses exactly what was measured."""
    eng = MachineEngine(
        MachineParams(width=q["w"], latency=q["l"]), UMMGroupPolicy(),
        name="umm", mode=mode,
    )
    a = eng.alloc(16, "a")
    a.set(np.arange(16.0))
    pattern = {wid: np.array(idx) for wid, idx in _FIG4_PATTERN.items()}

    def program(warp):
        yield warp.read(a, pattern[warp.warp_id])

    return eng.launch(program, 8)


def fig4_latency_task(q: dict, *, mode: str = "batch") -> tuple[int, dict]:
    """The Figure 4 two-warp launch at latency ``q['l']`` (picklable,
    executor-routable)."""
    report = fig4_launch_report(q, mode=mode)
    return report.cycles, {"engine": report.engine}


def run_figure4_example() -> tuple[int, str]:
    """The paper's Figure 4: two warps on a w=4, l=5 UMM.

    Returns ``(time_units, timeline_chart)``; the paper's arithmetic
    gives (3 + 1) + 5 - 1 = 8 time units.
    """
    eng = MachineEngine(FIG4_PARAMS, UMMGroupPolicy(), name="umm")
    a = eng.alloc(16, "a")
    a.set(np.arange(16.0))
    recorder = TraceRecorder()
    pattern = {wid: np.array(idx) for wid, idx in _FIG4_PATTERN.items()}

    def program(warp):
        yield warp.read(a, pattern[warp.warp_id])

    report = eng.launch(program, 8, trace=recorder)
    chart = recorder.render_pipeline_timeline("mem", latency=FIG4_PARAMS.latency)
    return report.cycles, chart


@dataclass(frozen=True)
class FiguresResult:
    """Rendered figures plus the Figure 4 measurement."""

    architecture: str
    banks_and_groups: str
    fig4_cycles: int
    fig4_timeline: str
    sum_tree: str
    #: (latency, measured, predicted) rows of the Figure 4 pattern swept
    #: over latencies — the ``x + l - 1`` pipelining rule at scale.
    fig4_scaling: tuple[tuple[int, int, int], ...] = ()

    def render(self) -> str:
        sections = [
            "== Figures 1/2: the HMM architecture ==\n" + self.architecture,
            "== Figure 3: banks and address groups (w=4) ==\n"
            + self.banks_and_groups,
            "== Figure 4: pipelined global access (w=4, l=5) ==\n"
            f"paper: (3+1) + 5 - 1 = 8; measured: {self.fig4_cycles}\n"
            + self.fig4_timeline,
        ]
        if self.fig4_scaling:
            rows = "\n".join(
                f"  l={l:3d}: measured {measured:3d}  "
                f"predicted (3+1)+l-1 = {predicted:3d}"
                for l, measured, predicted in self.fig4_scaling
            )
            sections.append(
                "== Figure 4, swept: the x + l - 1 rule across latencies ==\n"
                + rows
            )
        sections.append(
            "== Figure 5: the summing tree (n=8) ==\n" + self.sum_tree
        )
        return "\n\n".join(sections)


def reproduce_figures(
    *,
    jobs: int | str = 1,
    cache: bool = False,
    cache_dir=None,
    mode: str = "batch",
    progress: "Callable[[SweepProgress], None] | None" = None,
) -> FiguresResult:
    """Regenerate Figures 1-5 (plus the Figure 4 latency sweep)."""
    eng = HMMEngine(GTX580)
    architecture = (
        f"HMM(GTX580): d={GTX580.num_dmms} DMMs x w={GTX580.width} banks "
        f"(latency {GTX580.shared_latency}) + one UMM global memory "
        f"(latency {GTX580.global_latency}); warps of {GTX580.width} "
        f"threads, up to {GTX580.max_threads()} resident threads\n"
        f"  global unit: {eng.global_unit!r}\n"
        f"  shared units: {len(eng.shared_units)} x {eng.shared_units[0]!r}"
    )
    cycles, timeline = run_figure4_example()

    executor = SweepExecutor(
        jobs=jobs, cache=cache, cache_dir=cache_dir, progress=progress
    )
    swept = executor.run(
        partial(fig4_latency_task, mode=mode), FIG4_LATENCY_GRID,
        mode=mode, label="figures/fig4-latency",
    )
    fig4_scaling = tuple(
        (pt.params["l"], pt.cycles, 4 + pt.params["l"] - 1) for pt in swept
    )

    return FiguresResult(
        architecture=architecture,
        banks_and_groups=render_banks_and_groups(16, 4),
        fig4_cycles=cycles,
        fig4_timeline=timeline,
        sum_tree=render_sum_tree(8),
        fig4_scaling=fig4_scaling,
    )
