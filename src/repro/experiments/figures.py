"""Figures 1-5 reproduction driver."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.machine.engine import MachineEngine
from repro.machine.hmm import HMMEngine
from repro.machine.policy import UMMGroupPolicy
from repro.machine.trace import TraceRecorder
from repro.params import FIG4_PARAMS, GTX580
from repro.viz import render_banks_and_groups, render_sum_tree

__all__ = ["FiguresResult", "reproduce_figures", "run_figure4_example"]


def run_figure4_example() -> tuple[int, str]:
    """The paper's Figure 4: two warps on a w=4, l=5 UMM.

    Returns ``(time_units, timeline_chart)``; the paper's arithmetic
    gives (3 + 1) + 5 - 1 = 8 time units.
    """
    eng = MachineEngine(FIG4_PARAMS, UMMGroupPolicy(), name="umm")
    a = eng.alloc(16, "a")
    a.set(np.arange(16.0))
    recorder = TraceRecorder()
    pattern = {0: np.array([15, 2, 6, 0]), 1: np.array([8, 9, 10, 11])}

    def program(warp):
        yield warp.read(a, pattern[warp.warp_id])

    report = eng.launch(program, 8, trace=recorder)
    chart = recorder.render_pipeline_timeline("mem", latency=FIG4_PARAMS.latency)
    return report.cycles, chart


@dataclass(frozen=True)
class FiguresResult:
    """Rendered figures plus the Figure 4 measurement."""

    architecture: str
    banks_and_groups: str
    fig4_cycles: int
    fig4_timeline: str
    sum_tree: str

    def render(self) -> str:
        return "\n\n".join(
            [
                "== Figures 1/2: the HMM architecture ==\n" + self.architecture,
                "== Figure 3: banks and address groups (w=4) ==\n"
                + self.banks_and_groups,
                "== Figure 4: pipelined global access (w=4, l=5) ==\n"
                f"paper: (3+1) + 5 - 1 = 8; measured: {self.fig4_cycles}\n"
                + self.fig4_timeline,
                "== Figure 5: the summing tree (n=8) ==\n" + self.sum_tree,
            ]
        )


def reproduce_figures() -> FiguresResult:
    """Regenerate Figures 1-5."""
    eng = HMMEngine(GTX580)
    architecture = (
        f"HMM(GTX580): d={GTX580.num_dmms} DMMs x w={GTX580.width} banks "
        f"(latency {GTX580.shared_latency}) + one UMM global memory "
        f"(latency {GTX580.global_latency}); warps of {GTX580.width} "
        f"threads, up to {GTX580.max_threads()} resident threads\n"
        f"  global unit: {eng.global_unit!r}\n"
        f"  shared units: {len(eng.shared_units)} x {eng.shared_units[0]!r}"
    )
    cycles, timeline = run_figure4_example()
    return FiguresResult(
        architecture=architecture,
        banks_and_groups=render_banks_and_groups(16, 4),
        fig4_cycles=cycles,
        fig4_timeline=timeline,
        sum_tree=render_sum_tree(8),
    )
