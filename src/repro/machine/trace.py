"""Transaction traces, statistics, and a best-effort race detector.

A :class:`TraceRecorder` attached to an engine records one
:class:`TransactionRecord` per warp memory transaction, with the exact
pipeline timing the unit assigned.  The recorder powers:

* the reproduction of the paper's Figure 4 (pipeline occupancy timeline),
* conflict statistics for the ablation benchmarks,
* an epoch-based data-race detector for debugging kernels: two
  transactions from different warps racing on an address (at least one a
  write) without an intervening barrier are flagged.

Tracing costs memory proportional to the number of transactions — attach
it for small runs and debugging, not for large sweeps.  Pass
``max_transactions`` to enforce that: the recorder then raises
:class:`~repro.errors.TraceOverflowError` instead of growing without
bound.

The recorder also defines the hook surface the scheduler drives:
:meth:`TraceRecorder.record` (one memory transaction),
:meth:`TraceRecorder.record_compute` (one warp compute step) and
:meth:`TraceRecorder.record_arrival` (one warp reaching a barrier).  The
base class only stores transactions; the trace-replay compiler
(:class:`repro.machine.replay.TraceCompiler`) overrides all three to
capture complete per-warp operation streams.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from repro.errors import ConfigurationError, TraceOverflowError
from repro.machine.ops import AccessKind, BarrierScope, MemoryOp

if TYPE_CHECKING:  # pragma: no cover
    from repro.machine.pipeline import Issue, PipelinedMemoryUnit
    from repro.machine.warp import WarpContext

__all__ = [
    "TransactionRecord",
    "TraceRecorder",
    "RaceReport",
    "port_utilization",
    "slots_histogram",
]


@dataclass(frozen=True)
class TransactionRecord:
    """One warp transaction as issued through a memory unit."""

    warp_id: int
    dmm_id: int
    unit: str
    kind: AccessKind
    start: int
    slots: int
    complete: int
    num_requests: int
    array: str
    #: Distinct absolute addresses of the transaction (copy).
    addresses: np.ndarray
    #: Device-scope barrier epoch at dispatch time.
    device_epoch: int
    #: DMM-scope barrier epoch (of the issuing warp's DMM) at dispatch.
    dmm_epoch: int

    @property
    def duration(self) -> int:
        """Time units from issue to completion, inclusive."""
        return self.complete - self.start + 1


@dataclass(frozen=True)
class RaceReport:
    """A detected (potential) data race between two transactions."""

    first: TransactionRecord
    second: TransactionRecord
    addresses: np.ndarray

    def describe(self) -> str:
        a = ", ".join(str(int(x)) for x in self.addresses[:8])
        more = "..." if self.addresses.size > 8 else ""
        return (
            f"race on {self.first.unit} addresses [{a}{more}]: warp "
            f"{self.first.warp_id} ({self.first.kind.value}) vs warp "
            f"{self.second.warp_id} ({self.second.kind.value}) with no "
            "barrier in between"
        )


class TraceRecorder:
    """Collects transactions and barrier events during a run.

    Parameters
    ----------
    max_transactions:
        Optional upper bound on the number of recorded transactions.
        Exceeding it raises :class:`~repro.errors.TraceOverflowError`
        (the trace grows linearly with the run; an unbounded recorder on
        a large launch silently exhausts RAM).
    """

    def __init__(self, *, max_transactions: int | None = None) -> None:
        if max_transactions is not None and max_transactions < 1:
            raise ConfigurationError(
                f"max_transactions must be >= 1, got {max_transactions}"
            )
        self.max_transactions = max_transactions
        self.records: list[TransactionRecord] = []
        self.barrier_events: list[tuple[BarrierScope, int, int]] = []
        self._device_epoch = 0
        self._dmm_epoch: dict[int, int] = defaultdict(int)

    def _check_capacity(self, recorded: int) -> None:
        """Raise when one more transaction would exceed the cap."""
        if self.max_transactions is not None and recorded >= self.max_transactions:
            raise TraceOverflowError(
                f"trace exceeded max_transactions={self.max_transactions}; "
                "raise the cap (or trace a smaller launch)"
            )

    # -- hooks called by the scheduler ------------------------------------
    def record(
        self,
        ctx: "WarpContext",
        unit: "PipelinedMemoryUnit",
        op: MemoryOp,
        issue: "Issue",
        *,
        post_compute: int = 0,
    ) -> None:
        """Record one warp memory transaction.

        ``post_compute`` is the local-compute time charged to the warp
        directly after the transaction (nonzero only for fused range
        rounds); the base recorder does not store it, but subclasses that
        reconstruct full warp timelines (trace replay) need it.
        """
        self._check_capacity(len(self.records))
        self.records.append(
            TransactionRecord(
                warp_id=ctx.warp_id,
                dmm_id=ctx.dmm_id,
                unit=unit.name,
                kind=op.kind,
                start=issue.start,
                slots=issue.slots,
                complete=issue.complete,
                num_requests=op.num_requests,
                array=op.array.name or "<anon>",
                addresses=np.unique(np.asarray(op.addresses, dtype=np.int64)),
                device_epoch=self._device_epoch,
                dmm_epoch=self._dmm_epoch[ctx.dmm_id],
            )
        )

    def record_compute(self, ctx: "WarpContext", cycles: int) -> None:
        """One warp compute step (no-op here; replay capture overrides)."""

    def record_arrival(self, ctx: "WarpContext", scope: BarrierScope) -> None:
        """One warp arriving at a barrier (no-op here; replay capture
        overrides — :meth:`record_barrier` fires once per *release*,
        which is not enough to rebuild per-warp operation streams)."""

    def record_barrier(self, scope: BarrierScope, dmm_id: int, time: int) -> None:
        self.barrier_events.append((scope, dmm_id, time))
        if scope is BarrierScope.DEVICE:
            self._device_epoch += 1
            for key in self._dmm_epoch:
                self._dmm_epoch[key] += 1
        else:
            self._dmm_epoch[dmm_id] += 1

    # -- queries ------------------------------------------------------------
    def transactions_for(self, unit: str) -> list[TransactionRecord]:
        """Records issued through the named unit, in dispatch order."""
        return [r for r in self.records if r.unit == unit]

    def total_slots(self, unit: str | None = None) -> int:
        """Sum of pipeline slots across (a unit's) transactions."""
        return sum(r.slots for r in self.records if unit is None or r.unit == unit)

    def makespan(self) -> int:
        """Completion time of the last recorded transaction."""
        return max((r.complete + 1 for r in self.records), default=0)

    # -- race detection -------------------------------------------------------
    def detect_races(self) -> list[RaceReport]:
        """Best-effort data-race detection between barrier epochs.

        Two transactions race when they touch a common address on the same
        unit, come from different warps, at least one writes, and no
        barrier separates them: same device epoch, and — if the warps
        share a DMM — the same DMM epoch.  This is a debugging aid with
        no false negatives for the bulk-synchronous kernels in this
        library, but it can over-report for programs synchronizing by
        other means (the models offer no other means).
        """
        reports: list[RaceReport] = []
        by_key: dict[tuple[str, int], list[TransactionRecord]] = defaultdict(list)
        for rec in self.records:
            by_key[(rec.unit, rec.device_epoch)].append(rec)
        for group in by_key.values():
            for i, a in enumerate(group):
                for b in group[i + 1 :]:
                    if a.warp_id == b.warp_id:
                        continue
                    if a.kind is AccessKind.READ and b.kind is AccessKind.READ:
                        continue
                    if a.dmm_id == b.dmm_id and a.dmm_epoch != b.dmm_epoch:
                        continue
                    shared = np.intersect1d(a.addresses, b.addresses)
                    if shared.size:
                        reports.append(RaceReport(first=a, second=b, addresses=shared))
        return reports

    # -- rendering --------------------------------------------------------------
    def render_pipeline_timeline(self, unit: str, *, latency: int) -> str:
        """ASCII pipeline occupancy chart in the style of the paper's Fig. 4.

        One row per transaction showing issue slots (``#``) and in-flight
        latency (``-``), plus a ruler.  Used by the Figure 4 benchmark to
        show the two-warp example completing in 8 time units.
        """
        records = self.transactions_for(unit)
        if not records:
            return f"(no transactions on unit {unit!r})"
        horizon = max(r.complete for r in records) + 1
        lines = []
        header = "time      " + "".join(str(t % 10) for t in range(horizon))
        lines.append(header)
        for rec in records:
            row = [" "] * horizon
            for t in range(rec.start, rec.start + rec.slots):
                row[t] = "#"
            for t in range(rec.start + rec.slots, rec.complete + 1):
                row[t] = "-"
            label = f"W({rec.warp_id})".ljust(10)
            lines.append(label + "".join(row))
        lines.append(
            f"(#: issue slot, -: in flight; latency={latency}; "
            f"total={horizon} time units)"
        )
        return "\n".join(lines)


def port_utilization(records: list[TransactionRecord], unit: str,
                     total_cycles: int) -> float:
    """Fraction of the run during which the unit's issue port was busy.

    ``total_cycles`` is the launch's makespan; slots never overlap on a
    port, so utilization = issued slots / makespan (1.0 = the port is
    the bottleneck throughout — the bandwidth-bound signature).
    """
    if total_cycles <= 0:
        return 0.0
    busy = sum(r.slots for r in records if r.unit == unit)
    return min(1.0, busy / total_cycles)


def slots_histogram(records: list[TransactionRecord], unit: str) -> dict[int, int]:
    """How many transactions took each slot count.

    ``{1: everything}`` is the clean-kernel signature; heavy tails are
    bank conflicts / uncoalesced access quantified per degree.
    """
    hist: dict[int, int] = {}
    for r in records:
        if r.unit == unit:
            hist[r.slots] = hist.get(r.slots, 0) + 1
    return dict(sorted(hist.items()))
