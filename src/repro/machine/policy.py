"""Pipeline-slot policies: how many stages does a warp transaction occupy?

A warp of ``w`` threads issues up to ``w`` memory requests at once.  How
long the requests occupy the memory pipeline is the *only* difference
between the DMM and the UMM:

* :class:`DMMBankPolicy` — requests destined for distinct banks proceed in
  parallel; ``x`` distinct addresses in one bank take ``x`` turns.  Slots
  = the bank conflict degree.
* :class:`UMMGroupPolicy` — the single broadcast address line selects one
  address group per time unit.  Slots = the number of distinct groups.
* :class:`IdealPolicy` — every non-empty transaction takes one slot; an
  ablation baseline that removes conflicts/coalescing from the model (a
  PRAM-with-latency).

All policies merge duplicate addresses first (same-address requests are
broadcast / arbitrated at no extra cost).
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

from repro.machine.banks import conflict_degree, group_count

__all__ = ["SlotPolicy", "DMMBankPolicy", "UMMGroupPolicy", "IdealPolicy"]


class SlotPolicy(ABC):
    """Strategy computing the pipeline-stage count of a warp transaction."""

    #: Short name used in reports and traces.
    name: str = "abstract"

    @abstractmethod
    def slot_count(self, addresses: np.ndarray, width: int) -> int:
        """Number of pipeline stages occupied by the transaction.

        ``addresses`` are absolute addresses (duplicates allowed); the
        result is 0 for an empty transaction — such transactions are not
        dispatched at all.
        """

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"{type(self).__name__}()"


class DMMBankPolicy(SlotPolicy):
    """Bank-conflict slot counting (Discrete Memory Machine)."""

    name = "dmm-bank"

    def slot_count(self, addresses: np.ndarray, width: int) -> int:
        return conflict_degree(addresses, width)


class UMMGroupPolicy(SlotPolicy):
    """Address-group (coalescing) slot counting (Unified Memory Machine)."""

    name = "umm-group"

    def slot_count(self, addresses: np.ndarray, width: int) -> int:
        return group_count(addresses, width)


class IdealPolicy(SlotPolicy):
    """Conflict-oblivious counting: one slot per non-empty transaction.

    Not part of the paper's models; used by ablation benchmarks to
    quantify how much of an algorithm's cost the conflict/coalescing
    rules account for.
    """

    name = "ideal"

    def slot_count(self, addresses: np.ndarray, width: int) -> int:
        return 1 if np.asarray(addresses).size else 0
