"""Pipeline-slot policies: how many stages does a warp transaction occupy?

A warp of ``w`` threads issues up to ``w`` memory requests at once.  How
long the requests occupy the memory pipeline is the *only* difference
between the DMM and the UMM:

* :class:`DMMBankPolicy` — requests destined for distinct banks proceed in
  parallel; ``x`` distinct addresses in one bank take ``x`` turns.  Slots
  = the bank conflict degree.
* :class:`UMMGroupPolicy` — the single broadcast address line selects one
  address group per time unit.  Slots = the number of distinct groups.
* :class:`IdealPolicy` — every non-empty transaction takes one slot; an
  ablation baseline that removes conflicts/coalescing from the model (a
  PRAM-with-latency).

All policies merge duplicate addresses first (same-address requests are
broadcast / arbitrated at no extra cost).
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

from repro.machine.banks import (
    conflict_degree,
    conflict_degrees,
    conflict_degrees_matrix,
    group_count,
    group_counts,
    group_counts_matrix,
)

__all__ = ["SlotPolicy", "DMMBankPolicy", "UMMGroupPolicy", "IdealPolicy"]


class SlotPolicy(ABC):
    """Strategy computing the pipeline-stage count of a warp transaction."""

    #: Short name used in reports and traces.
    name: str = "abstract"

    @abstractmethod
    def slot_count(self, addresses: np.ndarray, width: int) -> int:
        """Number of pipeline stages occupied by the transaction.

        ``addresses`` are absolute addresses (duplicates allowed); the
        result is 0 for an empty transaction — such transactions are not
        dispatched at all.
        """

    def slot_counts(self, address_lists: list[np.ndarray], width: int) -> np.ndarray:
        """Slot counts of many transactions at once (batch-engine hook).

        Must agree elementwise with :meth:`slot_count`.  The default
        loops; the built-in policies override it with a single vectorized
        computation over the whole batch.
        """
        return np.fromiter(
            (self.slot_count(a, width) for a in address_lists),
            dtype=np.int64,
            count=len(address_lists),
        )

    def slot_counts_matrix(self, address_matrix: np.ndarray, width: int) -> np.ndarray:
        """Slot count of every row of a ``(rounds, lanes)`` address matrix.

        The batch engine uses this to cost a fused range operation (one
        transaction per row) in one call.  Must agree rowwise with
        :meth:`slot_count`; the default loops, the built-in policies
        vectorize.
        """
        return np.fromiter(
            (self.slot_count(row, width) for row in address_matrix),
            dtype=np.int64,
            count=address_matrix.shape[0],
        )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"{type(self).__name__}()"


class DMMBankPolicy(SlotPolicy):
    """Bank-conflict slot counting (Discrete Memory Machine)."""

    name = "dmm-bank"

    def slot_count(self, addresses: np.ndarray, width: int) -> int:
        return conflict_degree(addresses, width)

    def slot_counts(self, address_lists: list[np.ndarray], width: int) -> np.ndarray:
        return conflict_degrees(address_lists, width)

    def slot_counts_matrix(self, address_matrix: np.ndarray, width: int) -> np.ndarray:
        return conflict_degrees_matrix(address_matrix, width)


class UMMGroupPolicy(SlotPolicy):
    """Address-group (coalescing) slot counting (Unified Memory Machine)."""

    name = "umm-group"

    def slot_count(self, addresses: np.ndarray, width: int) -> int:
        return group_count(addresses, width)

    def slot_counts(self, address_lists: list[np.ndarray], width: int) -> np.ndarray:
        return group_counts(address_lists, width)

    def slot_counts_matrix(self, address_matrix: np.ndarray, width: int) -> np.ndarray:
        return group_counts_matrix(address_matrix, width)


class IdealPolicy(SlotPolicy):
    """Conflict-oblivious counting: one slot per non-empty transaction.

    Not part of the paper's models; used by ablation benchmarks to
    quantify how much of an algorithm's cost the conflict/coalescing
    rules account for.
    """

    name = "ideal"

    def slot_count(self, addresses: np.ndarray, width: int) -> int:
        return 1 if np.asarray(addresses).size else 0

    def slot_counts(self, address_lists: list[np.ndarray], width: int) -> np.ndarray:
        sizes = np.fromiter(
            (a.size for a in address_lists), dtype=np.int64, count=len(address_lists)
        )
        return (sizes > 0).astype(np.int64)

    def slot_counts_matrix(self, address_matrix: np.ndarray, width: int) -> np.ndarray:
        return np.ones(address_matrix.shape[0], dtype=np.int64)
