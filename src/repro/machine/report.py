"""Run reports: what a kernel launch cost.

The central quantity of the paper is the number of *time units* a
computation takes on a model; :class:`RunReport` carries that number
(:attr:`RunReport.cycles`) together with the per-memory-unit statistics
needed by the analysis layer (transaction counts, pipeline slots, conflict
counts) and basic launch metadata.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.machine.pipeline import UnitStats

__all__ = ["RunReport"]


@dataclass(frozen=True)
class RunReport:
    """Outcome of one kernel launch on a simulated machine.

    Attributes
    ----------
    cycles:
        Elapsed time units (the model's makespan).
    num_threads:
        Threads launched (``p``).
    num_warps:
        Warps launched (``ceil(p / w)`` per DMM, summed).
    unit_stats:
        Per-memory-unit statistics, keyed by unit name (``"mem"`` on a
        flat machine; ``"global"`` and ``"shared[i]"`` on an HMM).
    compute_ops:
        Warp-level compute operations dispatched.
    compute_cycles:
        Total compute time units charged across warps (work, not span).
    barrier_releases:
        Number of barrier synchronizations performed.
    label:
        Optional kernel name for display.
    engine:
        Which evaluation engine produced the numbers: ``"event"`` (the
        discrete-event scheduler), ``"batch"`` (the vectorized fast
        path), ``"batch-fallback"`` (batch mode was requested but the
        run was re-evaluated on the event engine — identical numbers,
        no speedup), ``"replay"`` (re-costed from a stored compiled
        trace without executing the kernel), ``"replay-capture"``
        (replay mode missed the trace store; this event run captured
        the trace for future replays), or ``"replay-refused"`` (replay
        mode declined — non-oblivious or uncacheable launch — and ran
        on the event engine).  See ``docs/PERFORMANCE.md``.
    """

    cycles: int
    num_threads: int
    num_warps: int
    unit_stats: dict[str, UnitStats] = field(default_factory=dict)
    compute_ops: int = 0
    compute_cycles: int = 0
    barrier_releases: int = 0
    label: str = ""
    engine: str = "event"

    # -- aggregate helpers --------------------------------------------------
    def total_transactions(self) -> int:
        """Memory transactions across all units."""
        return sum(s.transactions for s in self.unit_stats.values())

    def total_requests(self) -> int:
        """Individual thread memory requests across all units."""
        return sum(s.requests for s in self.unit_stats.values())

    def total_slots(self) -> int:
        """Pipeline slots consumed across all units."""
        return sum(s.slots for s in self.unit_stats.values())

    def conflict_free(self) -> bool:
        """True when no transaction took more than one pipeline slot."""
        return all(s.excess_slots == 0 for s in self.unit_stats.values())

    def stats_for(self, unit: str) -> UnitStats:
        """Statistics of one memory unit (KeyError if absent)."""
        return self.unit_stats[unit]

    def global_stats(self) -> UnitStats:
        """Statistics of the global-memory unit (HMM) or sole unit (flat)."""
        if "global" in self.unit_stats:
            return self.unit_stats["global"]
        if len(self.unit_stats) == 1:
            return next(iter(self.unit_stats.values()))
        raise KeyError("no unambiguous global unit in this report")

    def shared_stats(self) -> UnitStats:
        """Aggregated statistics over all shared-memory units."""
        merged = UnitStats()
        for name, stats in self.unit_stats.items():
            if name.startswith("shared"):
                merged = merged.merge(stats)
        return merged

    def summary(self) -> str:
        """Multi-line human-readable account of the run."""
        lines = [
            f"kernel {self.label or '<anonymous>'}: {self.cycles} time units, "
            f"{self.num_threads} threads in {self.num_warps} warps",
            f"  compute: {self.compute_ops} warp ops, "
            f"{self.compute_cycles} thread time units; "
            f"barriers: {self.barrier_releases}",
        ]
        for name in sorted(self.unit_stats):
            s = self.unit_stats[name]
            lines.append(
                f"  unit {name}: {s.transactions} transactions "
                f"({s.reads} R / {s.writes} W), {s.requests} requests, "
                f"{s.slots} slots, {s.conflicted_transactions} conflicted"
            )
        return "\n".join(lines)
