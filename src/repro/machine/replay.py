"""Trace-compiled replay: capture a launch once, re-cost it for any ``l``.

The cost of a *memory-oblivious* kernel on the paper's machines is fully
determined by its warp-level operation trace: slot counts come from the
bank / address-group decomposition of each transaction's lane addresses,
and end-to-end time follows the pipeline recurrence.  Neither depends on
the memory latency ``l``, the slot policy, pipelining, or the dispatch
order — those are *evaluation-time* parameters.  So a latency or policy
sweep does not need to re-execute the thread programs at every point: one
instrumented event run per ``(kernel, n, w, d, data)`` shape yields a
:class:`CompiledTrace`, and a :class:`ReplayCostEvaluator` re-prices it
at any ``(l, policy, pipelined, dispatch)`` with one vectorized slot
count plus a lean integer event loop — bit-identical to the event
scheduler, without generators, numpy per-op address work, or memory
effects.

Pieces
------

:class:`TraceCompiler`
    A :class:`~repro.machine.trace.TraceRecorder` subclass that captures
    complete per-warp operation streams (memory transactions with raw
    lane addresses, compute steps, barrier arrivals) during one event
    run.

:class:`CompiledTrace`
    The compact structured-numpy-array form of a captured launch, plus
    the post-run memory state so a replayed launch still "produces" the
    kernel's outputs.  Serializes to a single ``.npz`` file.

:class:`ReplayCostEvaluator`
    Re-prices a trace under new unit parameters.  Slot counting is one
    :meth:`~repro.machine.policy.SlotPolicy.slot_counts` call per unit
    (cached per policy set); the pipeline/barrier recurrence is a
    faithful port of the event scheduler's loop over pre-decoded ops.

:class:`TraceStore`
    Keyed trace storage riding the ``trace`` namespace of the unified
    artifact store (:mod:`repro.store`): an in-memory LRU over on-disk
    ``.npz`` entries (default ``benchmarks/.store/trace``, beside the
    sweep result cache), keyed by a content hash of the warp program,
    the launch shape, and the memory pre-state.  Latency, policy,
    pipelining, and dispatch are *not* part of the key — that is the
    whole point.  Pre-unification ``benchmarks/.trace_store`` files are
    imported automatically on first use (see docs/STORAGE.md).

Safety
------

Replay is only sound when the operation trace is data-independent.  Two
guards enforce this:

* kernels known to be data-dependent (sorting/merging/BFS branches,
  value-indexed scatters/gathers) are registered in
  :data:`NON_OBLIVIOUS_MODULES` (or marked with :func:`non_oblivious`)
  and always refuse replay, falling back to the event engine;
* an obliviousness self-check: when the same program+shape is captured
  under *different* input data, the two traces' structural signatures
  must match; a mismatch flags the program, evicts its traces, and
  refuses replay from then on.

Programs whose closures contain objects the keyer cannot canonically
hash also refuse replay (a wrong cache hit would be silent corruption;
a refused one merely costs the event-mode price).
"""

from __future__ import annotations

import dataclasses
import enum
import functools
import hashlib
import heapq
import io
import json
import os
import types
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Sequence

import numpy as np

from repro.errors import KernelError, TraceOverflowError
from repro.machine.memory import ArrayHandle, MemorySpace
from repro.native import NATIVE_METRICS, native_kernels, resolve_backend
from repro.store import ArtifactStore
from repro.store import config as _store_config
from repro.store.migrate import auto_migrate as _auto_migrate
from repro.machine.ops import AccessKind, BarrierScope
from repro.machine.pipeline import PipelinedMemoryUnit, UnitStats
from repro.machine.policy import (
    DMMBankPolicy,
    IdealPolicy,
    SlotPolicy,
    UMMGroupPolicy,
)
from repro.machine.scheduler import Scheduler, SchedulerResult, WarpState
from repro.machine.trace import TraceRecorder
from repro.machine.warp import WarpContext

__all__ = [
    "CompiledTrace",
    "LaunchKey",
    "NON_OBLIVIOUS_MODULES",
    "ReplayCostEvaluator",
    "TraceCompiler",
    "TraceStore",
    "TraceStoreStats",
    "default_store",
    "derive_launch_key",
    "is_replay_oblivious",
    "non_oblivious",
    "replay_launch",
    "reset_default_store",
]

#: ``REPRO_TRACE_STORE=off`` disables on-disk trace persistence (the
#: in-memory LRU stays on).  Deprecated alias of ``REPRO_STORE_TRACE``
#: (see :mod:`repro.store.config`).
TRACE_STORE_ENV = "REPRO_TRACE_STORE"
#: Overrides the on-disk trace directory.  Deprecated alias of
#: ``REPRO_STORE_TRACE_DIR``.
TRACE_DIR_ENV = "REPRO_TRACE_STORE_DIR"
#: Overrides the in-memory LRU capacity (entries).  Deprecated alias of
#: ``REPRO_STORE_TRACE_LRU``.
TRACE_LRU_ENV = "REPRO_TRACE_LRU"
#: Overrides the per-launch capture cap (transactions; 0 = unlimited).
CAPTURE_LIMIT_ENV = "REPRO_TRACE_CAPTURE_LIMIT"

_DEFAULT_LRU_ENTRIES = 64
_DEFAULT_CAPTURE_LIMIT = 1 << 21

#: Operation codes of the compiled stream.
_OP_MEM, _OP_COMPUTE, _OP_BARRIER = 0, 1, 2
#: Barrier scope codes (``op_arg`` of a barrier op).
_SCOPE_DMM, _SCOPE_DEVICE = 0, 1

#: Kernel modules whose operation traces depend on input *values* —
#: data-driven branches, value-indexed scatters/gathers, host-side
#: value-dependent partitions.  Launch programs defined in these modules
#: always refuse replay.  The registry is deliberately conservative:
#: a refused kernel still evaluates exactly (on the event engine); a
#: wrongly replayed one would be silently mispriced.
NON_OBLIVIOUS_MODULES = frozenset(
    {
        "repro.core.kernels.bfs",
        "repro.core.kernels.compaction",
        "repro.core.kernels.histogram",
        "repro.core.kernels.merge",
        "repro.core.kernels.permutation",
        "repro.core.kernels.sorting",
        "repro.core.kernels.spmv",
        "repro.tuner.datadep",
    }
)


def non_oblivious(fn: Callable) -> Callable:
    """Mark a warp program (or program factory) as data-dependent.

    Marked programs always refuse trace replay and run on the event
    engine.  Apply it to kernels whose yielded addresses, lane masks, or
    operation sequence depend on the values stored in machine memory.
    """
    fn._replay_oblivious = False
    return fn


def is_replay_oblivious(program: Callable) -> bool:
    """May ``program``'s trace be replayed for different ``l`` / policy?

    An explicit ``_replay_oblivious`` attribute (see
    :func:`non_oblivious`) wins; otherwise programs defined in a module
    listed in :data:`NON_OBLIVIOUS_MODULES` are refused and everything
    else is presumed oblivious — guarded at capture time by the trace
    store's cross-input signature check.
    """
    flag = getattr(program, "_replay_oblivious", None)
    if flag is not None:
        return bool(flag)
    return getattr(program, "__module__", None) not in NON_OBLIVIOUS_MODULES


# ---------------------------------------------------------------------------
# Launch keying: canonical content hash of (program, shape, memory state).
# ---------------------------------------------------------------------------


class _Unkeyable(Exception):
    """A closure/default value has no canonical content encoding."""


@dataclass(frozen=True)
class LaunchKey:
    """The three digests that key a captured launch.

    ``full`` keys the trace store.  ``struct`` identifies the program and
    launch shape *without* the input data — the obliviousness self-check
    compares trace signatures across entries sharing a ``struct``.
    ``data`` is the memory pre-state digest distinguishing them.
    """

    full: str
    struct: str
    data: str


_MAX_KEY_DEPTH = 16


def _feed_value(h, value, seen: set[int], depth: int = 0) -> None:
    """Hash one python value canonically; raise :class:`_Unkeyable`."""
    if depth > _MAX_KEY_DEPTH:
        raise _Unkeyable("value nesting too deep")
    if value is None or isinstance(value, (bool, int, float, str, bytes)):
        h.update(f"{type(value).__name__}:{value!r};".encode())
    elif isinstance(value, np.generic):
        h.update(f"np:{value.dtype}:{value.item()!r};".encode())
    elif isinstance(value, np.ndarray):
        h.update(f"ndarray:{value.dtype}:{value.shape};".encode())
        h.update(np.ascontiguousarray(value).tobytes())
    elif isinstance(value, (tuple, list)):
        h.update(f"{type(value).__name__}[{len(value)}](".encode())
        for item in value:
            _feed_value(h, item, seen, depth + 1)
        h.update(b")")
    elif isinstance(value, dict):
        h.update(f"dict[{len(value)}](".encode())
        for key in sorted(value, key=repr):
            h.update(repr(key).encode())
            _feed_value(h, value[key], seen, depth + 1)
        h.update(b")")
    elif isinstance(value, (set, frozenset)):
        h.update(f"set[{len(value)}]{sorted(map(repr, value))!r};".encode())
    elif isinstance(value, range):
        h.update(f"range:{value!r};".encode())
    elif isinstance(value, enum.Enum):
        h.update(f"enum:{value!r};".encode())
    elif isinstance(value, MemorySpace):
        h.update(f"space:{value.name}:{value.space_id!r};".encode())
    elif isinstance(value, functools.partial):
        h.update(b"partial(")
        _feed_function(h, value.func, seen, depth + 1)
        _feed_value(h, tuple(value.args), seen, depth + 1)
        _feed_value(h, dict(value.keywords), seen, depth + 1)
        h.update(b")")
    elif dataclasses.is_dataclass(value) and not isinstance(value, type):
        h.update(f"dc:{type(value).__qualname__}(".encode())
        for f in dataclasses.fields(value):
            h.update(f.name.encode())
            _feed_value(h, getattr(value, f.name), seen, depth + 1)
        h.update(b")")
    elif callable(value):
        _feed_function(h, value, seen, depth + 1)
    else:
        raise _Unkeyable(f"cannot key a {type(value).__qualname__} value")


def _feed_code(h, code, seen: set[int], depth: int) -> None:
    h.update(code.co_code)
    h.update(repr(code.co_names).encode())
    for const in code.co_consts:
        if hasattr(const, "co_code"):
            _feed_code(h, const, seen, depth + 1)
        else:
            _feed_value(h, const, seen, depth + 1)


def _feed_function(
    h, fn: Callable, seen: set[int], depth: int = 0,
    *, walk_globals: bool = False,
) -> None:
    """Hash a function's identity, bytecode, defaults, and closure.

    ``walk_globals`` is set only for the *top-level* warp program: its
    referenced module globals are program inputs and get value-hashed.
    Functions reached through values (referenced globals, closure cells,
    partials) contribute identity + bytecode + defaults + closure only —
    walking *their* globals would drag in library-internal memo caches
    (e.g. ``repro.machine.warp._FULL_MASKS``) whose contents grow across
    runs and would churn the key without changing the trace.
    """
    if depth > _MAX_KEY_DEPTH:
        raise _Unkeyable("function nesting too deep")
    if id(fn) in seen:
        h.update(b"<recursive>;")
        return
    seen.add(id(fn))
    h.update(f"{getattr(fn, '__module__', '?')}.".encode())
    name = getattr(fn, "__qualname__", None) or getattr(fn, "__name__", None)
    h.update(f"{name or type(fn).__qualname__};".encode())
    code = getattr(fn, "__code__", None)
    if code is None:
        if not callable(fn) or name is None:
            raise _Unkeyable(f"cannot key callable {fn!r}")
        return  # builtin / C function: module + name is its identity
    _feed_code(h, code, seen, depth)
    for default in fn.__defaults__ or ():
        _feed_value(h, default, seen, depth + 1)
    for kwname, default in sorted((fn.__kwdefaults__ or {}).items()):
        h.update(kwname.encode())
        _feed_value(h, default, seen, depth + 1)
    cells = fn.__closure__ or ()
    for cellname, cell in zip(code.co_freevars, cells):
        h.update(f"{cellname}=".encode())
        try:
            contents = cell.cell_contents
        except ValueError:  # pragma: no cover - unfilled cell
            h.update(b"<empty>;")
            continue
        _feed_value(h, contents, seen, depth + 1)
    if not walk_globals:
        return
    # Referenced globals are program inputs too (a kernel closing over
    # nothing can still address through a module-level array).  Hash the
    # value of every global the code (or a nested code object) names;
    # modules count by name, anything unkeyable refuses replay.
    names: set[str] = set()
    stack = [code]
    while stack:
        c = stack.pop()
        names.update(c.co_names)
        stack.extend(k for k in c.co_consts if hasattr(k, "co_code"))
    fn_globals = getattr(fn, "__globals__", None) or {}
    for gname in sorted(names):
        if gname not in fn_globals:
            continue  # builtin or attribute name: stable, nothing to hash
        value = fn_globals[gname]
        h.update(f"g:{gname}=".encode())
        if isinstance(value, types.ModuleType):
            h.update(f"module:{value.__name__};".encode())
        else:
            _feed_value(h, value, seen, depth + 1)


def derive_launch_key(
    program: Callable,
    *,
    machine: str,
    width: int,
    contexts: Sequence[WarpContext],
    spaces: Sequence[MemorySpace],
    fingerprint: str,
) -> LaunchKey | None:
    """Content key of one launch, or ``None`` when replay must refuse.

    The key covers everything the *operation trace* of an oblivious
    program depends on: the program itself (bytecode, defaults, closure
    values — including :class:`ArrayHandle` placements), the warp/DMM
    partition, the machine kind and width, and the full memory pre-state.
    It deliberately excludes latency, slot policy, pipelining, and
    dispatch order — the replay-time parameters.
    """
    if not is_replay_oblivious(program):
        return None
    h = hashlib.sha256()
    h.update(f"trace-v1|{fingerprint}|{machine}|{width}|".encode())
    for ctx in contexts:
        h.update(f"{ctx.warp_id},{ctx.dmm_id},{ctx.tids.size};".encode())
    try:
        _feed_function(h, program, set(), walk_globals=True)
    except _Unkeyable:
        return None
    struct = h.hexdigest()
    dh = hashlib.sha256()
    for space in spaces:
        dh.update(f"{space.name}|{space.space_id!r}|{space.used}|".encode())
        dh.update(space.state().tobytes())
    data = dh.hexdigest()
    full = hashlib.sha256(f"{struct}:{data}".encode()).hexdigest()
    return LaunchKey(full=full, struct=struct, data=data)


# ---------------------------------------------------------------------------
# Capture: TraceRecorder subclass building per-warp operation streams.
# ---------------------------------------------------------------------------


class TraceCompiler(TraceRecorder):
    """Captures the complete operation stream of one event run.

    Unlike the base recorder it keeps *raw* (not deduplicated) lane
    addresses — replay recounts slots under arbitrary policies — and it
    also records compute steps and barrier arrivals, which cost nothing
    on a memory unit but shape the timeline.  :meth:`compile` freezes
    the streams into a :class:`CompiledTrace`.
    """

    def __init__(
        self,
        unit_names: Sequence[str],
        *,
        max_transactions: int | None = None,
    ) -> None:
        super().__init__(max_transactions=max_transactions)
        self._unit_index = {name: i for i, name in enumerate(unit_names)}
        self._unit_names = list(unit_names)
        self._warp: list[int] = []
        self._kind: list[int] = []
        self._unit: list[int] = []
        self._arg: list[int] = []
        self._read: list[int] = []
        self._req: list[int] = []
        self._addr_chunks: list[np.ndarray] = []
        self._transactions = 0

    # -- hooks -------------------------------------------------------------
    def record(self, ctx, unit, op, issue, *, post_compute: int = 0) -> None:
        self._check_capacity(self._transactions)
        self._transactions += 1
        addrs = np.asarray(op.addresses, dtype=np.int64).ravel()
        self._warp.append(ctx.warp_id)
        self._kind.append(_OP_MEM)
        self._unit.append(self._unit_index[unit.name])
        self._arg.append(int(post_compute))
        self._read.append(1 if op.kind is AccessKind.READ else 0)
        self._req.append(int(addrs.size))
        self._addr_chunks.append(addrs.copy())

    def record_compute(self, ctx, cycles: int) -> None:
        self._warp.append(ctx.warp_id)
        self._kind.append(_OP_COMPUTE)
        self._unit.append(-1)
        self._arg.append(int(cycles))
        self._read.append(0)
        self._req.append(0)

    def record_arrival(self, ctx, scope: BarrierScope) -> None:
        self._warp.append(ctx.warp_id)
        self._kind.append(_OP_BARRIER)
        self._unit.append(-1)
        self._arg.append(
            _SCOPE_DEVICE if scope is BarrierScope.DEVICE else _SCOPE_DMM
        )
        self._read.append(0)
        self._req.append(0)

    def record_barrier(self, scope, dmm_id, time) -> None:
        # Release times are re-derived at replay time; nothing to store.
        pass

    # -- freezing ----------------------------------------------------------
    def compile(
        self,
        *,
        contexts: Sequence[WarpContext],
        machine: str,
        width: int,
        post_state: dict[str, np.ndarray],
        fingerprint: str,
    ) -> "CompiledTrace":
        """Freeze the captured streams into a :class:`CompiledTrace`."""
        lengths = np.fromiter(
            (
                self._req[i] if self._kind[i] == _OP_MEM else 0
                for i in range(len(self._kind))
            ),
            dtype=np.int64,
            count=len(self._kind),
        )
        addr_off = np.concatenate(([0], np.cumsum(lengths)))
        addresses = (
            np.concatenate(self._addr_chunks)
            if self._addr_chunks
            else np.empty(0, dtype=np.int64)
        )
        meta = {
            "version": 1,
            "machine": machine,
            "width": int(width),
            "num_threads": int(contexts[0].num_threads) if contexts else 0,
            "warp_ids": [int(c.warp_id) for c in contexts],
            "warp_dmms": [int(c.dmm_id) for c in contexts],
            "unit_names": list(self._unit_names),
            "transactions": int(self._transactions),
            "fingerprint": fingerprint,
            "post_names": list(post_state),
        }
        return CompiledTrace(
            meta=meta,
            op_warp=np.asarray(self._warp, dtype=np.int32),
            op_kind=np.asarray(self._kind, dtype=np.int8),
            op_unit=np.asarray(self._unit, dtype=np.int16),
            op_arg=np.asarray(self._arg, dtype=np.int64),
            op_read=np.asarray(self._read, dtype=np.int8),
            op_req=np.asarray(self._req, dtype=np.int32),
            addr_off=addr_off.astype(np.int64),
            addresses=addresses.astype(np.int64),
            post_state={k: np.asarray(v, dtype=np.float64) for k, v in post_state.items()},
        )


# ---------------------------------------------------------------------------
# The compiled trace.
# ---------------------------------------------------------------------------


@dataclass
class CompiledTrace:
    """One captured launch as flat structured numpy arrays.

    The ``i``-th entry of the ``op_*`` arrays describes the ``i``-th
    operation in global capture (dispatch) order; restricting to one
    warp id yields that warp's program-order stream.  ``op_kind`` is 0
    (memory), 1 (compute), or 2 (barrier arrival); ``op_arg`` carries
    the kind-specific integer (post-transaction compute / compute
    cycles / barrier scope).  Memory ops own the address slice
    ``addresses[addr_off[i]:addr_off[i+1]]`` — raw per-lane addresses,
    so any slot policy can recount them.  ``post_state`` maps space
    names to the post-run cell values (see
    :meth:`~repro.machine.memory.MemorySpace.load_state`).
    """

    meta: dict
    op_warp: np.ndarray
    op_kind: np.ndarray
    op_unit: np.ndarray
    op_arg: np.ndarray
    op_read: np.ndarray
    op_req: np.ndarray
    addr_off: np.ndarray
    addresses: np.ndarray
    post_state: dict[str, np.ndarray]
    _evaluator: "ReplayCostEvaluator | None" = field(
        default=None, repr=False, compare=False
    )

    # -- shape -------------------------------------------------------------
    @property
    def num_ops(self) -> int:
        return int(self.op_kind.size)

    @property
    def num_transactions(self) -> int:
        return int(self.meta["transactions"])

    @property
    def nbytes(self) -> int:
        arrays = (
            self.op_warp, self.op_kind, self.op_unit, self.op_arg,
            self.op_read, self.op_req, self.addr_off, self.addresses,
            *self.post_state.values(),
        )
        return int(sum(a.nbytes for a in arrays))

    def addresses_of(self, i: int) -> np.ndarray:
        """Raw lane addresses of memory op ``i`` (a view)."""
        return self.addresses[self.addr_off[i] : self.addr_off[i + 1]]

    # -- identity ----------------------------------------------------------
    def signature(self) -> str:
        """Digest of the trace *structure* (ops + addresses, not values).

        Two captures of an oblivious program under different input data
        must produce equal signatures; the trace store enforces this.
        """
        h = hashlib.sha256()
        core = {
            k: self.meta[k]
            for k in (
                "machine", "width", "num_threads",
                "warp_ids", "warp_dmms", "unit_names",
            )
        }
        h.update(json.dumps(core, sort_keys=True).encode())
        for arr in (
            self.op_warp, self.op_kind, self.op_unit, self.op_arg,
            self.op_read, self.op_req, self.addr_off, self.addresses,
        ):
            h.update(np.ascontiguousarray(arr).tobytes())
        return h.hexdigest()

    def evaluator(self) -> "ReplayCostEvaluator":
        """The (cached) evaluator decoding this trace."""
        if self._evaluator is None:
            self._evaluator = ReplayCostEvaluator(self)
        return self._evaluator

    # -- (de)serialization -------------------------------------------------
    def to_payload(self) -> "dict[str, np.ndarray]":
        """The trace as the flat array mapping the ``.npz`` layout uses
        (``meta`` is the canonical-JSON header as a ``uint8`` array)."""
        payload = {
            "meta": np.frombuffer(
                json.dumps(self.meta, sort_keys=True).encode(), dtype=np.uint8
            ),
            "op_warp": self.op_warp,
            "op_kind": self.op_kind,
            "op_unit": self.op_unit,
            "op_arg": self.op_arg,
            "op_read": self.op_read,
            "op_req": self.op_req,
            "addr_off": self.addr_off,
            "addresses": self.addresses,
        }
        for i, name in enumerate(self.meta["post_names"]):
            payload[f"post_{i}"] = self.post_state[name]
        return payload

    @classmethod
    def from_payload(
        cls, payload: "dict[str, np.ndarray]"
    ) -> "CompiledTrace":
        """Inverse of :meth:`to_payload` (raises on missing arrays)."""
        meta = json.loads(bytes(payload["meta"].tobytes()).decode())
        post_state = {
            name: payload[f"post_{i}"]
            for i, name in enumerate(meta["post_names"])
        }
        return cls(
            meta=meta,
            op_warp=payload["op_warp"],
            op_kind=payload["op_kind"],
            op_unit=payload["op_unit"],
            op_arg=payload["op_arg"],
            op_read=payload["op_read"],
            op_req=payload["op_req"],
            addr_off=payload["addr_off"],
            addresses=payload["addresses"],
            post_state=post_state,
        )

    def save(self, path: "Path | str") -> None:
        """Write the trace as one compressed ``.npz`` file (atomically)."""
        path = Path(path)
        tmp = path.with_name(f"{path.name}.tmp{os.getpid()}")
        with open(tmp, "wb") as fh:
            np.savez_compressed(fh, **self.to_payload())
        os.replace(tmp, path)

    @classmethod
    def load(cls, path: "Path | str") -> "CompiledTrace":
        with np.load(Path(path)) as npz:
            return cls.from_payload({name: npz[name] for name in npz.files})

    # -- compatibility -----------------------------------------------------
    def matches_launch(
        self,
        *,
        machine: str,
        width: int,
        contexts: Sequence[WarpContext],
        unit_names: Sequence[str],
    ) -> bool:
        """Structural sanity check before replaying against an engine."""
        return (
            self.meta["machine"] == machine
            and self.meta["width"] == width
            and self.meta["unit_names"] == list(unit_names)
            and self.meta["warp_ids"] == [int(c.warp_id) for c in contexts]
            and self.meta["warp_dmms"] == [int(c.dmm_id) for c in contexts]
        )


# ---------------------------------------------------------------------------
# Replay evaluation.
# ---------------------------------------------------------------------------


class _Group:
    """Barrier group state during replay (mirrors the scheduler's)."""

    __slots__ = ("members", "waiting", "arrivals")

    def __init__(self, members: set[int]) -> None:
        self.members = set(members)
        self.waiting: set[int] = set()
        self.arrivals: dict[int, int] = {}


#: Builtin slot policies the native ``repro_slot_counts`` kernel
#: implements directly; custom :class:`SlotPolicy` subclasses always
#: count through their own Python/numpy code.
_NATIVE_POLICY_CODES = {DMMBankPolicy: 0, UMMGroupPolicy: 1, IdealPolicy: 2}


class _SlotTable:
    """Per-op slot counts for one policy set, in both shapes.

    The native kernel wants the int64 array; the Python loop wants a
    plain list (materialized lazily — the native path never pays for
    it).  ``per_unit`` holds the latency-independent slot tallies.
    """

    __slots__ = ("array", "per_unit", "_list")

    def __init__(self, array: np.ndarray, per_unit: list[dict]) -> None:
        self.array = array
        self.per_unit = per_unit
        self._list: "list[int] | None" = None

    def as_list(self) -> list[int]:
        if self._list is None:
            self._list = self.array.tolist()
        return self._list


class ReplayCostEvaluator:
    """Re-price a :class:`CompiledTrace` under new unit parameters.

    Decodes the trace once (per-warp streams and per-unit transaction
    groups, via one stable argsort + bincount pass); each
    :meth:`evaluate` call then runs one vectorized slot count per unit
    (cached per policy set) and a faithful integer port of the event
    scheduler's loop — same heap discipline, same round-robin rotation,
    same barrier release rule — so the returned numbers are
    bit-identical to an event run of the original program.

    ``backend="native"`` runs the loop (and builtin-policy slot
    counting) through the compiled kernels of :mod:`repro.native`;
    ``backend=None`` defers to ``$REPRO_BACKEND``.  Each
    :meth:`evaluate` call may also override the backend.  Both
    backends return identical numbers; when no C compiler is
    available the native backend warns once and runs the Python loop.
    """

    def __init__(
        self, trace: CompiledTrace, *, backend: "str | None" = None
    ) -> None:
        self.trace = trace
        self.backend = resolve_backend(backend)
        meta = trace.meta
        self._warp_ids: list[int] = list(meta["warp_ids"])
        self._warp_dmms: list[int] = list(meta["warp_dmms"])
        self._unit_names: list[str] = list(meta["unit_names"])
        self._ix_of = {wid: i for i, wid in enumerate(self._warp_ids)}
        n_warps = len(self._warp_ids)
        # Vectorized decode shared by both backends: a stable argsort
        # over warp indices groups each warp's ops in trace order.
        if n_warps:
            ids = np.asarray(self._warp_ids, dtype=np.int64)
            id2ix = np.full(int(ids.max()) + 1, -1, dtype=np.int64)
            id2ix[ids] = np.arange(n_warps, dtype=np.int64)
            warp_ix = id2ix[trace.op_warp.astype(np.int64, copy=False)]
            counts = np.bincount(warp_ix, minlength=n_warps)
        else:
            warp_ix = np.empty(0, dtype=np.int64)
            counts = np.empty(0, dtype=np.int64)
        self._stream_ops = np.argsort(warp_ix, kind="stable").astype(
            np.int64, copy=False
        )
        self._stream_off = np.zeros(n_warps + 1, dtype=np.int64)
        if n_warps:
            np.cumsum(counts, out=self._stream_off[1:])
        mem_mask = trace.op_kind == _OP_MEM
        unit64 = trace.op_unit.astype(np.int64, copy=False)
        self._mem_by_unit: list[np.ndarray] = [
            np.nonzero(mem_mask & (unit64 == u))[0].astype(np.int64, copy=False)
            for u in range(len(self._unit_names))
        ]
        # Latency/policy-independent per-unit tallies.
        read = trace.op_read
        req = trace.op_req
        self._unit_tallies = []
        for idx in self._mem_by_unit:
            reads = int(read[idx].sum()) if idx.size else 0
            self._unit_tallies.append(
                {
                    "transactions": int(idx.size),
                    "reads": reads,
                    "writes": int(idx.size) - reads,
                    "requests": int(req[idx].sum()) if idx.size else 0,
                }
            )
        self._slots_cache: dict[tuple, _SlotTable] = {}
        self._py_lists: "tuple | None" = None
        self._native_buf: "dict | None" = None

    # -- lazy per-backend decode -------------------------------------------
    def _python_lists(self) -> tuple:
        """Hot arrays as python lists (the Python loop is pure int work)."""
        if self._py_lists is None:
            trace = self.trace
            off = self._stream_off
            streams = [
                self._stream_ops[off[x]:off[x + 1]].tolist()
                for x in range(len(self._warp_ids))
            ]
            self._py_lists = (
                trace.op_kind.tolist(),
                trace.op_unit.tolist(),
                trace.op_arg.tolist(),
                streams,
            )
        return self._py_lists

    def _native_buffers(self) -> dict:
        """Contiguous typed buffers for ``repro_replay_price``."""
        if self._native_buf is None:
            trace = self.trace
            n_warps = len(self._warp_ids)
            ids = np.asarray(self._warp_ids, dtype=np.int64)
            # DMM barrier groups: dense indices 1.. in first-appearance
            # order (group 0 is the device group).
            group_of: dict[int, int] = {}
            warp_group = np.zeros(n_warps, dtype=np.int64)
            for x, dmm in enumerate(self._warp_dmms):
                g = group_of.get(dmm)
                if g is None:
                    g = group_of[dmm] = len(group_of) + 1
                warp_group[x] = g
            self._native_buf = {
                "warp_ids": ids,
                "warp_group": warp_group,
                "n_groups": len(group_of) + 1,
                "wid_order": np.argsort(ids, kind="stable").astype(
                    np.int64, copy=False
                ),
                "op_kind": np.ascontiguousarray(trace.op_kind, dtype=np.int8),
                "op_unit": np.ascontiguousarray(trace.op_unit, dtype=np.int16),
                "op_arg": np.ascontiguousarray(trace.op_arg, dtype=np.int64),
                "addr_off": np.ascontiguousarray(
                    trace.addr_off, dtype=np.int64
                ),
                "addresses": np.ascontiguousarray(
                    trace.addresses, dtype=np.int64
                ),
            }
        return self._native_buf

    # -- slot counting (vectorized, cached per policy set) -----------------
    def _slot_table(
        self, policies: Sequence[SlotPolicy], kernels: "dict | None" = None
    ) -> _SlotTable:
        key = tuple(f"{type(p).__qualname__}:{p.name}" for p in policies)
        cached = self._slots_cache.get(key)
        if cached is not None:
            return cached
        width = int(self.trace.meta["width"])
        trace = self.trace
        slots = np.zeros(trace.num_ops, dtype=np.int64)
        per_unit = []
        for u, ops in enumerate(self._mem_by_unit):
            if ops.size == 0:
                per_unit.append({"slots": 0, "conflicted": 0, "excess": 0})
                continue
            counts = None
            if kernels is not None:
                code = _NATIVE_POLICY_CODES.get(type(policies[u]))
                if code is not None:
                    buf = self._native_buffers()
                    counts = np.empty(ops.size, dtype=np.int64)
                    rc = kernels["repro_slot_counts"](
                        ops.size, ops, buf["addr_off"], buf["addresses"],
                        width, code, counts,
                    )
                    if rc != 0:
                        counts = None
                    else:
                        NATIVE_METRICS.native_calls += 1
            if counts is None:
                views = [trace.addresses_of(i) for i in ops]
                counts = policies[u].slot_counts(views, width).astype(
                    np.int64, copy=False
                )
            slots[ops] = counts
            per_unit.append(
                {
                    "slots": int(counts.sum()),
                    "conflicted": int((counts > 1).sum()),
                    "excess": int((counts - 1).sum()),
                }
            )
        table = _SlotTable(slots, per_unit)
        self._slots_cache[key] = table
        return table

    # -- the native loop ---------------------------------------------------
    def _evaluate_native(
        self,
        kernels: dict,
        table: _SlotTable,
        lat: list[int],
        pip: list[bool],
        dispatch: str,
    ) -> "tuple[SchedulerResult, dict[str, UnitStats]] | None":
        buf = self._native_buffers()
        n_units = len(self._unit_names)
        out_scalars = np.zeros(4, dtype=np.int64)
        out_busy = np.zeros(n_units, dtype=np.int64)
        out_last = np.zeros(n_units, dtype=np.int64)
        rc = kernels["repro_replay_price"](
            len(self._warp_ids),
            buf["warp_ids"],
            buf["warp_group"],
            buf["wid_order"],
            self._stream_off,
            self._stream_ops,
            buf["op_kind"],
            buf["op_unit"],
            buf["op_arg"],
            table.array,
            n_units,
            np.asarray(lat, dtype=np.int64),
            np.asarray([1 if x else 0 for x in pip], dtype=np.uint8),
            buf["n_groups"],
            1 if dispatch == "round-robin" else 0,
            _SCOPE_DEVICE,
            out_scalars,
            out_busy,
            out_last,
        )
        if rc != 0:  # pragma: no cover - allocation failure only
            return None
        NATIVE_METRICS.native_calls += 1
        stats: dict[str, UnitStats] = {}
        for u, name in enumerate(self._unit_names):
            tally = self._unit_tallies[u]
            st = table.per_unit[u]
            stats[name] = UnitStats(
                transactions=tally["transactions"],
                reads=tally["reads"],
                writes=tally["writes"],
                requests=tally["requests"],
                slots=st["slots"],
                conflicted_transactions=st["conflicted"],
                excess_slots=st["excess"],
                port_busy_until=int(out_busy[u]),
                last_complete=int(out_last[u]),
            )
        result = SchedulerResult(
            cycles=int(out_scalars[0]),
            compute_ops=int(out_scalars[1]),
            compute_cycles=int(out_scalars[2]),
            barrier_releases=int(out_scalars[3]),
        )
        return result, stats

    # -- the replay loop ---------------------------------------------------
    def evaluate(
        self,
        *,
        latencies: Sequence[int],
        policies: Sequence[SlotPolicy],
        pipelined: Sequence[bool],
        dispatch: str = "fifo",
        backend: "str | None" = None,
    ) -> tuple[SchedulerResult, dict[str, UnitStats]]:
        """Total cost of the trace under the given unit parameters.

        ``latencies`` / ``policies`` / ``pipelined`` align with the
        trace's ``unit_names``.  Returns the scheduler-result counters
        plus per-unit statistics, all bit-identical to an event run.
        ``backend`` overrides the evaluator's own for this call.
        """
        if dispatch not in ("fifo", "round-robin"):
            raise KernelError(
                f"dispatch must be 'fifo' or 'round-robin', got {dispatch!r}"
            )
        chosen = self.backend if backend is None else resolve_backend(backend)
        kernels = native_kernels() if chosen == "native" else None
        table = self._slot_table(policies, kernels)
        lat = [int(x) for x in latencies]
        pip = [bool(x) for x in pipelined]
        if kernels is not None:
            native = self._evaluate_native(kernels, table, lat, pip, dispatch)
            if native is not None:
                return native
        slots = table.as_list()
        slot_tallies = table.per_unit
        kind, unitv, arg, streams = self._python_lists()
        ix_of = self._ix_of
        warp_ids, warp_dmms = self._warp_ids, self._warp_dmms
        n_warps = len(warp_ids)
        n_units = len(self._unit_names)

        ready = {wid: 0 for wid in warp_ids}
        ptr = [0] * n_warps
        ends = [len(s) for s in streams]
        finished: set[int] = set()
        heap: list[tuple[int, int]] = [(0, wid) for wid in warp_ids]
        heapq.heapify(heap)
        in_heap = set(warp_ids)
        rr_next = 0
        pf = [0] * n_units
        busy = [0] * n_units
        last = [0] * n_units
        makespan = compute_ops = compute_cycles = releases = 0

        device_key = (BarrierScope.DEVICE, 0)
        groups: dict[tuple, _Group] = {device_key: _Group(set(warp_ids))}
        by_dmm: dict[int, set[int]] = {}
        for wid, dmm in zip(warp_ids, warp_dmms):
            by_dmm.setdefault(dmm, set()).add(wid)
        for dmm, members in by_dmm.items():
            groups[(BarrierScope.DMM, dmm)] = _Group(members)

        def maybe_release(group: _Group) -> None:
            nonlocal releases
            if not group.members or group.waiting != group.members:
                return
            release_time = max(group.arrivals.values())
            for w in sorted(group.waiting):
                ready[w] = release_time
                heapq.heappush(heap, (release_time, w))
                in_heap.add(w)
            group.waiting.clear()
            group.arrivals.clear()
            releases += 1

        def retire(w: int) -> None:
            for group in groups.values():
                if w in group.members:
                    group.members.discard(w)
                    group.waiting.discard(w)
                    group.arrivals.pop(w, None)
                    maybe_release(group)

        while heap:
            t, wid = heapq.heappop(heap)
            if dispatch == "round-robin":
                cohort = [(t, wid)]
                while heap and heap[0][0] == t:
                    cohort.append(heapq.heappop(heap))
                pick = min(
                    cohort,
                    key=lambda rw: (rw[1] - rr_next) % max(n_warps, 1),
                )
                for entry in cohort:
                    if entry is not pick:
                        heapq.heappush(heap, entry)
                t, wid = pick
                rr_next = (wid + 1) % max(n_warps, 1)
            in_heap.discard(wid)
            if wid in finished:
                continue
            if t != ready[wid]:
                if wid not in in_heap:
                    heapq.heappush(heap, (ready[wid], wid))
                    in_heap.add(wid)
                continue
            ix = ix_of[wid]
            if ptr[ix] == ends[ix]:
                finished.add(wid)
                if t > makespan:
                    makespan = t
                retire(wid)
                continue
            i = streams[ix][ptr[ix]]
            ptr[ix] += 1
            k = kind[i]
            if k == _OP_MEM:
                u = unitv[i]
                s = slots[i]
                start = t if t > pf[u] else pf[u]
                complete = start + s + lat[u] - 2
                pf[u] = start + s if pip[u] else complete + 1
                if start + s > busy[u]:
                    busy[u] = start + s
                if complete > last[u]:
                    last[u] = complete
                post = arg[i]
                if post:
                    compute_ops += 1
                    compute_cycles += post
                nr = complete + 1 + post
                ready[wid] = nr
                if nr > makespan:
                    makespan = nr
                heapq.heappush(heap, (nr, wid))
                in_heap.add(wid)
            elif k == _OP_COMPUTE:
                compute_ops += 1
                compute_cycles += arg[i]
                nr = t + arg[i]
                ready[wid] = nr
                if nr > makespan:
                    makespan = nr
                heapq.heappush(heap, (nr, wid))
                in_heap.add(wid)
            else:  # barrier arrival: wait for the group
                gkey = (
                    device_key
                    if arg[i] == _SCOPE_DEVICE
                    else (BarrierScope.DMM, warp_dmms[ix])
                )
                group = groups[gkey]
                group.waiting.add(wid)
                group.arrivals[wid] = t
                maybe_release(group)

        stats: dict[str, UnitStats] = {}
        for u, name in enumerate(self._unit_names):
            tally = self._unit_tallies[u]
            st = slot_tallies[u]
            stats[name] = UnitStats(
                transactions=tally["transactions"],
                reads=tally["reads"],
                writes=tally["writes"],
                requests=tally["requests"],
                slots=st["slots"],
                conflicted_transactions=st["conflicted"],
                excess_slots=st["excess"],
                port_busy_until=busy[u],
                last_complete=last[u],
            )
        result = SchedulerResult(
            cycles=makespan,
            compute_ops=compute_ops,
            compute_cycles=compute_cycles,
            barrier_releases=releases,
        )
        return result, stats


# ---------------------------------------------------------------------------
# The trace store: in-memory LRU + on-disk .npz files.
# ---------------------------------------------------------------------------


def trace_store_allowed() -> bool:
    """False when ``REPRO_STORE``/``REPRO_STORE_TRACE`` (or the
    deprecated ``REPRO_TRACE_STORE``) disables on-disk persistence."""
    return _store_config.namespace_allowed("trace")


def default_trace_dir() -> Path:
    """Where the ``trace`` namespace's entries live:
    ``$REPRO_STORE_TRACE_DIR`` (or the deprecated
    ``$REPRO_TRACE_STORE_DIR``), else ``benchmarks/.store/trace`` under
    the working directory — deliberately beside the sweep result cache."""
    return _store_config.namespace_dir("trace")


class _TraceCodec:
    """``CompiledTrace`` ↔ compressed ``.npz`` bytes.

    Named ``npz`` on purpose: the payload *is* a plain ``.npz`` archive
    (the byte format of :meth:`CompiledTrace.save`), so entries written
    generically (the migration importer, the store CLI) and entries
    written here are mutually readable.
    """

    name = "npz"
    extension = "npz"

    def encode(self, trace: "CompiledTrace") -> bytes:
        buf = io.BytesIO()
        np.savez_compressed(buf, **trace.to_payload())
        return buf.getvalue()

    def decode(self, data: bytes) -> "CompiledTrace":
        with np.load(io.BytesIO(data), allow_pickle=False) as npz:
            return CompiledTrace.from_payload(
                {name: npz[name] for name in npz.files}
            )


_TRACE_CODEC = _TraceCodec()


def _trace_fingerprint() -> str:
    """Cache-invalidation fingerprint; shares the sweep cache's override
    knob (``REPRO_SWEEP_FINGERPRINT``) so one variable governs both."""
    env = os.environ.get("REPRO_SWEEP_FINGERPRINT")
    if env:
        return env
    from repro import __version__  # deferred: repro imports this module

    return f"repro-{__version__}"


@dataclass(frozen=True)
class TraceStoreStats:
    """Store contents plus this session's counters."""

    entries_memory: int
    entries_disk: int
    size_bytes: int
    hits_memory: int
    hits_disk: int
    misses: int
    captures: int
    refusals: int
    flagged_programs: int
    evictions: int
    io_errors: int

    @property
    def hits(self) -> int:
        return self.hits_memory + self.hits_disk

    def describe(self) -> str:
        return (
            f"trace store: {self.entries_memory} in memory / "
            f"{self.entries_disk} on disk ({self.size_bytes} bytes); "
            f"session: {self.hits} hits ({self.hits_memory} mem, "
            f"{self.hits_disk} disk) / {self.misses} misses, "
            f"{self.captures} captures, {self.refusals} refusals, "
            f"{self.flagged_programs} flagged non-oblivious"
        )


class TraceStore:
    """Keyed storage of compiled traces with an obliviousness guard.

    Storage is the ``trace`` namespace of the unified artifact store
    (:mod:`repro.store`): lookups hit its in-memory LRU first, then the
    on-disk directory (shared across processes — sweep workers capture
    once, everyone replays), with envelope integrity verification and
    quarantine of corrupt entries.  :meth:`insert` runs the cross-input
    self-check: two captures sharing a ``struct`` key (same program +
    shape) but with different input data must have identical trace
    signatures, or the program is flagged non-oblivious, its traces
    evicted, and replay refused from then on.
    """

    def __init__(
        self,
        *,
        directory: "Path | str | None" = None,
        persist: bool | None = None,
        max_entries: int | None = None,
        capture_limit: int | None = None,
        fingerprint: str | None = None,
    ) -> None:
        explicit_dir = directory is not None
        self.directory = (
            Path(directory) if explicit_dir else default_trace_dir()
        )
        self.persist = trace_store_allowed() if persist is None else persist
        if max_entries is None:
            max_entries = (
                _store_config.namespace_int("trace", "LRU")
                or _DEFAULT_LRU_ENTRIES
            )
        self.max_entries = max(1, max_entries)
        if capture_limit is None:
            raw = os.environ.get(CAPTURE_LIMIT_ENV)
            capture_limit = int(raw) if raw else _DEFAULT_CAPTURE_LIMIT
        #: Max transactions captured per launch (None = unlimited);
        #: overflowing launches refuse replay instead of exhausting RAM.
        self.capture_limit = capture_limit if capture_limit > 0 else None
        self.fingerprint = fingerprint or _trace_fingerprint()
        self._ns = ArtifactStore().namespace(
            "trace",
            _TRACE_CODEC,
            directory=self.directory,
            persist=self.persist,
            max_memory_entries=self.max_entries,
            max_memory_bytes=None,  # entry-count LRU, as before
        )
        _auto_migrate(
            self._ns,
            None
            if (explicit_dir
                or _store_config.namespace_dir_overridden("trace"))
            else _store_config.legacy_default_dir("trace"),
        )
        self._struct_sig: dict[str, tuple[str, str]] = {}
        self._keys_by_struct: dict[str, set[str]] = {}
        self._flagged: set[str] = set()
        self.captures = 0
        self.refusals = 0

    # -- the storage substrate ---------------------------------------------
    @property
    def store_namespace(self):
        """The underlying :class:`repro.store.Namespace`."""
        return self._ns

    # Session counters delegate to the namespace, so the same numbers
    # appear here and in the store-wide /metrics aggregation.
    @property
    def hits_memory(self) -> int:
        return self._ns.counters.hits_memory

    @property
    def hits_disk(self) -> int:
        return self._ns.counters.hits_disk

    @property
    def misses(self) -> int:
        return self._ns.counters.misses

    @property
    def evictions(self) -> int:
        return (self._ns.counters.evictions_memory
                + self._ns.counters.evictions_disk)

    @property
    def io_errors(self) -> int:
        # Corrupt (quarantined) entries count here too: before the
        # unified store they surfaced as load failures.
        return (self._ns.counters.io_errors
                + self._ns.counters.integrity_failures)

    def _path(self, key: str) -> Path:
        return self._ns.path_of(key)

    # -- guard -------------------------------------------------------------
    def flagged(self, struct: str) -> bool:
        """Has the self-check branded this program+shape non-oblivious?"""
        return struct in self._flagged

    def note_refusal(self) -> None:
        """Count one launch that refused replay (fell back to event)."""
        self.refusals += 1

    def _flag(self, struct: str) -> None:
        self._flagged.add(struct)
        for key in self._keys_by_struct.pop(struct, set()):
            self._ns.delete(key)
        self._struct_sig.pop(struct, None)

    # -- access ------------------------------------------------------------
    def lookup(self, key: LaunchKey) -> CompiledTrace | None:
        """The stored trace for ``key``, or ``None`` (counted as a miss)."""
        trace = self._ns.get(key.full)
        if trace is None:
            return None
        self._keys_by_struct.setdefault(key.struct, set()).add(key.full)
        return trace

    def insert(self, key: LaunchKey, trace: CompiledTrace) -> bool:
        """Store a fresh capture; ``False`` if the self-check rejects it.

        Rejection means the program produced structurally different
        traces for different input data — it is not oblivious, and
        neither this nor any previously stored trace for it may be
        replayed.
        """
        signature = trace.signature()
        prev = self._struct_sig.get(key.struct)
        if prev is not None and prev[0] != key.data and prev[1] != signature:
            self._flag(key.struct)
            return False
        self._struct_sig[key.struct] = (key.data, signature)
        self._keys_by_struct.setdefault(key.struct, set()).add(key.full)
        self._ns.put(key.full, trace)
        self.captures += 1
        return True

    # -- observability -----------------------------------------------------
    def stats(self) -> TraceStoreStats:
        contents = self._ns.stats()
        return TraceStoreStats(
            entries_memory=contents.entries_memory,
            entries_disk=contents.entries_disk,
            size_bytes=contents.disk_bytes,
            hits_memory=self.hits_memory,
            hits_disk=self.hits_disk,
            misses=self.misses,
            captures=self.captures,
            refusals=self.refusals,
            flagged_programs=len(self._flagged),
            evictions=self.evictions,
            io_errors=self.io_errors,
        )

    def stats_dict(self) -> dict:
        """JSON-able stats (the service's ``/metrics`` payload)."""
        s = self.stats()
        lookups = s.hits + s.misses
        return {
            "hits": s.hits,
            "misses": s.misses,
            "hit_rate": round(s.hits / lookups, 4) if lookups else 0.0,
            "captures": s.captures,
            "refusals": s.refusals,
            "flagged_programs": s.flagged_programs,
            "entries_memory": s.entries_memory,
            "entries_disk": s.entries_disk,
            "size_bytes": s.size_bytes,
        }

    def clear(self) -> None:
        """Drop every stored trace (memory and disk) and all flags."""
        self._ns.clear()
        self._struct_sig.clear()
        self._keys_by_struct.clear()
        self._flagged.clear()


_default_store: TraceStore | None = None


def default_store() -> TraceStore:
    """The process-wide trace store (created on first use from the env)."""
    global _default_store
    if _default_store is None:
        _default_store = TraceStore()
    return _default_store


def reset_default_store() -> None:
    """Forget the process-wide store (tests re-point it via the env)."""
    global _default_store
    _default_store = None


# ---------------------------------------------------------------------------
# The engine-facing entry point.
# ---------------------------------------------------------------------------


def replay_launch(
    *,
    program: Callable,
    contexts: Sequence[WarpContext],
    machine: str,
    width: int,
    unit_names: Sequence[str],
    units: Sequence[PipelinedMemoryUnit],
    spaces: Sequence[MemorySpace],
    unit_for,
    dispatch: str,
    store: TraceStore | None = None,
    backend: "str | None" = None,
) -> tuple[SchedulerResult, dict[str, UnitStats] | None, str]:
    """Run one ``mode="replay"`` launch; returns ``(result, stats, tag)``.

    * trace-store hit → re-price the stored trace at the engine's
      current latencies/policies/dispatch, reinstate the captured
      post-run memory state, tag ``"replay"`` (``stats`` holds the
      per-unit statistics; the engine's own units saw no traffic);
    * miss → one instrumented event run captures the trace (undo-logged:
      a capture-cap overflow rolls back and re-runs untraced), stores
      it, tag ``"replay-capture"`` (``stats is None`` — the engine's
      units observed the run);
    * refusal (non-oblivious / unkeyable / flagged / overflow) → plain
      event run, tag ``"replay-refused"`` (``stats is None``).
    """
    store = store if store is not None else default_store()
    key = derive_launch_key(
        program,
        machine=machine,
        width=width,
        contexts=contexts,
        spaces=spaces,
        fingerprint=store.fingerprint,
    )
    if key is None or store.flagged(key.struct):
        store.note_refusal()
        result = Scheduler(unit_for, dispatch=dispatch).run(
            [WarpState(ctx=c, program=program(c)) for c in contexts]
        )
        return result, None, "replay-refused"

    trace = store.lookup(key)
    if trace is not None and trace.matches_launch(
        machine=machine, width=width, contexts=contexts, unit_names=unit_names
    ):
        result, stats = trace.evaluator().evaluate(
            latencies=[u.latency for u in units],
            policies=[u.policy for u in units],
            pipelined=[u.pipelined for u in units],
            dispatch=dispatch,
            backend=backend,
        )
        for space in spaces:
            cells = trace.post_state.get(space.name)
            if cells is not None:
                space.load_state(cells)
        return result, stats, "replay"

    # Miss: capture with one instrumented event run.  The undo log lets a
    # capture-cap overflow roll back cleanly and re-run untraced.
    compiler = TraceCompiler(unit_names, max_transactions=store.capture_limit)
    for space in spaces:
        space.begin_undo()
    try:
        result = Scheduler(unit_for, trace=compiler, dispatch=dispatch).run(
            [WarpState(ctx=c, program=program(c)) for c in contexts]
        )
    except TraceOverflowError:
        for space in spaces:
            space.rollback()
        for unit in units:
            unit.reset()
        store.note_refusal()
        result = Scheduler(unit_for, dispatch=dispatch).run(
            [WarpState(ctx=c, program=program(c)) for c in contexts]
        )
        return result, None, "replay-refused"
    for space in spaces:
        space.end_undo()
    trace = compiler.compile(
        contexts=contexts,
        machine=machine,
        width=width,
        post_state={space.name: space.state() for space in spaces},
        fingerprint=store.fingerprint,
    )
    store.insert(key, trace)
    return result, None, "replay-capture"
