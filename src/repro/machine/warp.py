"""Warp contexts and the warp-program protocol.

The memory machine models execute threads in SIMD fashion in warps of
``w`` threads, so the simulator's unit of execution is the warp.  A *warp
program* is a generator function

.. code-block:: python

    def program(warp: WarpContext):
        i = warp.tids                      # global thread ids, one per lane
        vals = yield warp.read(a, i)       # coalesced read a[i]
        yield warp.compute(1)              # one RAM op per thread
        yield warp.write(b, i, 2 * vals)   # coalesced write b[i]
        yield warp.barrier()               # device-wide sync

Lockstep is structural: a single ``yield`` describes the step of every
lane at once.  Divergence is expressed with *lane masks* (``mask=``
arguments), never with per-lane Python control flow; masked-off lanes
issue no request, and fully-masked operations cost nothing (the paper's
rule that a warp with no pending access is not dispatched).

Each lane keeps its private state in ordinary numpy arrays local to the
generator — the model's per-thread registers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Generator

import numpy as np

from repro.errors import KernelError
from repro.machine.memory import ArrayHandle
from repro.machine.ops import (
    BarrierOp,
    BarrierScope,
    ComputeOp,
    Op,
    ReadOp,
    WriteOp,
)

__all__ = ["WarpContext", "WarpProgram"]

#: A warp program: receives its context, yields operations.
WarpProgram = Callable[["WarpContext"], Generator[Op, "np.ndarray | None", None]]


@dataclass(frozen=True)
class WarpContext:
    """Everything a warp program knows about its own identity.

    Attributes
    ----------
    warp_id:
        Machine-wide warp index.
    dmm_id:
        Index of the DMM this warp runs on (0 on a flat DMM/UMM machine).
    warp_in_dmm:
        Warp index within its DMM.
    width:
        Warp size / machine width ``w``.
    tids:
        Global thread ids of the warp's lanes (length ``<= width``; the
        final warp of a launch may be partial).
    local_tids:
        Thread ids *within the DMM* (``T(j)`` of ``DMM(i)`` in the paper).
    num_threads:
        Total threads ``p`` of the launch.
    threads_in_dmm:
        Threads running on this warp's DMM (``p_i`` in the paper).
    """

    warp_id: int
    dmm_id: int
    warp_in_dmm: int
    width: int
    tids: np.ndarray
    local_tids: np.ndarray
    num_threads: int
    threads_in_dmm: int

    # -- lane helpers ------------------------------------------------------
    @property
    def lanes(self) -> np.ndarray:
        """Lane indices ``0..len(tids)`` within the warp."""
        return np.arange(self.tids.size, dtype=np.int64)

    @property
    def num_lanes(self) -> int:
        """Number of live lanes in this warp."""
        return int(self.tids.size)

    # -- operation constructors ---------------------------------------------
    def read(
        self,
        array: ArrayHandle,
        indices: np.ndarray | int,
        mask: np.ndarray | None = None,
    ) -> ReadOp:
        """One read per active lane: lane ``j`` reads ``array[indices[j]]``.

        ``indices`` may be a scalar (all lanes read the same cell — a
        broadcast costing one slot) or a vector with one entry per live
        lane.  ``mask`` is a boolean vector over live lanes; masked-off
        lanes do not participate and receive 0 in the returned values.
        """
        idx, participate = self._lane_vector(indices, mask)
        return ReadOp(
            array=array,
            addresses=array.addresses(idx[participate]),
            result_mask=participate,
        )

    def write(
        self,
        array: ArrayHandle,
        indices: np.ndarray | int,
        values: np.ndarray | float,
        mask: np.ndarray | None = None,
    ) -> WriteOp:
        """One write per active lane: lane ``j`` writes ``values[j]``.

        On address collisions the lowest participating lane wins
        (deterministic arbitrary-CRCW).
        """
        idx, participate = self._lane_vector(indices, mask)
        vals = np.asarray(values, dtype=np.float64)
        if vals.ndim == 0:
            vals = np.full(self.num_lanes, float(vals))
        if vals.size != self.num_lanes:
            raise KernelError(
                f"write values must have one entry per live lane "
                f"({self.num_lanes}), got {vals.size}"
            )
        return WriteOp(
            array=array,
            addresses=array.addresses(idx[participate]),
            values=vals.ravel()[participate],
        )

    def compute(self, cycles: int = 1) -> ComputeOp:
        """Local RAM computation: each thread spends ``cycles`` time units."""
        return ComputeOp(cycles=cycles)

    def barrier(self, scope: BarrierScope = BarrierScope.DEVICE) -> BarrierOp:
        """Synchronize with all warps in ``scope`` (costs no time units)."""
        return BarrierOp(scope=scope)

    def sync_dmm(self) -> BarrierOp:
        """Shorthand for a DMM-scope barrier (CUDA ``__syncthreads``)."""
        return BarrierOp(scope=BarrierScope.DMM)

    # -- internals -----------------------------------------------------------
    def _lane_vector(
        self,
        indices: np.ndarray | int,
        mask: np.ndarray | None,
    ) -> tuple[np.ndarray, np.ndarray]:
        idx = np.asarray(indices, dtype=np.int64)
        if idx.ndim == 0:
            idx = np.full(self.num_lanes, int(idx), dtype=np.int64)
        if idx.size != self.num_lanes:
            raise KernelError(
                f"index vector must have one entry per live lane "
                f"({self.num_lanes}), got {idx.size}"
            )
        if mask is None:
            participate = np.ones(self.num_lanes, dtype=bool)
        else:
            participate = np.asarray(mask, dtype=bool)
            if participate.size != self.num_lanes:
                raise KernelError(
                    f"mask must have one entry per live lane "
                    f"({self.num_lanes}), got {participate.size}"
                )
        return idx.ravel(), participate
