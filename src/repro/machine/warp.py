"""Warp contexts and the warp-program protocol.

The memory machine models execute threads in SIMD fashion in warps of
``w`` threads, so the simulator's unit of execution is the warp.  A *warp
program* is a generator function

.. code-block:: python

    def program(warp: WarpContext):
        i = warp.tids                      # global thread ids, one per lane
        vals = yield warp.read(a, i)       # coalesced read a[i]
        yield warp.compute(1)              # one RAM op per thread
        yield warp.write(b, i, 2 * vals)   # coalesced write b[i]
        yield warp.barrier()               # device-wide sync

Lockstep is structural: a single ``yield`` describes the step of every
lane at once.  Divergence is expressed with *lane masks* (``mask=``
arguments), never with per-lane Python control flow; masked-off lanes
issue no request, and fully-masked operations cost nothing (the paper's
rule that a warp with no pending access is not dispatched).

Each lane keeps its private state in ordinary numpy arrays local to the
generator — the model's per-thread registers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Generator

import numpy as np

from repro.errors import KernelError
from repro.machine.memory import ArrayHandle
from repro.machine.ops import (
    BarrierOp,
    BarrierScope,
    ComputeOp,
    Op,
    ReadOp,
    ReadRangeOp,
    WriteOp,
    WriteRangeOp,
)

__all__ = ["WarpContext", "WarpProgram", "full_mask"]

#: A warp program: receives its context, yields operations.
WarpProgram = Callable[["WarpContext"], Generator[Op, "np.ndarray | None", None]]

_FULL_MASKS: dict[int, np.ndarray] = {}


def full_mask(n: int) -> np.ndarray:
    """Shared read-only all-``True`` mask of length ``n``.

    Kernels that mask only their ragged tail rounds can pass this for the
    full rounds; the operation constructors recognize it by identity and
    skip the per-lane mask bookkeeping entirely.
    """
    m = _FULL_MASKS.get(n)
    if m is None:
        m = np.ones(n, dtype=bool)
        m.setflags(write=False)
        _FULL_MASKS[n] = m
    return m


@dataclass(frozen=True)
class WarpContext:
    """Everything a warp program knows about its own identity.

    Attributes
    ----------
    warp_id:
        Machine-wide warp index.
    dmm_id:
        Index of the DMM this warp runs on (0 on a flat DMM/UMM machine).
    warp_in_dmm:
        Warp index within its DMM.
    width:
        Warp size / machine width ``w``.
    tids:
        Global thread ids of the warp's lanes (length ``<= width``; the
        final warp of a launch may be partial).
    local_tids:
        Thread ids *within the DMM* (``T(j)`` of ``DMM(i)`` in the paper).
    num_threads:
        Total threads ``p`` of the launch.
    threads_in_dmm:
        Threads running on this warp's DMM (``p_i`` in the paper).
    """

    warp_id: int
    dmm_id: int
    warp_in_dmm: int
    width: int
    tids: np.ndarray
    local_tids: np.ndarray
    num_threads: int
    threads_in_dmm: int

    # -- lane helpers ------------------------------------------------------
    @property
    def lanes(self) -> np.ndarray:
        """Lane indices ``0..len(tids)`` within the warp."""
        return np.arange(self.tids.size, dtype=np.int64)

    @property
    def num_lanes(self) -> int:
        """Number of live lanes in this warp."""
        return int(self.tids.size)

    # -- operation constructors ---------------------------------------------
    def read(
        self,
        array: ArrayHandle,
        indices: np.ndarray | int,
        mask: np.ndarray | None = None,
    ) -> ReadOp:
        """One read per active lane: lane ``j`` reads ``array[indices[j]]``.

        ``indices`` may be a scalar (all lanes read the same cell — a
        broadcast costing one slot) or a vector with one entry per live
        lane.  ``mask`` is a boolean vector over live lanes; masked-off
        lanes do not participate and receive 0 in the returned values.
        """
        idx, participate = self._lane_vector(indices, mask)
        if participate is None:
            return ReadOp(
                array=array,
                addresses=array.addresses(idx),
                result_mask=full_mask(idx.size),
            )
        return ReadOp(
            array=array,
            addresses=array.addresses(idx[participate]),
            result_mask=participate,
        )

    def write(
        self,
        array: ArrayHandle,
        indices: np.ndarray | int,
        values: np.ndarray | float,
        mask: np.ndarray | None = None,
    ) -> WriteOp:
        """One write per active lane: lane ``j`` writes ``values[j]``.

        On address collisions the lowest participating lane wins
        (deterministic arbitrary-CRCW).
        """
        idx, participate = self._lane_vector(indices, mask)
        vals = np.asarray(values, dtype=np.float64)
        if vals.ndim == 0:
            vals = np.full(self.num_lanes, float(vals))
        if vals.size != self.num_lanes:
            raise KernelError(
                f"write values must have one entry per live lane "
                f"({self.num_lanes}), got {vals.size}"
            )
        if participate is None:
            return WriteOp(
                array=array,
                addresses=array.addresses(idx),
                values=vals.ravel(),
            )
        return WriteOp(
            array=array,
            addresses=array.addresses(idx[participate]),
            values=vals.ravel()[participate],
        )

    def read_range(
        self,
        array: ArrayHandle,
        indices: np.ndarray,
        *,
        compute: int = 0,
    ) -> ReadRangeOp:
        """Fused multi-round read: row ``j`` of ``indices`` is round ``j``.

        Timing-equivalent to yielding one unmasked :meth:`read` per row
        (each round's transaction issues when the previous round's data
        arrives), optionally followed by ``compute`` time units of local
        work per round.  The engine resumes the program *once*, with the
        ``(rounds, lanes)`` matrix of values — row ``j`` holding what the
        ``j``-th read would have returned.  Use for the full rounds of a
        contiguous sweep; ragged tail rounds keep using masked reads.
        """
        idx = self._range_matrix(indices)
        return ReadRangeOp(
            array=array,
            addresses=array.addresses(idx).reshape(idx.shape),
            compute=compute,
        )

    def write_range(
        self,
        array: ArrayHandle,
        indices: np.ndarray,
        values: np.ndarray,
        *,
        compute: int = 0,
    ) -> WriteRangeOp:
        """Fused multi-round write: round ``j`` stores ``values[j]``.

        The write twin of :meth:`read_range`; ``values`` must match the
        ``(rounds, lanes)`` shape of ``indices``.
        """
        idx = self._range_matrix(indices)
        vals = np.asarray(values, dtype=np.float64)
        if vals.shape != idx.shape:
            raise KernelError(
                f"range values must match the (rounds, lanes) index shape "
                f"{idx.shape}, got {vals.shape}"
            )
        return WriteRangeOp(
            array=array,
            addresses=array.addresses(idx).reshape(idx.shape),
            values=vals,
            compute=compute,
        )

    def compute(self, cycles: int = 1) -> ComputeOp:
        """Local RAM computation: each thread spends ``cycles`` time units."""
        return ComputeOp(cycles=cycles)

    def barrier(self, scope: BarrierScope = BarrierScope.DEVICE) -> BarrierOp:
        """Synchronize with all warps in ``scope`` (costs no time units)."""
        return BarrierOp(scope=scope)

    def sync_dmm(self) -> BarrierOp:
        """Shorthand for a DMM-scope barrier (CUDA ``__syncthreads``)."""
        return BarrierOp(scope=BarrierScope.DMM)

    # -- internals -----------------------------------------------------------
    def _range_matrix(self, indices: np.ndarray) -> np.ndarray:
        """Validate a (rounds, lanes) index matrix for a range operation."""
        if type(indices) is np.ndarray and indices.dtype == np.int64:
            idx = indices
        else:
            idx = np.asarray(indices, dtype=np.int64)
        if idx.ndim != 2 or idx.shape[1] != self.num_lanes:
            raise KernelError(
                f"range indices must be a (rounds, {self.num_lanes}) "
                f"matrix, got shape {idx.shape}"
            )
        if idx.shape[0] < 1:
            raise KernelError("a range must cover at least one round")
        return idx

    def _lane_vector(
        self,
        indices: np.ndarray | int,
        mask: np.ndarray | None,
    ) -> tuple[np.ndarray, np.ndarray | None]:
        """Normalize ``(indices, mask)``; ``None`` mask means "all lanes".

        A returned ``participate`` of ``None`` tells the operation
        constructors every live lane takes part, so they can skip the
        fancy-indexing that a partial mask requires.
        """
        n = self.num_lanes
        if type(indices) is np.ndarray and indices.ndim == 1:
            if indices.size != n:
                raise KernelError(
                    f"index vector must have one entry per live lane "
                    f"({n}), got {indices.size}"
                )
            idx = indices if indices.dtype == np.int64 else indices.astype(np.int64)
        else:
            idx = np.asarray(indices, dtype=np.int64)
            if idx.ndim == 0:
                idx = np.full(n, int(idx), dtype=np.int64)
            elif idx.size != n:
                raise KernelError(
                    f"index vector must have one entry per live lane "
                    f"({n}), got {idx.size}"
                )
            idx = idx.ravel()
        if mask is None:
            return idx, None
        participate = (
            mask
            if type(mask) is np.ndarray and mask.dtype == np.bool_
            else np.asarray(mask, dtype=bool)
        )
        if participate.size != n:
            raise KernelError(
                f"mask must have one entry per live lane "
                f"({n}), got {participate.size}"
            )
        if participate is _FULL_MASKS.get(n) or participate.all():
            return idx, None
        return idx, participate
