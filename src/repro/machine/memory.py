"""Memory spaces and array handles.

A :class:`MemorySpace` is one flat, word-addressed address space backed by
a numpy array — the single address space that the paper maps onto ``w``
memory banks in an interleaved fashion (cell ``i`` lives in bank
``i mod w``).  An HMM owns ``d + 1`` spaces: one shared space per DMM plus
the global space.

Arrays are allocated sequentially from a space with :meth:`MemorySpace.alloc`
and addressed through :class:`ArrayHandle`, which performs bounds checking
and translates array indices into absolute addresses (the quantity the
bank / address-group rules apply to).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import AddressError, AllocationError

__all__ = ["MemorySpace", "ArrayHandle"]


class MemorySpace:
    """A flat word-addressed memory backed by ``numpy.float64`` cells.

    Parameters
    ----------
    name:
        Human-readable identifier (``"global"``, ``"shared[3]"``, ...).
    capacity:
        Number of words.  Spaces grow on demand up to ``capacity``; the
        default (1 << 26 words) is far above anything the test suite or
        benchmarks allocate while catching runaway allocations.
    space_id:
        Opaque identifier the engine uses to route operations to the
        right memory unit.
    """

    __slots__ = ("name", "capacity", "space_id", "_cells", "_brk", "_undo")

    def __init__(
        self,
        name: str,
        capacity: int = 1 << 26,
        space_id: object = None,
    ) -> None:
        if capacity < 1:
            raise AllocationError(f"capacity must be >= 1, got {capacity}")
        self.name = name
        self.capacity = capacity
        self.space_id = space_id if space_id is not None else name
        self._cells = np.zeros(0, dtype=np.float64)
        self._brk = 0  # allocation break: first free address
        self._undo: list[tuple[np.ndarray, np.ndarray]] | None = None

    # -- allocation ---------------------------------------------------------
    def alloc(self, size: int, name: str = "") -> "ArrayHandle":
        """Allocate ``size`` consecutive words and return a handle.

        Allocation is bump-pointer: arrays are laid out back to back, so
        an array allocated at address 0 has its ``i``-th element in bank
        ``i mod w`` exactly as the paper's algorithms assume.  Use
        :meth:`align` first when a fresh array must start at bank 0.
        """
        if size < 1:
            raise AllocationError(f"array size must be >= 1, got {size}")
        if self._brk + size > self.capacity:
            raise AllocationError(
                f"space {self.name!r} exhausted: brk={self._brk}, "
                f"request={size}, capacity={self.capacity}"
            )
        base = self._brk
        self._brk += size
        self._ensure(self._brk)
        return ArrayHandle(space=self, base=base, size=size, name=name)

    def align(self, width: int) -> None:
        """Advance the allocation break to the next multiple of ``width``.

        Aligning to the machine width makes element ``i`` of the next
        array fall in bank ``i mod w`` / address group ``i div w``,
        matching the layout every algorithm in the paper assumes.
        """
        if width < 1:
            raise AllocationError(f"alignment must be >= 1, got {width}")
        rem = self._brk % width
        if rem:
            pad = width - rem
            if self._brk + pad > self.capacity:
                raise AllocationError(
                    f"space {self.name!r} exhausted while aligning to {width}"
                )
            self._brk += pad
            self._ensure(self._brk)

    def alloc_aligned(self, size: int, width: int, name: str = "") -> "ArrayHandle":
        """Allocate ``size`` words starting at a multiple of ``width``."""
        self.align(width)
        return self.alloc(size, name)

    @property
    def used(self) -> int:
        """Words allocated so far."""
        return self._brk

    def _ensure(self, length: int) -> None:
        if length > self._cells.size:
            grown = np.zeros(max(length, 2 * self._cells.size, 64), dtype=np.float64)
            grown[: self._cells.size] = self._cells
            self._cells = grown

    # -- state capture (batch-engine fallback support) -----------------------
    def snapshot(self) -> np.ndarray:
        """Copy of all cell values, for restoring after a failed fast path.

        Only cell *values* are captured; the allocation break is host-side
        state that kernel launches never move.
        """
        return self._cells.copy()

    def restore(self, cells: np.ndarray) -> None:
        """Reinstate a :meth:`snapshot` (discards writes made since)."""
        self._cells = cells.copy()

    def state(self) -> np.ndarray:
        """Copy of the *allocated* cells (``[0, used)``) only.

        Cells past the allocation break are unreachable by kernels, so
        this is the complete observable value state of the space — what
        trace replay hashes (cache keying) and stores (post-run state).
        """
        return self._cells[: self._brk].copy()

    def load_state(self, cells: np.ndarray) -> None:
        """Overwrite the first ``cells.size`` cells with ``cells``.

        The inverse of :meth:`state`: trace replay uses it to reinstate a
        captured post-run state without re-executing the kernel.  The
        allocation break is host-side and untouched.
        """
        self._ensure(cells.size)
        self._cells[: cells.size] = cells

    def begin_undo(self) -> None:
        """Start logging stores so they can be rolled back.

        Cheaper than an upfront :meth:`snapshot` when most launches
        succeed and most cells are only read: each :meth:`store` records
        the overwritten values, and a failed fast path replays the log
        backwards.  Logging stops at :meth:`end_undo` / :meth:`rollback`.
        """
        self._undo = []

    def end_undo(self) -> None:
        """Stop logging stores and drop the undo log (attempt succeeded)."""
        self._undo = None

    def rollback(self) -> None:
        """Revert every store since :meth:`begin_undo`, newest first.

        Duplicate addresses within one store share one pre-store value,
        so replay order within an entry does not matter; entries replay
        newest-first so overlapping stores unwind correctly.
        """
        undo, self._undo = self._undo, None
        for addresses, old in reversed(undo or []):
            self._cells[addresses] = old

    # -- raw cell access (engine-side; does not model time) ------------------
    def load(self, addresses: np.ndarray) -> np.ndarray:
        """Return the values at ``addresses`` (absolute, validated)."""
        return self._cells[addresses]

    def store(self, addresses: np.ndarray, values: np.ndarray) -> None:
        """Store ``values`` at ``addresses``.

        On duplicate addresses the *first* occurrence wins; this
        implements the deterministic arbitrary-CRCW rule.  Numpy fancy
        assignment keeps the *last* occurrence, so the vectors are
        assigned in reverse order.
        """
        if addresses.size == 0:
            return
        if self._undo is not None:
            self._undo.append((addresses, self._cells[addresses]))
        if addresses.size > 1:
            self._cells[addresses[::-1]] = values[::-1]
        else:
            self._cells[addresses] = values

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"MemorySpace({self.name!r}, used={self._brk}/{self.capacity})"


@dataclass(frozen=True)
class ArrayHandle:
    """A contiguous array inside a :class:`MemorySpace`.

    The handle is what kernels pass to :meth:`WarpContext.read` /
    :meth:`WarpContext.write`; it owns bounds checking and the
    index-to-absolute-address translation.

    Host-side convenience accessors (:meth:`to_numpy`, :meth:`fill`,
    :meth:`set`) read and write the backing store directly *without*
    modeling any time — they correspond to host/device transfers outside
    the measured kernel, exactly like initializing the input array before
    an experiment.
    """

    space: MemorySpace
    base: int
    size: int
    name: str = ""

    # -- address translation --------------------------------------------------
    def addresses(self, indices: np.ndarray | int) -> np.ndarray:
        """Translate array indices into absolute addresses (bounds-checked)."""
        if type(indices) is np.ndarray and indices.dtype == np.int64:
            idx = indices if indices.ndim == 1 else indices.ravel()
        else:
            idx = np.asarray(indices, dtype=np.int64).ravel()
        if idx.size:
            lo = int(idx.min())
            hi = int(idx.max())
            if lo < 0 or hi >= self.size:
                raise AddressError(
                    f"index out of range for array {self.describe()}: "
                    f"min={lo}, max={hi}, size={self.size}"
                )
        return self.base + idx

    # -- host-side access ------------------------------------------------------
    def to_numpy(self) -> np.ndarray:
        """Copy of the array contents (host-side, untimed)."""
        return self.space.load(self.base + np.arange(self.size, dtype=np.int64))

    def set(self, values: np.ndarray | list | float) -> None:
        """Host-side bulk initialization (untimed)."""
        vals = np.asarray(values, dtype=np.float64).ravel()
        if vals.size == 1 and self.size != 1:
            vals = np.full(self.size, float(vals[0]))
        if vals.size != self.size:
            raise AddressError(
                f"cannot set array {self.describe()} of size {self.size} "
                f"with {vals.size} values"
            )
        self.space.store(self.base + np.arange(self.size, dtype=np.int64), vals)

    def fill(self, value: float) -> None:
        """Host-side fill (untimed)."""
        self.set(np.full(self.size, float(value)))

    def __len__(self) -> int:
        return self.size

    def describe(self) -> str:
        label = self.name or "<anon>"
        return f"{label}@{self.space.name}[{self.base}:{self.base + self.size}]"

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"ArrayHandle({self.describe()})"
