"""Bank and address-group arithmetic (paper Section II, Figure 3).

The single address space of a memory machine of width ``w`` is mapped onto
``w`` memory banks in an interleaved fashion:

* cell ``a`` lives in **bank** ``B[a mod w]`` (DMM conflict unit), and
* cell ``a`` lives in **address group** ``A[a div w]`` (UMM coalescing
  unit).

These two mappings, illustrated in the paper's Figure 3 for ``w = 4``, are
the entire difference between the DMM and the UMM.  This module implements
them together with the conflict metrics that the slot policies
(:mod:`repro.machine.policy`) are built on.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "bank_of",
    "group_of",
    "dedupe_addresses",
    "bank_histogram",
    "conflict_degree",
    "group_count",
    "bank_group_table",
]


def bank_of(addresses: np.ndarray | int, width: int) -> np.ndarray | int:
    """Bank index of each address: ``a mod w``."""
    return np.asarray(addresses) % width if not np.isscalar(addresses) else addresses % width


def group_of(addresses: np.ndarray | int, width: int) -> np.ndarray | int:
    """Address-group index of each address: ``a div w``."""
    if np.isscalar(addresses):
        return addresses // width
    return np.asarray(addresses) // width


def dedupe_addresses(addresses: np.ndarray) -> np.ndarray:
    """Distinct addresses of a warp transaction.

    The model merges requests to the same address — reads broadcast and
    writes resolve by the arbitrary-CRCW rule — so duplicates never cost
    extra pipeline slots.
    """
    if addresses.size <= 1:
        return addresses
    return np.unique(addresses)


def bank_histogram(addresses: np.ndarray, width: int) -> np.ndarray:
    """How many *distinct* addresses of the transaction fall in each bank.

    Returns a length-``width`` integer vector.  Its maximum is the bank
    conflict degree: the number of pipeline slots a DMM needs for the
    transaction.
    """
    distinct = dedupe_addresses(np.asarray(addresses, dtype=np.int64))
    return np.bincount(distinct % width, minlength=width)


def conflict_degree(addresses: np.ndarray, width: int) -> int:
    """Maximum number of distinct addresses in any single bank.

    This is the DMM cost of a warp transaction: memory cells in different
    banks can be accessed in one time unit, but ``x`` distinct cells in
    one bank are served in ``x`` turns.  A conflict-free transaction has
    degree 1; an empty transaction has degree 0.
    """
    if np.asarray(addresses).size == 0:
        return 0
    return int(bank_histogram(addresses, width).max())


def group_count(addresses: np.ndarray, width: int) -> int:
    """Number of distinct address groups touched by a transaction.

    This is the UMM cost of a warp transaction: all cells of one address
    group are served together (the broadcast address line selects a single
    group per time unit), so a transaction spanning ``g`` groups occupies
    ``g`` pipeline stages.  Fully coalesced access has count 1.
    """
    addrs = np.asarray(addresses, dtype=np.int64)
    if addrs.size == 0:
        return 0
    return int(np.unique(addrs // width).size)


def bank_group_table(num_cells: int, width: int) -> np.ndarray:
    """The layout table of the paper's Figure 3.

    Returns an ``(num_groups, width)`` array whose row ``g`` holds the
    addresses of address group ``g``; column ``b`` of the table is bank
    ``b``.  (Cells beyond ``num_cells`` in the last row are -1.)
    """
    num_groups = -(-num_cells // width)
    table = np.full((num_groups, width), -1, dtype=np.int64)
    cells = np.arange(num_cells, dtype=np.int64)
    table[cells // width, cells % width] = cells
    return table
