"""Bank and address-group arithmetic (paper Section II, Figure 3).

The single address space of a memory machine of width ``w`` is mapped onto
``w`` memory banks in an interleaved fashion:

* cell ``a`` lives in **bank** ``B[a mod w]`` (DMM conflict unit), and
* cell ``a`` lives in **address group** ``A[a div w]`` (UMM coalescing
  unit).

These two mappings, illustrated in the paper's Figure 3 for ``w = 4``, are
the entire difference between the DMM and the UMM.  This module implements
them together with the conflict metrics that the slot policies
(:mod:`repro.machine.policy`) are built on.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "bank_of",
    "group_of",
    "dedupe_addresses",
    "bank_histogram",
    "conflict_degree",
    "conflict_degrees",
    "conflict_degrees_matrix",
    "group_count",
    "group_counts",
    "group_counts_matrix",
    "bank_group_table",
]


def bank_of(addresses: np.ndarray | int, width: int) -> np.ndarray | int:
    """Bank index of each address: ``a mod w``."""
    return np.asarray(addresses) % width if not np.isscalar(addresses) else addresses % width


def group_of(addresses: np.ndarray | int, width: int) -> np.ndarray | int:
    """Address-group index of each address: ``a div w``."""
    if np.isscalar(addresses):
        return addresses // width
    return np.asarray(addresses) // width


def dedupe_addresses(addresses: np.ndarray) -> np.ndarray:
    """Distinct addresses of a warp transaction.

    The model merges requests to the same address — reads broadcast and
    writes resolve by the arbitrary-CRCW rule — so duplicates never cost
    extra pipeline slots.
    """
    if addresses.size <= 1:
        return addresses
    return np.unique(addresses)


def bank_histogram(addresses: np.ndarray, width: int) -> np.ndarray:
    """How many *distinct* addresses of the transaction fall in each bank.

    Returns a length-``width`` integer vector.  Its maximum is the bank
    conflict degree: the number of pipeline slots a DMM needs for the
    transaction.
    """
    distinct = dedupe_addresses(np.asarray(addresses, dtype=np.int64))
    return np.bincount(distinct % width, minlength=width)


def conflict_degree(addresses: np.ndarray, width: int) -> int:
    """Maximum number of distinct addresses in any single bank.

    This is the DMM cost of a warp transaction: memory cells in different
    banks can be accessed in one time unit, but ``x`` distinct cells in
    one bank are served in ``x`` turns.  A conflict-free transaction has
    degree 1; an empty transaction has degree 0.
    """
    if np.asarray(addresses).size == 0:
        return 0
    return int(bank_histogram(addresses, width).max())


def group_count(addresses: np.ndarray, width: int) -> int:
    """Number of distinct address groups touched by a transaction.

    This is the UMM cost of a warp transaction: all cells of one address
    group are served together (the broadcast address line selects a single
    group per time unit), so a transaction spanning ``g`` groups occupies
    ``g`` pipeline stages.  Fully coalesced access has count 1.
    """
    addrs = np.asarray(addresses, dtype=np.int64)
    if addrs.size == 0:
        return 0
    return int(np.unique(addrs // width).size)


def _flatten_batch(
    address_lists: "list[np.ndarray]",
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Concatenate a batch of address vectors into (sizes, rows, addrs).

    ``rows[k]`` is the index of the transaction that contributed
    ``addrs[k]``.  Shared plumbing of the batched conflict metrics below.
    """
    m = len(address_lists)
    sizes = np.fromiter((a.size for a in address_lists), dtype=np.int64, count=m)
    rows = np.repeat(np.arange(m, dtype=np.int64), sizes)
    if rows.size == 0:
        return sizes, rows, np.empty(0, dtype=np.int64)
    addrs = np.concatenate(address_lists).astype(np.int64, copy=False)
    return sizes, rows, addrs


def _sorted_distinct(keys: np.ndarray) -> np.ndarray:
    """Sorted distinct values of an integer key vector.

    Same result as ``np.unique`` but always via sort + transition mask,
    which beats the hash-based unique for the short key vectors the slot
    policies produce.
    """
    keys = np.sort(keys, axis=None)
    if keys.size <= 1:
        return keys
    first = np.empty(keys.size, dtype=bool)
    first[0] = True
    np.not_equal(keys[1:], keys[:-1], out=first[1:])
    return keys[first]


def conflict_degrees(address_lists: "list[np.ndarray]", width: int) -> np.ndarray:
    """Bank conflict degree of many transactions at once (batched DMM cost).

    Equivalent to ``[conflict_degree(a, width) for a in address_lists]``
    but computed with one sorted-distinct pass over (transaction, address)
    pairs — the vectorized fast path of the batch engine.  Empty
    transactions get degree 0.
    """
    m = len(address_lists)
    sizes, rows, addrs = _flatten_batch(address_lists)
    if addrs.size == 0:
        return np.zeros(m, dtype=np.int64)
    # Distinct (transaction, address) pairs: duplicates within one
    # transaction are broadcast / CRCW-merged and cost nothing.
    span = int(addrs.max()) + 1
    distinct = _sorted_distinct(rows * span + addrs)
    drows = distinct // span
    dbanks = (distinct % span) % width
    per_bank = np.bincount(drows * width + dbanks, minlength=m * width)
    return per_bank.reshape(m, width).max(axis=1)


def group_counts(address_lists: "list[np.ndarray]", width: int) -> np.ndarray:
    """Address-group count of many transactions at once (batched UMM cost).

    Equivalent to ``[group_count(a, width) for a in address_lists]`` with
    one sorted-distinct pass over (transaction, group) pairs.  Empty
    transactions get count 0.
    """
    m = len(address_lists)
    sizes, rows, addrs = _flatten_batch(address_lists)
    if addrs.size == 0:
        return np.zeros(m, dtype=np.int64)
    groups = addrs // width
    span = int(groups.max()) + 1
    distinct = _sorted_distinct(rows * span + groups)
    return np.bincount(distinct // span, minlength=m)


def conflict_degrees_matrix(address_matrix: np.ndarray, width: int) -> np.ndarray:
    """Bank conflict degree of every row of an address matrix.

    ``address_matrix`` is ``(rounds, lanes)``; row ``j`` is one warp
    transaction.  Equivalent to ``conflict_degrees(list(address_matrix))``
    without materializing per-row vectors — the slot-counting path for
    fused range operations.
    """
    m, lanes = address_matrix.shape
    a = np.sort(address_matrix, axis=1)
    first = np.empty((m, lanes), dtype=bool)
    first[:, 0] = True
    np.not_equal(a[:, 1:], a[:, :-1], out=first[:, 1:])
    keyed = np.arange(m, dtype=np.int64)[:, None] * width + a % width
    per_bank = np.bincount(keyed[first], minlength=m * width)
    return per_bank.reshape(m, width).max(axis=1)


def group_counts_matrix(address_matrix: np.ndarray, width: int) -> np.ndarray:
    """Address-group count of every row of an address matrix.

    The range-operation twin of :func:`group_counts`; row ``j`` of the
    ``(rounds, lanes)`` matrix is one warp transaction.
    """
    m, lanes = address_matrix.shape
    g = np.sort(address_matrix // width, axis=1)
    counts = np.ones(m, dtype=np.int64)
    if lanes > 1:
        counts += np.count_nonzero(g[:, 1:] != g[:, :-1], axis=1)
    return counts


def bank_group_table(num_cells: int, width: int) -> np.ndarray:
    """The layout table of the paper's Figure 3.

    Returns an ``(num_groups, width)`` array whose row ``g`` holds the
    addresses of address group ``g``; column ``b`` of the table is bank
    ``b``.  (Cells beyond ``num_cells`` in the last row are -1.)
    """
    num_groups = -(-num_cells // width)
    table = np.full((num_groups, width), -1, dtype=np.int64)
    cells = np.arange(num_cells, dtype=np.int64)
    table[cells // width, cells % width] = cells
    return table
