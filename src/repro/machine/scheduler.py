"""Event-driven warp scheduler.

The scheduler advances a set of warp programs through simulated time while
charging every operation according to the model rules:

* **memory operations** go through the :class:`PipelinedMemoryUnit` that
  owns the target array's memory space; the unit serializes transactions
  on its issue port (one pipeline slot per time unit) and delays
  completion by the latency;
* **compute operations** advance only the issuing warp's clock (threads
  are independent RAMs; local computation never contends);
* **barriers** align the clocks of all warps in scope at no cost.

Dispatch order is event-driven FIFO by default: among pending warps,
the one with the smallest ``(ready_time, warp_id)`` issues first.  The
paper specifies round-robin dispatch — available via
``dispatch="round-robin"``, which rotates priority within
equal-ready-time cohorts.  For perfectly load-balanced programs the two
policies produce identical counts; with ragged tails (a partial final
round) they can differ by O(1) time units per synchronization phase —
never asymptotically (both claims pinned by tests).

Memory *effects* (value movement) are applied at dispatch time in
dispatch order.  Programs must separate conflicting accesses from
different warps by barriers — as all of the paper's algorithms do; an
optional epoch-based race detector (:mod:`repro.machine.trace`) flags
violations.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Callable, Generator

import numpy as np

from repro.errors import DeadlockError, KernelError
from repro.machine.memory import ArrayHandle
from repro.machine.ops import (
    BarrierOp,
    BarrierScope,
    ComputeOp,
    MemoryOp,
    Op,
    RangeOp,
    ReadOp,
    ReadRangeOp,
    WriteOp,
    WriteRangeOp,
)
from repro.machine.pipeline import PipelinedMemoryUnit
from repro.machine.trace import TraceRecorder
from repro.machine.warp import WarpContext

__all__ = ["WarpState", "Scheduler", "SchedulerResult"]


@dataclass
class WarpState:
    """Book-keeping for one running warp."""

    ctx: WarpContext
    program: Generator[Op, "np.ndarray | None", None]
    ready: int = 0
    finished: bool = False
    #: Value to send into the generator at the next step (read results).
    pending_send: np.ndarray | None = None
    #: Number of barriers this warp has passed, per scope (mismatch check).
    barrier_seq: dict[BarrierScope, int] = field(default_factory=dict)
    #: Fused range operation in progress (dispatched one round per event).
    range_op: RangeOp | None = None
    #: Next round of ``range_op`` to dispatch.
    range_round: int = 0
    #: Value matrix being accumulated for an in-progress read range.
    range_values: np.ndarray | None = None

    @property
    def warp_id(self) -> int:
        return self.ctx.warp_id


@dataclass
class SchedulerResult:
    """Outcome of a scheduler run."""

    #: Total elapsed time units (makespan).
    cycles: int
    #: Number of compute operations dispatched.
    compute_ops: int
    #: Total compute time units charged across warps (not wall time).
    compute_cycles: int
    #: Number of barrier releases performed.
    barrier_releases: int


class _BarrierGroup:
    """Warps synchronizing together at one scope."""

    __slots__ = ("members", "waiting", "arrivals", "seq")

    def __init__(self, members: set[int]) -> None:
        self.members = set(members)  # unfinished member warp ids
        self.waiting: set[int] = set()
        self.arrivals: dict[int, int] = {}
        self.seq: dict[int, int] = {}

    def complete(self) -> bool:
        return bool(self.members) and self.waiting == self.members


class Scheduler:
    """Run warp programs to completion under the model timing rules.

    Parameters
    ----------
    unit_for:
        Maps ``(warp_state, memory_op)`` to the memory unit serving it
        (also responsible for space-visibility validation).
    space_for:
        Maps an :class:`ArrayHandle` to the backing
        :class:`~repro.machine.memory.MemorySpace` used to apply effects
        (normally ``op.array.space``; injected for testability).
    trace:
        Optional transaction recorder.
    """

    def __init__(
        self,
        unit_for: Callable[[WarpState, MemoryOp], PipelinedMemoryUnit],
        *,
        trace: TraceRecorder | None = None,
        dispatch: str = "fifo",
    ) -> None:
        if dispatch not in ("fifo", "round-robin"):
            raise KernelError(
                f"dispatch must be 'fifo' or 'round-robin', got {dispatch!r}"
            )
        self._unit_for = unit_for
        self._trace = trace
        self._dispatch = dispatch
        self._rr_next = 0

    # ------------------------------------------------------------------
    def run(self, warps: list[WarpState]) -> SchedulerResult:
        if not warps:
            return SchedulerResult(cycles=0, compute_ops=0, compute_cycles=0, barrier_releases=0)

        groups = self._build_barrier_groups(warps)
        by_id = {ws.warp_id: ws for ws in warps}

        # Priority queue of runnable warps: (ready, warp_id).
        heap: list[tuple[int, int]] = [(ws.ready, ws.warp_id) for ws in warps]
        heapq.heapify(heap)
        in_heap = {ws.warp_id for ws in warps}

        makespan = 0
        compute_ops = 0
        compute_cycles = 0
        barrier_releases = 0

        while heap:
            ready, wid = heapq.heappop(heap)
            if self._dispatch == "round-robin":
                # Among warps ready at the same time, rotate priority:
                # pop the whole ready-time cohort and pick by rotation.
                cohort = [(ready, wid)]
                while heap and heap[0][0] == ready:
                    cohort.append(heapq.heappop(heap))
                pick = min(
                    cohort,
                    key=lambda rw: (rw[1] - self._rr_next) % max(len(by_id), 1),
                )
                for entry in cohort:
                    if entry is not pick:
                        heapq.heappush(heap, entry)
                ready, wid = pick
                self._rr_next = (wid + 1) % max(len(by_id), 1)
            in_heap.discard(wid)
            ws = by_id[wid]
            if ws.finished:
                continue
            if ready != ws.ready:
                # Stale entry (warp was re-timed by a barrier release).
                if wid not in in_heap:
                    heapq.heappush(heap, (ws.ready, wid))
                    in_heap.add(wid)
                continue

            if ws.range_op is not None:
                # A fused range in progress: dispatch exactly one round,
                # as the equivalent per-round loop would at this event.
                c_ops, c_cyc = self._range_round(ws)
                compute_ops += c_ops
                compute_cycles += c_cyc
                makespan = max(makespan, ws.ready)
                heapq.heappush(heap, (ws.ready, wid))
                in_heap.add(wid)
                continue

            op = self._advance(ws)
            if op is None:  # StopIteration: warp finished
                ws.finished = True
                makespan = max(makespan, ws.ready)
                barrier_releases += self._retire_from_groups(ws, groups, heap, in_heap, by_id)
                continue

            if isinstance(op, ComputeOp):
                compute_ops += 1
                compute_cycles += op.cycles
                if self._trace is not None:
                    self._trace.record_compute(ws.ctx, op.cycles)
                ws.ready += op.cycles
                makespan = max(makespan, ws.ready)
                heapq.heappush(heap, (ws.ready, wid))
                in_heap.add(wid)
            elif isinstance(op, MemoryOp):
                self._dispatch_memory(ws, op)
                makespan = max(makespan, ws.ready)
                heapq.heappush(heap, (ws.ready, wid))
                in_heap.add(wid)
            elif isinstance(op, RangeOp):
                ws.range_op = op
                ws.range_round = 0
                if isinstance(op, ReadRangeOp):
                    ws.range_values = np.empty(
                        (op.rounds, op.lanes), dtype=np.float64
                    )
                c_ops, c_cyc = self._range_round(ws)
                compute_ops += c_ops
                compute_cycles += c_cyc
                makespan = max(makespan, ws.ready)
                heapq.heappush(heap, (ws.ready, wid))
                in_heap.add(wid)
            elif isinstance(op, BarrierOp):
                released = self._arrive_at_barrier(ws, op, groups, heap, in_heap, by_id)
                barrier_releases += released
            else:  # pragma: no cover - defensive
                raise KernelError(f"warp {wid} yielded unknown operation {op!r}")

        # Any warp still waiting at a barrier means mismatched barrier use.
        stuck = [
            wid
            for g in groups.values()
            for wid in g.waiting
            if not by_id[wid].finished
        ]
        if stuck:
            raise DeadlockError(
                f"warps {sorted(set(stuck))} are blocked at a barrier that "
                "can never be released (mismatched barrier counts?)"
            )
        return SchedulerResult(
            cycles=makespan,
            compute_ops=compute_ops,
            compute_cycles=compute_cycles,
            barrier_releases=barrier_releases,
        )

    # ------------------------------------------------------------------
    def _advance(self, ws: WarpState) -> Op | None:
        send, ws.pending_send = ws.pending_send, None
        try:
            if send is None:
                return next(ws.program)
            return ws.program.send(send)
        except StopIteration:
            return None

    def _dispatch_memory(self, ws: WarpState, op: MemoryOp) -> None:
        if op.num_requests == 0:
            # Fully masked: warp not dispatched, costs nothing.
            if isinstance(op, ReadOp):
                ws.pending_send = np.zeros(ws.ctx.num_lanes, dtype=np.float64)
            return
        unit = self._unit_for(ws, op)
        issue = unit.issue(ws.ready, op.addresses, op.kind)
        if self._trace is not None:
            self._trace.record(ws.ctx, unit, op, issue)
        # Apply effects in dispatch order (see module docstring).
        space = op.array.space
        if isinstance(op, ReadOp):
            values = np.zeros(ws.ctx.num_lanes, dtype=np.float64)
            assert op.result_mask is not None
            values[op.result_mask] = space.load(op.addresses)
            ws.pending_send = values
        else:
            assert isinstance(op, WriteOp)
            space.store(op.addresses, op.values)
        ws.ready = issue.next_ready

    def _range_round(self, ws: WarpState) -> tuple[int, int]:
        """Dispatch one round of the warp's in-progress range operation.

        Timing, trace records, and memory effects are those of the
        round's unfused equivalent: one full-warp transaction, then
        ``compute`` time units of local work.  Returns the
        ``(compute_ops, compute_cycles)`` charged for the round.
        """
        op = ws.range_op
        assert op is not None
        j = ws.range_round
        row = op.addresses[j]
        unit = self._unit_for(ws, op)
        issue = unit.issue(ws.ready, row, op.kind)
        if self._trace is not None:
            # Record the round as the single-step op it stands for.
            if isinstance(op, ReadRangeOp):
                rec: MemoryOp = ReadOp(array=op.array, addresses=row)
            else:
                assert isinstance(op, WriteRangeOp)
                rec = WriteOp(array=op.array, addresses=row, values=op.values[j])
            self._trace.record(ws.ctx, unit, rec, issue, post_compute=op.compute)
        space = op.array.space
        if isinstance(op, ReadRangeOp):
            assert ws.range_values is not None
            ws.range_values[j] = space.load(row)
        else:
            assert isinstance(op, WriteRangeOp)
            space.store(row, op.values[j])
        ws.ready = issue.next_ready + op.compute
        ws.range_round = j + 1
        if ws.range_round == op.rounds:
            if isinstance(op, ReadRangeOp):
                ws.pending_send = ws.range_values
            ws.range_op = None
            ws.range_values = None
        if op.compute:
            return 1, op.compute
        return 0, 0

    # -- barriers --------------------------------------------------------
    def _build_barrier_groups(
        self, warps: list[WarpState]
    ) -> dict[tuple[BarrierScope, int], _BarrierGroup]:
        groups: dict[tuple[BarrierScope, int], _BarrierGroup] = {}
        all_ids = {ws.warp_id for ws in warps}
        groups[(BarrierScope.DEVICE, 0)] = _BarrierGroup(all_ids)
        by_dmm: dict[int, set[int]] = {}
        for ws in warps:
            by_dmm.setdefault(ws.ctx.dmm_id, set()).add(ws.warp_id)
        for dmm_id, members in by_dmm.items():
            groups[(BarrierScope.DMM, dmm_id)] = _BarrierGroup(members)
        return groups

    def _group_key(self, ws: WarpState, scope: BarrierScope) -> tuple[BarrierScope, int]:
        if scope is BarrierScope.DEVICE:
            return (BarrierScope.DEVICE, 0)
        return (BarrierScope.DMM, ws.ctx.dmm_id)

    def _arrive_at_barrier(
        self,
        ws: WarpState,
        op: BarrierOp,
        groups: dict[tuple[BarrierScope, int], _BarrierGroup],
        heap: list[tuple[int, int]],
        in_heap: set[int],
        by_id: dict[int, WarpState],
    ) -> int:
        if self._trace is not None:
            self._trace.record_arrival(ws.ctx, op.scope)
        key = self._group_key(ws, op.scope)
        group = groups[key]
        seq = ws.barrier_seq.get(op.scope, 0)
        group.waiting.add(ws.warp_id)
        group.arrivals[ws.warp_id] = ws.ready
        group.seq[ws.warp_id] = seq
        return self._maybe_release(group, heap, in_heap, by_id, op.scope, key[1])

    def _retire_from_groups(
        self,
        ws: WarpState,
        groups: dict[tuple[BarrierScope, int], _BarrierGroup],
        heap: list[tuple[int, int]],
        in_heap: set[int],
        by_id: dict[int, WarpState],
    ) -> int:
        """A finished warp leaves its barrier groups; maybe releases them."""
        released = 0
        for (scope, gid), group in groups.items():
            if ws.warp_id in group.members:
                group.members.discard(ws.warp_id)
                group.waiting.discard(ws.warp_id)
                group.arrivals.pop(ws.warp_id, None)
                group.seq.pop(ws.warp_id, None)
                released += self._maybe_release(group, heap, in_heap, by_id, scope, gid)
        return released

    def _maybe_release(
        self,
        group: _BarrierGroup,
        heap: list[tuple[int, int]],
        in_heap: set[int],
        by_id: dict[int, WarpState],
        scope: BarrierScope,
        group_id: int,
    ) -> int:
        if not group.complete():
            return 0
        seqs = set(group.seq.values())
        if len(seqs) > 1:
            raise DeadlockError(
                f"warps reached different occurrences of a {scope.value} "
                f"barrier (sequence numbers {sorted(seqs)}); every warp in "
                "scope must execute the same number of barriers"
            )
        release_time = max(group.arrivals.values())
        for wid in sorted(group.waiting):
            member = by_id[wid]
            member.ready = release_time
            member.barrier_seq[scope] = member.barrier_seq.get(scope, 0) + 1
            heapq.heappush(heap, (member.ready, wid))
            in_heap.add(wid)
        group.waiting.clear()
        group.arrivals.clear()
        group.seq.clear()
        if self._trace is not None:
            self._trace.record_barrier(scope, group_id, release_time)
        return 1
