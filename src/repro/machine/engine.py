"""Single-machine engine: a flat DMM or UMM.

A :class:`MachineEngine` owns one memory space served by one pipelined
memory unit, and launches warp programs on it.  Instantiated with the
bank-conflict policy it *is* the paper's DMM; with the address-group
policy it is the UMM.  The user-facing wrappers live in
:mod:`repro.core.machines`.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError, SpaceMismatchError
from repro.machine.batch import BatchCostEngine, BatchFallback
from repro.machine.memory import ArrayHandle, MemorySpace
from repro.machine.ops import MemoryOp
from repro.machine.pipeline import PipelinedMemoryUnit
from repro.machine.policy import SlotPolicy
from repro.machine.replay import replay_launch
from repro.machine.report import RunReport
from repro.machine.scheduler import Scheduler, SchedulerResult, WarpState
from repro.machine.trace import TraceRecorder
from repro.machine.warp import WarpContext, WarpProgram
from repro.native import resolve_backend
from repro.params import MachineParams

__all__ = ["MachineEngine", "make_warp_contexts", "resolve_mode", "run_warp_program"]

_MODES = ("event", "batch", "replay")


def resolve_mode(mode: str) -> str:
    """Validate an engine evaluation mode.

    ``"event"`` is the exact discrete-event scheduler, ``"batch"`` the
    vectorized fast path with automatic fallback, ``"replay"`` the
    trace-compiled path: capture each launch shape once, re-cost it for
    any latency/policy from the stored trace
    (:mod:`repro.machine.replay`).
    """
    if mode not in _MODES:
        raise ConfigurationError(
            f"mode must be one of {_MODES}, got {mode!r}"
        )
    return mode


def run_warp_program(
    contexts: list[WarpContext],
    program: WarpProgram,
    unit_for,
    *,
    spaces: list[MemorySpace],
    units: list[PipelinedMemoryUnit],
    trace: TraceRecorder | None,
    dispatch: str,
    mode: str,
    backend: str | None = None,
) -> tuple[SchedulerResult, str]:
    """Run ``program`` under the requested evaluation mode.

    Shared entry point of the flat and hierarchical engines.  Returns the
    scheduler result plus the engine tag recorded in the report:

    * ``mode="event"`` (or tracing / non-FIFO dispatch, which the batch
      engine does not model) → event scheduler, tag ``"event"``;
    * ``mode="batch"`` → :class:`BatchCostEngine`; on
      :class:`BatchFallback` the ``spaces`` roll back their store undo
      logs, the ``units`` reset, and the launch replays on the event
      scheduler with tag ``"batch-fallback"``.

    Each attempt instantiates fresh generators from ``program``, so the
    fallback replay is exact.
    """
    if mode == "batch" and trace is None and dispatch == "fifo":
        for space in spaces:
            space.begin_undo()
        warps = [WarpState(ctx=ctx, program=program(ctx)) for ctx in contexts]
        try:
            result = BatchCostEngine(unit_for, backend=backend).run(warps)
        except BatchFallback:
            for space in spaces:
                space.rollback()
            for unit in units:
                unit.reset()
            tag = "batch-fallback"
        else:
            for space in spaces:
                space.end_undo()
            return result, "batch"
    else:
        tag = "event"
    warps = [WarpState(ctx=ctx, program=program(ctx)) for ctx in contexts]
    scheduler = Scheduler(unit_for, trace=trace, dispatch=dispatch)
    return scheduler.run(warps), tag


def make_warp_contexts(
    num_threads: int,
    width: int,
    *,
    dmm_id: int = 0,
    first_warp_id: int = 0,
    first_tid: int = 0,
    total_threads: int | None = None,
) -> list[WarpContext]:
    """Partition ``num_threads`` threads into warps of ``width``.

    Threads ``first_tid .. first_tid + num_threads`` are split into
    consecutive warps; the last warp may be partial.  This implements the
    paper's warp partition ``W(j) = { T(j·w), ..., T((j+1)·w - 1) }``.
    """
    if num_threads < 1:
        raise ConfigurationError(f"num_threads must be >= 1, got {num_threads}")
    total = total_threads if total_threads is not None else num_threads
    contexts = []
    num_warps = -(-num_threads // width)
    for j in range(num_warps):
        lo = j * width
        hi = min(lo + width, num_threads)
        local = np.arange(lo, hi, dtype=np.int64)
        contexts.append(
            WarpContext(
                warp_id=first_warp_id + j,
                dmm_id=dmm_id,
                warp_in_dmm=j,
                width=width,
                tids=first_tid + local,
                local_tids=local,
                num_threads=total,
                threads_in_dmm=num_threads,
            )
        )
    return contexts


class MachineEngine:
    """A flat memory machine: one address space, one pipelined unit.

    Parameters
    ----------
    params:
        Width and latency of the machine.
    policy:
        Slot policy — bank conflicts (DMM) or address groups (UMM).
    name:
        Display name for reports.
    pipelined:
        Pass ``False`` for the no-pipelining ablation.
    mode:
        Default evaluation mode for launches: ``"event"`` (exact
        discrete-event scheduling), ``"batch"`` (vectorized fast path
        with automatic fallback — see :mod:`repro.machine.batch`), or
        ``"replay"`` (trace-compiled re-costing — see
        :mod:`repro.machine.replay`).
    backend:
        Cost-model backend for batch/replay launches: ``"python"``,
        ``"native"`` (compiled kernels — see :mod:`repro.native`), or
        ``None`` to defer to ``$REPRO_BACKEND``.  Event-mode launches
        always run the pure-Python scheduler.
    """

    def __init__(
        self,
        params: MachineParams,
        policy: SlotPolicy,
        *,
        name: str = "machine",
        pipelined: bool = True,
        dispatch: str = "fifo",
        mode: str = "event",
        backend: str | None = None,
    ) -> None:
        self.params = params
        self.name = name
        #: Warp dispatch policy: "fifo" (default) or "round-robin".
        self.dispatch = dispatch
        #: Default evaluation mode: "event" or "batch".
        self.mode = resolve_mode(mode)
        #: Cost-model backend: "python" or "native".
        self.backend = resolve_backend(backend)
        self.space = MemorySpace("mem")
        self.unit = PipelinedMemoryUnit(
            "mem", params.width, params.latency, policy, pipelined=pipelined
        )

    # -- memory management -----------------------------------------------
    def alloc(self, size: int, name: str = "") -> ArrayHandle:
        """Allocate an array aligned to the machine width.

        Width alignment makes element ``i`` fall in bank ``i mod w`` /
        group ``i div w``, the layout all of the paper's algorithms
        assume.
        """
        return self.space.alloc_aligned(size, self.params.width, name)

    def array_from(self, values: np.ndarray | list, name: str = "") -> ArrayHandle:
        """Allocate and host-initialize an array in one step."""
        vals = np.asarray(values, dtype=np.float64).ravel()
        handle = self.alloc(vals.size, name)
        handle.set(vals)
        return handle

    # -- execution ----------------------------------------------------------
    def launch(
        self,
        program: WarpProgram,
        num_threads: int,
        *,
        trace: TraceRecorder | None = None,
        label: str = "",
        mode: str | None = None,
    ) -> RunReport:
        """Run ``program`` with ``num_threads`` threads; return the cost.

        Each warp gets its own instance of the generator.  Memory values
        persist across launches (device memory), while pipeline timing
        restarts from time unit 0.  ``mode`` overrides the engine's
        default evaluation mode for this launch.
        """
        run_mode = self.mode if mode is None else resolve_mode(mode)
        self.unit.reset()
        contexts = make_warp_contexts(num_threads, self.params.width)
        if run_mode == "replay":
            if trace is not None:
                # A user-attached recorder needs a real run to observe.
                run_mode = "event"
            else:
                result, stats, engine_tag = replay_launch(
                    program=program,
                    contexts=contexts,
                    machine="flat",
                    width=self.params.width,
                    unit_names=("mem",),
                    units=(self.unit,),
                    spaces=(self.space,),
                    unit_for=self._unit_for,
                    dispatch=self.dispatch,
                    backend=self.backend,
                )
                return RunReport(
                    cycles=result.cycles,
                    num_threads=num_threads,
                    num_warps=len(contexts),
                    unit_stats=stats if stats is not None else {"mem": self.unit.stats},
                    compute_ops=result.compute_ops,
                    compute_cycles=result.compute_cycles,
                    barrier_releases=result.barrier_releases,
                    label=label or self.name,
                    engine=engine_tag,
                )
        result, engine_tag = run_warp_program(
            contexts,
            program,
            self._unit_for,
            spaces=[self.space],
            units=[self.unit],
            trace=trace,
            dispatch=self.dispatch,
            mode=run_mode,
            backend=self.backend,
        )
        return RunReport(
            cycles=result.cycles,
            num_threads=num_threads,
            num_warps=len(contexts),
            unit_stats={"mem": self.unit.stats},
            compute_ops=result.compute_ops,
            compute_cycles=result.compute_cycles,
            barrier_releases=result.barrier_releases,
            label=label or self.name,
            engine=engine_tag,
        )

    # -- internals -----------------------------------------------------------
    def _unit_for(self, ws: WarpState, op: MemoryOp) -> PipelinedMemoryUnit:
        if op.array.space is not self.space:
            raise SpaceMismatchError(
                f"array {op.array.describe()} does not live in machine "
                f"{self.name!r}'s memory"
            )
        return self.unit

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"MachineEngine({self.name!r}, w={self.params.width}, "
            f"l={self.params.latency}, policy={self.unit.policy.name})"
        )
