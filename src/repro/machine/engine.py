"""Single-machine engine: a flat DMM or UMM.

A :class:`MachineEngine` owns one memory space served by one pipelined
memory unit, and launches warp programs on it.  Instantiated with the
bank-conflict policy it *is* the paper's DMM; with the address-group
policy it is the UMM.  The user-facing wrappers live in
:mod:`repro.core.machines`.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError, SpaceMismatchError
from repro.machine.memory import ArrayHandle, MemorySpace
from repro.machine.ops import MemoryOp
from repro.machine.pipeline import PipelinedMemoryUnit
from repro.machine.policy import SlotPolicy
from repro.machine.report import RunReport
from repro.machine.scheduler import Scheduler, WarpState
from repro.machine.trace import TraceRecorder
from repro.machine.warp import WarpContext, WarpProgram
from repro.params import MachineParams

__all__ = ["MachineEngine", "make_warp_contexts"]


def make_warp_contexts(
    num_threads: int,
    width: int,
    *,
    dmm_id: int = 0,
    first_warp_id: int = 0,
    first_tid: int = 0,
    total_threads: int | None = None,
) -> list[WarpContext]:
    """Partition ``num_threads`` threads into warps of ``width``.

    Threads ``first_tid .. first_tid + num_threads`` are split into
    consecutive warps; the last warp may be partial.  This implements the
    paper's warp partition ``W(j) = { T(j·w), ..., T((j+1)·w - 1) }``.
    """
    if num_threads < 1:
        raise ConfigurationError(f"num_threads must be >= 1, got {num_threads}")
    total = total_threads if total_threads is not None else num_threads
    contexts = []
    num_warps = -(-num_threads // width)
    for j in range(num_warps):
        lo = j * width
        hi = min(lo + width, num_threads)
        local = np.arange(lo, hi, dtype=np.int64)
        contexts.append(
            WarpContext(
                warp_id=first_warp_id + j,
                dmm_id=dmm_id,
                warp_in_dmm=j,
                width=width,
                tids=first_tid + local,
                local_tids=local,
                num_threads=total,
                threads_in_dmm=num_threads,
            )
        )
    return contexts


class MachineEngine:
    """A flat memory machine: one address space, one pipelined unit.

    Parameters
    ----------
    params:
        Width and latency of the machine.
    policy:
        Slot policy — bank conflicts (DMM) or address groups (UMM).
    name:
        Display name for reports.
    pipelined:
        Pass ``False`` for the no-pipelining ablation.
    """

    def __init__(
        self,
        params: MachineParams,
        policy: SlotPolicy,
        *,
        name: str = "machine",
        pipelined: bool = True,
        dispatch: str = "fifo",
    ) -> None:
        self.params = params
        self.name = name
        #: Warp dispatch policy: "fifo" (default) or "round-robin".
        self.dispatch = dispatch
        self.space = MemorySpace("mem")
        self.unit = PipelinedMemoryUnit(
            "mem", params.width, params.latency, policy, pipelined=pipelined
        )

    # -- memory management -----------------------------------------------
    def alloc(self, size: int, name: str = "") -> ArrayHandle:
        """Allocate an array aligned to the machine width.

        Width alignment makes element ``i`` fall in bank ``i mod w`` /
        group ``i div w``, the layout all of the paper's algorithms
        assume.
        """
        return self.space.alloc_aligned(size, self.params.width, name)

    def array_from(self, values: np.ndarray | list, name: str = "") -> ArrayHandle:
        """Allocate and host-initialize an array in one step."""
        vals = np.asarray(values, dtype=np.float64).ravel()
        handle = self.alloc(vals.size, name)
        handle.set(vals)
        return handle

    # -- execution ----------------------------------------------------------
    def launch(
        self,
        program: WarpProgram,
        num_threads: int,
        *,
        trace: TraceRecorder | None = None,
        label: str = "",
    ) -> RunReport:
        """Run ``program`` with ``num_threads`` threads; return the cost.

        Each warp gets its own instance of the generator.  Memory values
        persist across launches (device memory), while pipeline timing
        restarts from time unit 0.
        """
        self.unit.reset()
        contexts = make_warp_contexts(num_threads, self.params.width)
        warps = [WarpState(ctx=ctx, program=program(ctx)) for ctx in contexts]
        scheduler = Scheduler(self._unit_for, trace=trace, dispatch=self.dispatch)
        result = scheduler.run(warps)
        return RunReport(
            cycles=result.cycles,
            num_threads=num_threads,
            num_warps=len(warps),
            unit_stats={"mem": self.unit.stats},
            compute_ops=result.compute_ops,
            compute_cycles=result.compute_cycles,
            barrier_releases=result.barrier_releases,
            label=label or self.name,
        )

    # -- internals -----------------------------------------------------------
    def _unit_for(self, ws: WarpState, op: MemoryOp) -> PipelinedMemoryUnit:
        if op.array.space is not self.space:
            raise SpaceMismatchError(
                f"array {op.array.describe()} does not live in machine "
                f"{self.name!r}'s memory"
            )
        return self.unit

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"MachineEngine({self.name!r}, w={self.params.width}, "
            f"l={self.params.latency}, policy={self.unit.policy.name})"
        )
