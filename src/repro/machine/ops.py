"""Warp-level operations.

A *warp program* is a Python generator that yields one operation per SIMD
step.  Because the models execute the ``w`` threads of a warp in lockstep,
the natural unit of simulation is the warp: an operation carries a numpy
vector with one entry per active lane.

Four operations exist:

* :class:`ReadOp` — every active lane reads one memory cell; the engine
  resumes the generator with the vector of values read.
* :class:`WriteOp` — every active lane writes one memory cell
  (arbitrary-CRCW: on address collisions, the lowest active lane wins).
* :class:`ComputeOp` — local RAM computation taking a given number of time
  units (no memory port usage).
* :class:`BarrierOp` — bulk synchronization at DMM or device scope.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.machine.memory import ArrayHandle

__all__ = [
    "AccessKind",
    "BarrierOp",
    "BarrierScope",
    "ComputeOp",
    "MemoryOp",
    "Op",
    "ReadOp",
    "WriteOp",
]


class AccessKind(enum.Enum):
    """Direction of a memory transaction."""

    READ = "read"
    WRITE = "write"


class BarrierScope(enum.Enum):
    """Synchronization scope of a :class:`BarrierOp`.

    ``DMM`` synchronizes the warps of one DMM (CUDA ``__syncthreads`` on a
    thread block / SM); ``DEVICE`` synchronizes every warp of the machine
    (kernel-boundary synchronization).  On a flat DMM or UMM machine both
    scopes are equivalent.
    """

    DMM = "dmm"
    DEVICE = "device"


@dataclass(frozen=True)
class Op:
    """Base class for warp operations (marker type)."""


@dataclass(frozen=True)
class MemoryOp(Op):
    """Common fields of read and write operations.

    Attributes
    ----------
    array:
        Target array; determines the memory space (shared vs global).
    addresses:
        Absolute addresses in the array's space, one per participating
        lane.  May be empty (fully-masked op), in which case the operation
        costs nothing and is not dispatched — the paper's rule that a warp
        with no pending request is skipped.
    """

    array: "ArrayHandle"
    addresses: np.ndarray

    @property
    def kind(self) -> AccessKind:
        raise NotImplementedError

    @property
    def num_requests(self) -> int:
        """Number of lanes participating in this transaction."""
        return int(self.addresses.size)


@dataclass(frozen=True)
class ReadOp(MemoryOp):
    """Read one cell per active lane; resumes the program with the values.

    ``result_mask`` maps the participating lanes back into the warp's
    active-lane vector so that masked reads return full-width value
    vectors (masked positions get 0).
    """

    result_mask: np.ndarray | None = None

    @property
    def kind(self) -> AccessKind:
        return AccessKind.READ


@dataclass(frozen=True)
class WriteOp(MemoryOp):
    """Write one cell per active lane.

    On address collisions the lowest participating lane wins, a
    deterministic stand-in for the paper's arbitrary-CRCW rule.
    """

    values: np.ndarray = field(default_factory=lambda: np.empty(0))

    @property
    def kind(self) -> AccessKind:
        return AccessKind.WRITE


@dataclass(frozen=True)
class ComputeOp(Op):
    """Local computation by every thread of the warp.

    Each thread of the model is a RAM executing one fundamental operation
    per time unit, so ``cycles`` is the number of sequential RAM
    operations performed by each lane at this step.
    """

    cycles: int = 1

    def __post_init__(self) -> None:
        if self.cycles < 0:
            raise ValueError(f"cycles must be >= 0, got {self.cycles}")


@dataclass(frozen=True)
class BarrierOp(Op):
    """Bulk synchronization of all warps in ``scope``.

    Barriers cost no time units themselves (the paper charges nothing for
    synchronization); they only align warp ready times.
    """

    scope: BarrierScope = BarrierScope.DEVICE
