"""Warp-level operations.

A *warp program* is a Python generator that yields one operation per SIMD
step.  Because the models execute the ``w`` threads of a warp in lockstep,
the natural unit of simulation is the warp: an operation carries a numpy
vector with one entry per active lane.

Four single-step operations exist:

* :class:`ReadOp` — every active lane reads one memory cell; the engine
  resumes the generator with the vector of values read.
* :class:`WriteOp` — every active lane writes one memory cell
  (arbitrary-CRCW: on address collisions, the lowest active lane wins).
* :class:`ComputeOp` — local RAM computation taking a given number of time
  units (no memory port usage).
* :class:`BarrierOp` — bulk synchronization at DMM or device scope.

Two *fused* operations cover the canonical multi-round sweep in one
yield — :class:`ReadRangeOp` and :class:`WriteRangeOp` carry a
``(rounds, lanes)`` address matrix whose row ``j`` is round ``j``'s
full-warp transaction, each round issuing when the previous one
completes.  They are costed identically to the equivalent per-round loop
(the event scheduler literally expands them round by round) but let the
batch engine replay a whole sweep without resuming the generator per
round.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.machine.memory import ArrayHandle

__all__ = [
    "AccessKind",
    "BarrierOp",
    "BarrierScope",
    "ComputeOp",
    "MemoryOp",
    "Op",
    "RangeOp",
    "ReadOp",
    "ReadRangeOp",
    "WriteOp",
    "WriteRangeOp",
]


class AccessKind(enum.Enum):
    """Direction of a memory transaction."""

    READ = "read"
    WRITE = "write"


class BarrierScope(enum.Enum):
    """Synchronization scope of a :class:`BarrierOp`.

    ``DMM`` synchronizes the warps of one DMM (CUDA ``__syncthreads`` on a
    thread block / SM); ``DEVICE`` synchronizes every warp of the machine
    (kernel-boundary synchronization).  On a flat DMM or UMM machine both
    scopes are equivalent.
    """

    DMM = "dmm"
    DEVICE = "device"


@dataclass(frozen=True)
class Op:
    """Base class for warp operations (marker type)."""


@dataclass(frozen=True)
class MemoryOp(Op):
    """Common fields of read and write operations.

    Attributes
    ----------
    array:
        Target array; determines the memory space (shared vs global).
    addresses:
        Absolute addresses in the array's space, one per participating
        lane.  May be empty (fully-masked op), in which case the operation
        costs nothing and is not dispatched — the paper's rule that a warp
        with no pending request is skipped.
    """

    array: "ArrayHandle"
    addresses: np.ndarray

    @property
    def kind(self) -> AccessKind:
        raise NotImplementedError

    @property
    def num_requests(self) -> int:
        """Number of lanes participating in this transaction."""
        return int(self.addresses.size)


@dataclass(frozen=True)
class ReadOp(MemoryOp):
    """Read one cell per active lane; resumes the program with the values.

    ``result_mask`` maps the participating lanes back into the warp's
    active-lane vector so that masked reads return full-width value
    vectors (masked positions get 0).
    """

    result_mask: np.ndarray | None = None

    @property
    def kind(self) -> AccessKind:
        return AccessKind.READ


@dataclass(frozen=True)
class WriteOp(MemoryOp):
    """Write one cell per active lane.

    On address collisions the lowest participating lane wins, a
    deterministic stand-in for the paper's arbitrary-CRCW rule.
    """

    values: np.ndarray = field(default_factory=lambda: np.empty(0))

    @property
    def kind(self) -> AccessKind:
        return AccessKind.WRITE


@dataclass(frozen=True)
class RangeOp(Op):
    """Common fields of fused multi-round memory operations.

    Attributes
    ----------
    array:
        Target array; determines the memory space (shared vs global).
    addresses:
        ``(rounds, lanes)`` matrix of absolute addresses.  Row ``j`` is
        the full-warp transaction of round ``j``; every lane participates
        in every round.  Round ``j + 1`` issues once round ``j``'s data
        has arrived (plus ``compute`` time units), exactly like the
        per-round loop the range replaces.
    compute:
        Local RAM time units charged to the warp after *each* round —
        the fused form of a ``ComputeOp`` inside the sweep's loop body.
    """

    array: "ArrayHandle"
    addresses: np.ndarray
    compute: int = 0

    def __post_init__(self) -> None:
        if self.addresses.ndim != 2:
            raise ValueError(
                f"range addresses must be a (rounds, lanes) matrix, got "
                f"shape {self.addresses.shape}"
            )
        if self.addresses.shape[0] < 1 or self.addresses.shape[1] < 1:
            raise ValueError(
                f"range must cover at least one round and one lane, got "
                f"shape {self.addresses.shape}"
            )
        if self.compute < 0:
            raise ValueError(f"compute must be >= 0, got {self.compute}")

    @property
    def kind(self) -> AccessKind:
        raise NotImplementedError

    @property
    def rounds(self) -> int:
        """Number of sequential warp transactions the range performs."""
        return int(self.addresses.shape[0])

    @property
    def lanes(self) -> int:
        """Lanes participating in every round."""
        return int(self.addresses.shape[1])


@dataclass(frozen=True)
class ReadRangeOp(RangeOp):
    """Fused multi-round read; resumes the program with the value matrix.

    The engine sends back a ``(rounds, lanes)`` float matrix whose row
    ``j`` holds round ``j``'s values — the same vectors the equivalent
    per-round reads would have delivered, in round order.
    """

    @property
    def kind(self) -> AccessKind:
        return AccessKind.READ


@dataclass(frozen=True)
class WriteRangeOp(RangeOp):
    """Fused multi-round write: round ``j`` stores ``values[j]``.

    Collisions within one round resolve by the arbitrary-CRCW rule
    (lowest lane wins); later rounds overwrite earlier ones.
    """

    values: np.ndarray = field(default_factory=lambda: np.empty((0, 0)))

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.values.shape != self.addresses.shape:
            raise ValueError(
                f"range values must match the (rounds, lanes) address "
                f"shape {self.addresses.shape}, got {self.values.shape}"
            )

    @property
    def kind(self) -> AccessKind:
        return AccessKind.WRITE


@dataclass(frozen=True)
class ComputeOp(Op):
    """Local computation by every thread of the warp.

    Each thread of the model is a RAM executing one fundamental operation
    per time unit, so ``cycles`` is the number of sequential RAM
    operations performed by each lane at this step.
    """

    cycles: int = 1

    def __post_init__(self) -> None:
        if self.cycles < 0:
            raise ValueError(f"cycles must be >= 0, got {self.cycles}")


@dataclass(frozen=True)
class BarrierOp(Op):
    """Bulk synchronization of all warps in ``scope``.

    Barriers cost no time units themselves (the paper charges nothing for
    synchronization); they only align warp ready times.
    """

    scope: BarrierScope = BarrierScope.DEVICE
