"""Per-thread kernel authoring (the CUDA-style view).

The native warp-program API is vector-per-warp: one ``yield`` describes
all lanes at once.  That is how the engine executes, but kernel authors
often *think* per-thread.  :func:`thread_program` adapts a per-thread
generator —

.. code-block:: python

    def kernel(t: ThreadContext):
        v = yield t.read(a, t.tid)          # this thread's element
        yield t.compute(1)
        yield t.write(b, t.tid, 2 * v)

— into a warp program by running one generator per lane in lockstep and
merging each step's per-lane operations into a single warp transaction.

Lockstep is *checked*, not assumed: if the live lanes of a warp yield
different operation kinds (or target different arrays) at the same
step, the adapter raises :class:`~repro.errors.LockstepError` — the
model has no divergent execution, and this surface makes the constraint
explicit instead of silently mis-costing.  Lanes may *finish* early
(their generator returns); a finished lane simply stops participating,
which is how tail threads bow out.

Divergence by data (e.g. "only threads with tid < n participate") is
expressed per-thread with :meth:`ThreadContext.idle` — the per-thread
analogue of the vector API's masks.

The adapter costs one Python generator per thread, so it suits
moderate thread counts (examples, teaching, tests); the library's own
kernels use the vector API directly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Generator

import numpy as np

from repro.errors import LockstepError
from repro.machine.memory import ArrayHandle
from repro.machine.ops import BarrierOp, BarrierScope, ComputeOp, Op
from repro.machine.warp import WarpContext

__all__ = [
    "ThreadContext",
    "ThreadRead",
    "ThreadWrite",
    "ThreadIdle",
    "thread_program",
]


@dataclass(frozen=True)
class ThreadRead:
    """One thread's read request: ``array[index]``."""

    array: ArrayHandle
    index: int


@dataclass(frozen=True)
class ThreadWrite:
    """One thread's write request: ``array[index] = value``."""

    array: ArrayHandle
    index: int
    value: float


@dataclass(frozen=True)
class ThreadIdle:
    """This thread skips the current step (data-dependent divergence)."""


@dataclass(frozen=True)
class ThreadContext:
    """What one thread knows about itself."""

    tid: int
    local_tid: int
    lane: int
    warp_id: int
    dmm_id: int
    num_threads: int
    threads_in_dmm: int
    width: int

    # -- per-thread operation constructors --------------------------------
    def read(self, array: ArrayHandle, index: int) -> ThreadRead:
        """Read one cell; the yield returns its value (a float)."""
        return ThreadRead(array=array, index=int(index))

    def write(self, array: ArrayHandle, index: int, value: float) -> ThreadWrite:
        """Write one cell."""
        return ThreadWrite(array=array, index=int(index), value=float(value))

    def compute(self, cycles: int = 1) -> ComputeOp:
        """Local computation (every live lane must yield it together)."""
        return ComputeOp(cycles=cycles)

    def barrier(self, scope: BarrierScope = BarrierScope.DEVICE) -> BarrierOp:
        """Synchronize (every live lane must yield it together)."""
        return BarrierOp(scope=scope)

    def sync_dmm(self) -> BarrierOp:
        """DMM-scope barrier shorthand."""
        return BarrierOp(scope=BarrierScope.DMM)

    def idle(self) -> ThreadIdle:
        """Sit this step out (other lanes may access memory)."""
        return ThreadIdle()


ThreadKernel = Callable[[ThreadContext], Generator[object, float, None]]


def thread_program(kernel: ThreadKernel):
    """Adapt a per-thread generator kernel into a warp program.

    Pass the result to ``engine.launch``.  Each lane gets its own
    generator; steps execute in lockstep with divergence checking (see
    module docstring).
    """

    def program(warp: WarpContext):
        lanes = []
        for lane in range(warp.num_lanes):
            ctx = ThreadContext(
                tid=int(warp.tids[lane]),
                local_tid=int(warp.local_tids[lane]),
                lane=lane,
                warp_id=warp.warp_id,
                dmm_id=warp.dmm_id,
                num_threads=warp.num_threads,
                threads_in_dmm=warp.threads_in_dmm,
                width=warp.width,
            )
            lanes.append(kernel(ctx))

        live = [True] * warp.num_lanes
        pending: list[float | None] = [None] * warp.num_lanes

        while any(live):
            # Advance every live lane one step.
            requests: list[object | None] = [None] * warp.num_lanes
            for lane, gen in enumerate(lanes):
                if not live[lane]:
                    continue
                try:
                    if pending[lane] is None:
                        requests[lane] = next(gen)
                    else:
                        requests[lane] = gen.send(pending[lane])
                        pending[lane] = None
                except StopIteration:
                    live[lane] = False
                    requests[lane] = None

            active = [
                (lane, req)
                for lane, req in enumerate(requests)
                if live[lane] and not isinstance(req, ThreadIdle)
            ]
            if not active:
                continue

            kinds = {type(req) for _, req in active}
            if len(kinds) > 1:
                raise LockstepError(
                    f"warp {warp.warp_id} diverged: lanes yielded "
                    f"{sorted(k.__name__ for k in kinds)} at the same step; "
                    "use idle() / restructure so live lanes agree"
                )
            kind = kinds.pop()

            if kind is ThreadRead:
                arrays = {id(req.array) for _, req in active}
                if len(arrays) > 1:
                    raise LockstepError(
                        f"warp {warp.warp_id} read from different arrays "
                        "in one step; the warp issues one transaction"
                    )
                array = active[0][1].array
                idx = np.zeros(warp.num_lanes, dtype=np.int64)
                mask = np.zeros(warp.num_lanes, dtype=bool)
                for lane, req in active:
                    idx[lane] = req.index
                    mask[lane] = True
                values = yield warp.read(array, idx, mask=mask)
                for lane, _req in active:
                    pending[lane] = float(values[lane])
            elif kind is ThreadWrite:
                arrays = {id(req.array) for _, req in active}
                if len(arrays) > 1:
                    raise LockstepError(
                        f"warp {warp.warp_id} wrote to different arrays "
                        "in one step; the warp issues one transaction"
                    )
                array = active[0][1].array
                idx = np.zeros(warp.num_lanes, dtype=np.int64)
                vals = np.zeros(warp.num_lanes, dtype=np.float64)
                mask = np.zeros(warp.num_lanes, dtype=bool)
                for lane, req in active:
                    idx[lane] = req.index
                    vals[lane] = req.value
                    mask[lane] = True
                yield warp.write(array, idx, vals, mask=mask)
            elif kind is ComputeOp:
                cycles = {req.cycles for _, req in active}
                if len(cycles) > 1:
                    raise LockstepError(
                        f"warp {warp.warp_id} lanes requested different "
                        f"compute durations {sorted(cycles)} in one step"
                    )
                yield ComputeOp(cycles=cycles.pop())
            elif kind is BarrierOp:
                scopes = {req.scope for _, req in active}
                if len(scopes) > 1:
                    raise LockstepError(
                        f"warp {warp.warp_id} lanes requested different "
                        "barrier scopes in one step"
                    )
                if len(active) != sum(live):
                    raise LockstepError(
                        f"warp {warp.warp_id}: a barrier must be reached by "
                        "every live lane of the warp together"
                    )
                yield BarrierOp(scope=scopes.pop())
            else:  # pragma: no cover - defensive
                raise LockstepError(
                    f"warp {warp.warp_id} yielded unsupported per-thread "
                    f"operation {kind.__name__}"
                )

    return program
