"""Simulation substrate for the memory machine models.

This package implements the timing semantics of Nakano's Discrete Memory
Machine (DMM), Unified Memory Machine (UMM) and Hierarchical Memory
Machine (HMM) as a discrete-event, warp-granularity simulator:

* :mod:`repro.machine.memory` — numpy-backed address spaces and arrays,
* :mod:`repro.machine.banks` — bank / address-group arithmetic,
* :mod:`repro.machine.policy` — pipeline-slot counting (bank conflicts,
  address groups),
* :mod:`repro.machine.pipeline` — the pipelined memory port,
* :mod:`repro.machine.warp` — warp contexts and the warp-program protocol,
* :mod:`repro.machine.scheduler` — the event-driven warp scheduler,
* :mod:`repro.machine.batch` — the vectorized batch-evaluation fast path,
* :mod:`repro.machine.engine` — single-machine (DMM/UMM) engines,
* :mod:`repro.machine.hmm` — the hierarchical engine (d DMMs + one UMM),
* :mod:`repro.machine.trace` — transaction traces, statistics, timelines,
* :mod:`repro.machine.report` — run reports.

User code normally goes through the high-level front-ends in
:mod:`repro.core.machines` instead of using this package directly.
"""

from repro.machine.banks import (
    bank_of,
    conflict_degree,
    conflict_degrees,
    group_count,
    group_counts,
    group_of,
)
from repro.machine.batch import BatchCostEngine, BatchFallback
from repro.machine.engine import MachineEngine
from repro.machine.hmm import HMMEngine
from repro.machine.memory import ArrayHandle, MemorySpace
from repro.machine.ops import BarrierOp, BarrierScope, ComputeOp, ReadOp, WriteOp
from repro.machine.pipeline import PipelinedMemoryUnit
from repro.machine.policy import DMMBankPolicy, IdealPolicy, SlotPolicy, UMMGroupPolicy
from repro.machine.report import RunReport
from repro.machine.threadprog import ThreadContext, thread_program
from repro.machine.trace import TraceRecorder
from repro.machine.warp import WarpContext

__all__ = [
    "ArrayHandle",
    "BarrierOp",
    "BarrierScope",
    "BatchCostEngine",
    "BatchFallback",
    "ComputeOp",
    "DMMBankPolicy",
    "HMMEngine",
    "IdealPolicy",
    "MachineEngine",
    "MemorySpace",
    "PipelinedMemoryUnit",
    "ReadOp",
    "RunReport",
    "ThreadContext",
    "thread_program",
    "SlotPolicy",
    "TraceRecorder",
    "UMMGroupPolicy",
    "WarpContext",
    "WriteOp",
    "bank_of",
    "conflict_degree",
    "conflict_degrees",
    "group_count",
    "group_counts",
    "group_of",
]
