"""The hierarchical engine: ``d`` DMMs plus one UMM (paper Section III).

An :class:`HMMEngine` owns

* one **global** memory space served by a pipelined unit with the
  address-group (coalescing) policy and latency ``l`` — the UMM, and
* ``d`` **shared** memory spaces, each served by its own pipelined unit
  with the bank-conflict policy and latency 1 — the DMMs.

Threads are partitioned into contiguous per-DMM blocks (``DMM(i)`` runs
threads ``T(0) .. T(p_i - 1)`` locally); every warp can access the global
memory, whose single pipeline serializes transactions from all DMMs,
while each DMM's shared memory serves only its own warps.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.errors import ConfigurationError, SpaceMismatchError
from repro.machine.engine import make_warp_contexts, resolve_mode, run_warp_program
from repro.machine.memory import ArrayHandle, MemorySpace
from repro.machine.ops import MemoryOp
from repro.machine.pipeline import PipelinedMemoryUnit
from repro.machine.policy import DMMBankPolicy, SlotPolicy, UMMGroupPolicy
from repro.machine.replay import replay_launch
from repro.machine.report import RunReport
from repro.machine.scheduler import WarpState
from repro.machine.trace import TraceRecorder
from repro.machine.warp import WarpContext, WarpProgram
from repro.native import resolve_backend
from repro.params import HMMParams

__all__ = ["HMMEngine", "split_threads"]


def split_threads(num_threads: int, num_dmms: int) -> list[int]:
    """Even contiguous partition of ``p`` threads over ``d`` DMMs.

    The first ``p mod d`` DMMs receive one extra thread.  DMMs whose
    share is zero run no warps (small launches may use fewer DMMs).
    """
    if num_threads < 1:
        raise ConfigurationError(f"num_threads must be >= 1, got {num_threads}")
    base, extra = divmod(num_threads, num_dmms)
    return [base + (1 if i < extra else 0) for i in range(num_dmms)]


class HMMEngine:
    """The Hierarchical Memory Machine simulator.

    Parameters
    ----------
    params:
        Shape of the machine (``d``, ``w``, latencies).
    pipelined:
        Pass ``False`` for the no-pipelining ablation (all units).
    global_policy / shared_policy:
        Injectable slot policies, used by policy-ablation benchmarks;
        default to the paper's UMM / DMM rules.
    mode:
        Default evaluation mode for launches: ``"event"`` (exact
        discrete-event scheduling), ``"batch"`` (vectorized fast path
        with automatic fallback — see :mod:`repro.machine.batch`), or
        ``"replay"`` (trace-compiled re-costing — see
        :mod:`repro.machine.replay`).
    backend:
        Cost-model backend for batch/replay launches: ``"python"``,
        ``"native"`` (compiled kernels — see :mod:`repro.native`), or
        ``None`` to defer to ``$REPRO_BACKEND``.
    """

    def __init__(
        self,
        params: HMMParams,
        *,
        pipelined: bool = True,
        global_policy: SlotPolicy | None = None,
        shared_policy: SlotPolicy | None = None,
        dispatch: str = "fifo",
        mode: str = "event",
        backend: str | None = None,
    ) -> None:
        self.params = params
        #: Warp dispatch policy: "fifo" (default) or "round-robin".
        self.dispatch = dispatch
        #: Default evaluation mode: "event" or "batch".
        self.mode = resolve_mode(mode)
        #: Cost-model backend: "python" or "native".
        self.backend = resolve_backend(backend)
        self.global_space = MemorySpace("global", space_id="global")
        self.global_unit = PipelinedMemoryUnit(
            "global",
            params.width,
            params.global_latency,
            global_policy if global_policy is not None else UMMGroupPolicy(),
            pipelined=pipelined,
        )
        self.shared_spaces: list[MemorySpace] = []
        self.shared_units: list[PipelinedMemoryUnit] = []
        shared_pol = shared_policy if shared_policy is not None else DMMBankPolicy()
        for i in range(params.num_dmms):
            self.shared_spaces.append(
                MemorySpace(f"shared[{i}]", capacity=1 << 22, space_id=("shared", i))
            )
            self.shared_units.append(
                PipelinedMemoryUnit(
                    f"shared[{i}]",
                    params.width,
                    params.shared_latency,
                    shared_pol,
                    pipelined=pipelined,
                )
            )
        self._space_to_unit: dict[int, PipelinedMemoryUnit] = {
            id(self.global_space): self.global_unit,
            **{id(s): u for s, u in zip(self.shared_spaces, self.shared_units)},
        }
        self._shared_index: dict[int, int] = {
            id(s): i for i, s in enumerate(self.shared_spaces)
        }

    # -- memory management ---------------------------------------------------
    def alloc_global(self, size: int, name: str = "") -> ArrayHandle:
        """Allocate a width-aligned array in the global memory."""
        return self.global_space.alloc_aligned(size, self.params.width, name)

    def alloc_shared(self, dmm_id: int, size: int, name: str = "") -> ArrayHandle:
        """Allocate a width-aligned array in ``DMM(dmm_id)``'s shared memory."""
        return self.shared_spaces[dmm_id].alloc_aligned(size, self.params.width, name)

    def alloc_shared_all(self, size: int, name: str = "") -> list[ArrayHandle]:
        """Allocate one same-shape shared array per DMM.

        The handles occupy the same offsets in every shared space, so a
        kernel can index ``arrays[warp.dmm_id]`` uniformly — the model's
        analogue of a CUDA ``__shared__`` declaration.
        """
        return [
            self.alloc_shared(i, size, f"{name}[{i}]" if name else "")
            for i in range(self.params.num_dmms)
        ]

    def global_from(self, values: np.ndarray | list, name: str = "") -> ArrayHandle:
        """Allocate and host-initialize a global array in one step."""
        vals = np.asarray(values, dtype=np.float64).ravel()
        handle = self.alloc_global(vals.size, name)
        handle.set(vals)
        return handle

    # -- execution ---------------------------------------------------------------
    def launch(
        self,
        program: WarpProgram,
        num_threads: int,
        *,
        threads_per_dmm: Sequence[int] | None = None,
        trace: TraceRecorder | None = None,
        label: str = "",
        mode: str | None = None,
    ) -> RunReport:
        """Run ``program`` with ``num_threads`` threads across the DMMs.

        Threads are partitioned into contiguous blocks, one per DMM
        (evenly by default, or per ``threads_per_dmm``); every block is
        split into warps of ``w``.  Memory values persist across
        launches; pipeline timing restarts at 0.  ``mode`` overrides the
        engine's default evaluation mode for this launch.
        """
        run_mode = self.mode if mode is None else resolve_mode(mode)
        if threads_per_dmm is None:
            shares = split_threads(num_threads, self.params.num_dmms)
        else:
            shares = list(threads_per_dmm)
            if len(shares) != self.params.num_dmms:
                raise ConfigurationError(
                    f"threads_per_dmm must list {self.params.num_dmms} "
                    f"entries, got {len(shares)}"
                )
            if sum(shares) != num_threads:
                raise ConfigurationError(
                    f"threads_per_dmm sums to {sum(shares)}, expected "
                    f"{num_threads}"
                )
        cap = self.params.max_threads_per_dmm
        if cap is not None and max(shares) > cap:
            raise ConfigurationError(
                f"a DMM was assigned {max(shares)} threads, above the "
                f"configured cap of {cap}"
            )

        self.global_unit.reset()
        for unit in self.shared_units:
            unit.reset()

        contexts: list[WarpContext] = []
        first_tid = 0
        for dmm_id, share in enumerate(shares):
            if share == 0:
                continue
            contexts.extend(
                make_warp_contexts(
                    share,
                    self.params.width,
                    dmm_id=dmm_id,
                    first_warp_id=len(contexts),
                    first_tid=first_tid,
                    total_threads=num_threads,
                )
            )
            first_tid += share

        units = [self.global_unit, *self.shared_units]
        spaces = [self.global_space, *self.shared_spaces]
        if run_mode == "replay" and trace is None:
            result, replay_stats, engine_tag = replay_launch(
                program=program,
                contexts=contexts,
                machine="hmm",
                width=self.params.width,
                unit_names=[u.name for u in units],
                units=units,
                spaces=spaces,
                unit_for=self._unit_for,
                dispatch=self.dispatch,
                backend=self.backend,
            )
            if replay_stats is not None:
                stats = {"global": replay_stats["global"]}
                for unit in self.shared_units:
                    if replay_stats[unit.name].transactions:
                        stats[unit.name] = replay_stats[unit.name]
            else:
                stats = {"global": self.global_unit.stats}
                for unit in self.shared_units:
                    if unit.stats.transactions:
                        stats[unit.name] = unit.stats
            return RunReport(
                cycles=result.cycles,
                num_threads=num_threads,
                num_warps=len(contexts),
                unit_stats=stats,
                compute_ops=result.compute_ops,
                compute_cycles=result.compute_cycles,
                barrier_releases=result.barrier_releases,
                label=label or "hmm",
                engine=engine_tag,
            )
        if run_mode == "replay":
            # A user-attached recorder needs a real run to observe.
            run_mode = "event"
        result, engine_tag = run_warp_program(
            contexts,
            program,
            self._unit_for,
            spaces=spaces,
            units=units,
            trace=trace,
            dispatch=self.dispatch,
            mode=run_mode,
            backend=self.backend,
        )
        stats = {"global": self.global_unit.stats}
        for unit in self.shared_units:
            if unit.stats.transactions:
                stats[unit.name] = unit.stats
        return RunReport(
            cycles=result.cycles,
            num_threads=num_threads,
            num_warps=len(contexts),
            unit_stats=stats,
            compute_ops=result.compute_ops,
            compute_cycles=result.compute_cycles,
            barrier_releases=result.barrier_releases,
            label=label or "hmm",
            engine=engine_tag,
        )

    # -- internals ------------------------------------------------------------------
    def _unit_for(self, ws: WarpState, op: MemoryOp) -> PipelinedMemoryUnit:
        space = op.array.space
        unit = self._space_to_unit.get(id(space))
        if unit is None:
            raise SpaceMismatchError(
                f"array {op.array.describe()} does not live in this HMM"
            )
        shared_idx = self._shared_index.get(id(space))
        if shared_idx is not None and shared_idx != ws.ctx.dmm_id:
            raise SpaceMismatchError(
                f"warp {ws.ctx.warp_id} on DMM {ws.ctx.dmm_id} cannot access "
                f"shared memory of DMM {shared_idx} "
                f"(array {op.array.describe()})"
            )
        return unit

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        p = self.params
        return (
            f"HMMEngine(d={p.num_dmms}, w={p.width}, l={p.global_latency}, "
            f"shared_l={p.shared_latency})"
        )
