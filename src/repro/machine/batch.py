"""Vectorized batch evaluation of warp programs (the fast path).

The event scheduler (:mod:`repro.machine.scheduler`) steps one warp
transaction at a time through a priority queue — exact, but every
operation pays Python-level heap, dispatch, and per-transaction numpy
costs.  For the bulk-synchronous kernels this library is built from,
that generality is wasted: between barriers every warp issues the same
round structure, so whole *waves* of transactions can be costed at once.

:class:`BatchCostEngine` exploits that.  It advances all runnable warp
programs in lockstep waves (one operation per warp per wave), parks each
memory operation in a per-unit queue, and dispatches, per unit, the
longest sorted prefix that provably matches event order — conservative
lookahead, as in parallel discrete-event simulation.  A queued operation
is safe to dispatch when no operation with a smaller ``(ready, warp_id)``
key can still arrive at its unit, judged against

* the running ``next_ready`` of earlier operations in the same prefix
  (a warp's next transaction cannot come before its current one ends),
* the current clocks of runnable and stalled warps elsewhere, and
* a release-time lower bound for warps blocked at a barrier.

Each safe prefix is costed with **one** vectorized call per stage: a
single sorted-distinct pass computes every transaction's slot count
(bank conflicts for DMMs, address groups for UMMs — see
:func:`repro.machine.banks.conflict_degrees` /
:func:`~repro.machine.banks.group_counts`), and one cumulative-sum +
running-max scan solves the port recurrence
``pf[i] = max(ready[i], pf[i-1]) + s[i]``
(:meth:`~repro.machine.pipeline.PipelinedMemoryUnit.issue_batch`).  For
a barrier-aligned round this is exactly the paper's pipeline formula:
the round costs ``s_1 + ... + s_k + l - 1`` time units.

Because every memory space is served by exactly one unit and prefixes
are applied in key order, memory effects happen in *event* order —
reads (batched per consecutive run) observe precisely the writes the
event engine would have applied.

**Equivalence is detected, not assumed.**  The barrier bound is the one
optimistic ingredient: a warp that exits without reaching a barrier can
release its peers earlier than predicted (the event engine itself is
not monotone there).  Every dispatch therefore re-checks per-unit key
monotonicity, and the engine raises :class:`BatchFallback` the moment an
operation arrives behind an already-dispatched key — or when no queued
operation can be proven safe.  The calling engine rolls back its memory
spaces' store undo logs and replays on the event scheduler, so programs with
data-dependent scheduling still get *exact* event-engine numbers, just
without the speedup.  Results and cycle counts are identical either
way; ``tests/machine/test_batch_equivalence.py`` pins this across the
kernel library.
"""

from __future__ import annotations

import heapq
from bisect import bisect_left
from typing import Callable

import numpy as np

from repro.errors import DeadlockError, KernelError
from repro.machine.ops import (
    AccessKind,
    BarrierOp,
    BarrierScope,
    ComputeOp,
    MemoryOp,
    Op,
    RangeOp,
    ReadOp,
    WriteOp,
)
from repro.machine.pipeline import PipelinedMemoryUnit
from repro.machine.scheduler import SchedulerResult, WarpState, _BarrierGroup
from repro.native import NATIVE_METRICS, native_kernels, resolve_backend

__all__ = ["BatchCostEngine", "BatchFallback"]

_GroupMap = dict[tuple[BarrierScope, int], _BarrierGroup]

#: Sentinel larger than any encoded (ready, warp_id) dispatch key.
_INF = 1 << 62


class BatchFallback(Exception):
    """Batch evaluation cannot reproduce event semantics for this run.

    Raised mid-run when a detector trips (an operation arriving behind an
    already-dispatched unit key, or no queued operation provably safe to
    dispatch).  Engines catch it, restore memory from the launch
    snapshot, and rerun on the event scheduler.  The message names the
    tripped detector — useful when debugging why a kernel misses the
    fast path (``docs/PERFORMANCE.md`` lists the common causes).
    """


class BatchCostEngine:
    """Evaluate warp programs wave-by-wave with vectorized costing.

    Drop-in alternative to :class:`repro.machine.scheduler.Scheduler`
    for the supported (FIFO-dispatch, untraced) configuration: same
    ``unit_for`` contract, same :class:`SchedulerResult`, same memory
    effects and deadlock behavior.

    Parameters
    ----------
    unit_for:
        Maps ``(warp_state, memory_op)`` to the serving memory unit,
        validating space visibility (shared with the event scheduler).
    backend:
        ``"python"`` / ``"native"`` / ``None`` (defer to
        ``$REPRO_BACKEND``).  The native backend runs the three hot
        integer scans — safe-prefix, range replay, wave recurrence —
        through the compiled kernels of :mod:`repro.native`; results
        are bit-identical, and a missing compiler falls back to the
        Python scans with a once-per-process warning.
    """

    def __init__(
        self,
        unit_for: Callable[[WarpState, MemoryOp], PipelinedMemoryUnit],
        *,
        backend: "str | None" = None,
    ) -> None:
        self._unit_for = unit_for
        self.backend = resolve_backend(backend)
        self._native = (
            native_kernels() if self.backend == "native" else None
        )
        #: warp_id stride for encoding (ready, warp_id) keys as ints.
        self._nw = 1
        #: Per-unit queues of parked ops: id(unit) -> (unit, entries),
        #: entries = [enc_key, ws, op, slots].
        self._pending: dict[
            int, tuple[PipelinedMemoryUnit, list[list]]
        ] = {}
        #: Per-unit encoded key of the last dispatched transaction.
        self._last_enc: dict[int, int] = {}
        #: warp_id -> (bound, unit id) for warps currently parked in a
        #: unit queue.  ``bound`` is a lower bound on when the warp can
        #: next enqueue a transaction: a parked warp must first complete
        #: its queued transaction, which takes at least
        #: ``slots + latency - 1`` time units past its clock, so other
        #: units need not fear it before then.
        self._stalled: dict[int, tuple[int, int]] = {}
        #: Number of unfinished warps in the current run.
        self._live = 0
        #: [ops, cycles] charged for the per-round computes of fused
        #: ranges dispatched so far (folded into the final result).
        self._extra_compute = [0, 0]

    # ------------------------------------------------------------------
    def run(self, warps: list[WarpState]) -> SchedulerResult:
        if not warps:
            return SchedulerResult(
                cycles=0, compute_ops=0, compute_cycles=0, barrier_releases=0
            )
        self._nw = max(ws.warp_id for ws in warps) + 1
        self._live = len(warps)
        self._pending.clear()
        self._last_enc.clear()
        self._stalled.clear()
        self._extra_compute = [0, 0]
        groups = self._build_barrier_groups(warps)
        by_id = {ws.warp_id: ws for ws in warps}

        compute_ops = 0
        compute_cycles = 0
        barrier_releases = 0

        runnable = sorted(warps, key=lambda ws: ws.warp_id)
        while runnable or self._stalled:
            wave = runnable
            computing: list[WarpState] = []
            released: list[int] = []
            fresh: dict[int, tuple[PipelinedMemoryUnit, list[list]]] = {}
            for ws in wave:
                # Chain through zero-cost operations (fully masked memory
                # ops, zero-cycle computes) within the wave: the event
                # engine re-pops such a warp immediately at the same
                # (ready, warp_id) key, so its next real operation must
                # not slip a wave behind its peers'.
                while True:
                    op = self._advance(ws)
                    if isinstance(op, MemoryOp) and op.num_requests == 0:
                        # Fully masked: not dispatched, costs nothing.
                        if isinstance(op, ReadOp):
                            ws.pending_send = np.zeros(
                                ws.ctx.num_lanes, dtype=np.float64
                            )
                        continue
                    if isinstance(op, ComputeOp) and op.cycles == 0:
                        compute_ops += 1
                        continue
                    break
                if op is None:  # StopIteration: warp finished
                    ws.finished = True
                    self._live -= 1
                    barrier_releases += self._retire(ws, groups, by_id, released)
                elif isinstance(op, ComputeOp):
                    compute_ops += 1
                    compute_cycles += op.cycles
                    ws.ready += op.cycles
                    computing.append(ws)
                elif isinstance(op, (MemoryOp, RangeOp)):
                    unit = self._unit_for(ws, op)
                    entry = fresh.get(id(unit))
                    if entry is None:
                        fresh[id(unit)] = (unit, [[0, ws, op, 0]])
                    else:
                        entry[1].append([0, ws, op, 0])
                elif isinstance(op, BarrierOp):
                    barrier_releases += self._arrive(ws, op, groups, by_id, released)
                else:  # pragma: no cover - defensive
                    raise KernelError(
                        f"warp {ws.warp_id} yielded unknown operation {op!r}"
                    )
            self._enqueue(fresh)
            unstalled, progressed = self._dispatch(groups, by_id)

            runnable = computing + unstalled
            runnable.extend(by_id[wid] for wid in released)
            if not runnable and self._stalled and not wave and not progressed:
                raise BatchFallback(
                    "no queued transaction can be proven safe to dispatch "
                    "(barrier/exit interaction too data-dependent for wave "
                    "evaluation)"
                )
            runnable.sort(key=lambda ws: ws.warp_id)

        stuck = [
            wid
            for g in groups.values()
            for wid in g.waiting
            if not by_id[wid].finished
        ]
        if stuck:
            raise DeadlockError(
                f"warps {sorted(set(stuck))} are blocked at a barrier that "
                "can never be released (mismatched barrier counts?)"
            )
        return SchedulerResult(
            cycles=max(ws.ready for ws in warps),
            compute_ops=compute_ops + self._extra_compute[0],
            compute_cycles=compute_cycles + self._extra_compute[1],
            barrier_releases=barrier_releases,
        )

    # -- queueing --------------------------------------------------------
    def _enqueue(
        self, fresh: dict[int, tuple[PipelinedMemoryUnit, list[list]]]
    ) -> None:
        """Key and slot-count this wave's new ops; merge into the queues.

        Slot counts for a unit's new single-step transactions come from
        one vectorized ``policy.slot_counts`` call; each fused range is
        costed rowwise with one ``policy.slot_counts_matrix`` call.  A
        queued entry is ``[key, warp, op, slots]`` for a single-step op
        and ``[key, warp, op, per-round slots, next round, value buffer]``
        for a range.
        """
        nw = self._nw
        for uid, (unit, entries) in fresh.items():
            plain = [e[2].addresses for e in entries if not isinstance(e[2], RangeOp)]
            if plain:
                slots = unit.policy.slot_counts(plain, unit.width)
                if int(slots.min()) < 1:
                    raise BatchFallback(
                        f"policy {unit.policy.name!r} assigned zero slots to "
                        "a non-empty transaction; batch mode cannot skip "
                        "warps mid-round"
                    )
            lat1 = unit.latency - 1
            i_plain = 0
            for e in entries:
                ws = e[1]
                op = e[2]
                e[0] = ws.ready * nw + ws.warp_id
                if isinstance(op, RangeOp):
                    rs = unit.policy.slot_counts_matrix(op.addresses, unit.width)
                    if int(rs.min()) < 1:
                        raise BatchFallback(
                            f"policy {unit.policy.name!r} assigned zero slots "
                            "to a range round; batch mode cannot skip warps "
                            "mid-round"
                        )
                    e[3] = rs.tolist()
                    e.append(0)  # next round to dispatch
                    e.append(
                        np.empty((op.rounds, op.lanes), dtype=np.float64)
                        if op.kind is AccessKind.READ
                        else None
                    )
                    # The whole chain must drain before the warp returns:
                    # every round costs at least its slots plus the
                    # pipeline latency (plus the per-round compute).
                    bound = ws.ready + int(rs.sum()) + op.rounds * (lat1 + op.compute)
                else:
                    s = int(slots[i_plain])
                    i_plain += 1
                    e[3] = s
                    # Earliest this warp can run again: its queued
                    # transaction completes no sooner than slots + l - 1
                    # past its clock.
                    bound = ws.ready + s + lat1
                self._stalled[ws.warp_id] = (bound, uid)
            have = self._pending.get(uid)
            if have is None:
                self._pending[uid] = (unit, entries)
            else:
                have[1].extend(entries)

    # -- dispatch --------------------------------------------------------
    def _dispatch(
        self, groups: _GroupMap, by_id: dict[int, WarpState]
    ) -> tuple[list[WarpState], bool]:
        """Dispatch every provably-safe queue prefix.

        Returns the warps whose queued operation completed (now runnable
        again) plus a flag telling whether *any* transaction dispatched —
        a range can make progress (committing some rounds) without
        completing, which still counts against livelock detection.
        """
        if not self._pending:
            return [], False
        unstalled: list[WarpState] = []

        # Fast path: every live warp is parked on the same unit — flat
        # machines always, and HMM phases where all warps are in a global
        # round.  No outside bound exists; only self-interference (an
        # issuing warp's own next transaction) can limit the prefix.
        if len(self._pending) == 1:
            ((uid, (unit, entries)),) = self._pending.items()
            if len(entries) == self._live:
                entries.sort(key=lambda e: e[0])
                if any(len(e) != 4 for e in entries):
                    progressed = self._sim_dispatch(
                        unit, uid, entries, _INF, unstalled, None
                    )
                    return unstalled, progressed
                k = self._safe_prefix(unit, entries, _INF)
                if k:
                    batch = entries[:k]
                    del entries[:k]
                    if not entries:
                        del self._pending[uid]
                    self._issue(unit, uid, batch)
                    for e in batch:
                        del self._stalled[e[1].warp_id]
                        unstalled.append(e[1])
                return unstalled, bool(unstalled)

        # General path.  The bounds only tighten as dispatches raise warp
        # clocks, so compute them once per pass and update incrementally
        # (using a bound that has since risen is merely conservative).  A
        # dispatch can loosen the bound holding back another unit, so
        # sweep the units — in ascending order of their earliest queued
        # key, which resolves such cascades in a single pass — until a
        # pass dispatches nothing.
        bounds = self._future_bounds(groups, by_id)
        nw = self._nw
        stalled = self._stalled
        any_progress = False
        progress = True
        while progress and self._pending:
            progress = False
            # Warps in ascending bound order; the outside bound of a unit
            # is the first entry not parked on that same unit.
            order = sorted(bounds.items(), key=lambda kv: kv[1])
            for unit, entries in self._pending.values():
                entries.sort(key=lambda e: e[0])
            for uid, (unit, entries) in sorted(
                self._pending.items(), key=lambda kv: kv[1][1][0][0]
            ):
                outside = _INF
                for wid, b in order:
                    su = stalled.get(wid)
                    if su is None or su[1] != uid:
                        outside = b
                        break
                if any(len(e) != 4 for e in entries):
                    if self._sim_dispatch(
                        unit, uid, entries, outside, unstalled, bounds
                    ):
                        progress = True
                    continue
                k = self._safe_prefix(unit, entries, outside)
                if k == 0:
                    continue
                progress = True
                batch = entries[:k]
                del entries[:k]
                if not entries:
                    del self._pending[uid]
                self._issue(unit, uid, batch)
                for e in batch:
                    wid = e[1].warp_id
                    del stalled[wid]
                    bounds[wid] = e[1].ready * nw + wid
                    unstalled.append(e[1])
            if progress:
                any_progress = True
        return unstalled, any_progress

    def _future_bounds(
        self, groups: _GroupMap, by_id: dict[int, WarpState]
    ) -> dict[int, int]:
        """Encoded lower bound on any future dispatch key, per live warp.

        Runnable warps cannot issue below their current clock; a warp
        parked in a unit queue cannot issue anywhere else before its
        queued transaction completes (the bound cached in ``_stalled``).
        A warp blocked at a barrier resumes at the release time, which
        is at least the latest arrival so far and at least the earliest
        possible arrival of a member still under way — that member's own
        bound, including — when the member waits at *another* barrier —
        that barrier's release bound.  The group bounds feed each other
        (a DMM barrier can gate a device barrier's release), so they are
        iterated to a fixpoint.  The bound is optimistic only when a
        member exits without reaching the barrier — the dispatch-key
        monotonicity check catches that case and triggers the fallback.
        """
        nw = self._nw
        stalled = self._stalled
        t = {}
        for ws in by_id.values():
            if not ws.finished:
                wid = ws.warp_id
                su = stalled.get(wid)
                t[wid] = ws.ready if su is None else su[0]
        waiting_groups = [
            (g, g.members - g.waiting, max(g.arrivals.values()))
            for g in groups.values()
            if g.waiting
        ]
        for _ in range(len(waiting_groups) + 1):
            changed = False
            for group, unarrived, latest_arrival in waiting_groups:
                release_lb = latest_arrival
                if unarrived:
                    earliest = min(t[m] for m in unarrived)
                    if earliest > release_lb:
                        release_lb = earliest
                for wid in group.waiting:
                    if release_lb > t[wid]:
                        t[wid] = release_lb
                        changed = True
            if not changed:
                break
        return {wid: ti * nw + wid for wid, ti in t.items()}

    def _safe_prefix(
        self, unit: PipelinedMemoryUnit, entries: list[list], outside: int
    ) -> int:
        """Length of the longest dispatchable prefix of a sorted queue.

        Entry ``i`` is safe when its key is below every bound on keys
        that could still arrive before it: ``outside`` (other warps) and
        the running minimum of the tentative ``next_ready`` keys of
        entries ``0..i-1`` (the issuing warps' own next transactions).
        The tentative port scan is prefix-stable, so timings computed
        over the whole queue are exact for whichever prefix dispatches.
        """
        n = len(entries)
        last = self._last_enc.get(id(unit))
        if last is not None and entries[0][0] < last:
            self._monotonicity_violation(unit, entries[0])
        if n <= 8:
            # Scalar scan — per-DMM shared memories serve only a couple
            # of warps, where numpy setup would dominate.
            nw = self._nw
            lat = unit.latency
            pipelined = unit.pipelined
            pf = unit.port_free
            prev_min = _INF
            cap = prev_min if prev_min < outside else outside
            k = 0
            for e in entries:
                enc = e[0]
                if enc >= cap:
                    break
                ready, wid = divmod(enc, nw)
                slots = e[3]
                start = ready if ready > pf else pf
                pf = start + (slots if pipelined else slots + lat - 1)
                enc_nr = (start + slots + lat - 1) * nw + wid
                if enc_nr < prev_min:
                    prev_min = enc_nr
                    if prev_min < cap:
                        cap = prev_min
                k += 1
            return k
        enc = np.fromiter((e[0] for e in entries), dtype=np.int64, count=n)
        slots = np.fromiter((e[3] for e in entries), dtype=np.int64, count=n)
        if self._native is not None:
            NATIVE_METRICS.native_calls += 1
            return self._native["repro_safe_prefix"](
                n, enc, slots, self._nw, unit.latency,
                1 if unit.pipelined else 0, unit.port_free, outside,
            )
        ready = enc // self._nw
        wids = enc - ready * self._nw
        eff = slots if unit.pipelined else slots + (unit.latency - 1)
        csum = np.cumsum(eff)
        offset = np.maximum.accumulate(ready - (csum - eff))
        port_free = np.maximum(offset, unit.port_free) + csum
        next_ready = port_free - eff + slots + (unit.latency - 1)
        enc_nr = next_ready * self._nw + wids
        prev_min = np.empty(n, dtype=np.int64)
        prev_min[0] = _INF
        np.minimum.accumulate(enc_nr[:-1], out=prev_min[1:])
        safe = enc < np.minimum(prev_min, outside)
        if safe.all():
            return n
        return int(np.argmin(safe))

    @staticmethod
    def _monotonicity_violation(unit: PipelinedMemoryUnit, entry: list) -> None:
        raise BatchFallback(
            f"unit {unit.name!r}: transaction of warp {entry[1].warp_id} "
            f"ready at {entry[1].ready} arrives behind an already-dispatched "
            "one; wave order would diverge from event order"
        )

    def _issue(
        self, unit: PipelinedMemoryUnit, uid: int, batch: list[list]
    ) -> None:
        """Cost one safe prefix and apply its memory effects in key order.

        Consecutive runs of reads are served by a single fancy-indexed
        load (reads cannot observe each other); writes commit singly, so
        every transaction sees exactly the memory state the event engine
        would have given it.
        """
        n = len(batch)
        if n <= 8:
            for e in batch:
                op = e[2]
                e[1].ready = unit.issue_one(
                    e[1].ready,
                    e[3],
                    is_read=isinstance(op, ReadOp),
                    requests=op.num_requests,
                )
        else:
            ready = np.fromiter((e[1].ready for e in batch), dtype=np.int64, count=n)
            slots = np.fromiter((e[3] for e in batch), dtype=np.int64, count=n)
            num_reads = sum(1 for e in batch if e[2].kind is AccessKind.READ)
            num_requests = int(sum(e[2].num_requests for e in batch))
            next_ready = unit.issue_batch(
                ready, slots, num_reads=num_reads, num_requests=num_requests
            )
            for e, nr in zip(batch, next_ready):
                e[1].ready = int(nr)
        self._last_enc[uid] = int(batch[-1][0])

        run: list[tuple[WarpState, ReadOp]] = []
        for e in batch:
            op = e[2]
            if isinstance(op, ReadOp):
                run.append((e[1], op))
            else:
                assert isinstance(op, WriteOp)
                self._flush_reads(run)
                op.array.space.store(op.addresses, op.values)
        self._flush_reads(run)

    def _sim_dispatch(
        self,
        unit: PipelinedMemoryUnit,
        uid: int,
        entries: list[list],
        outside: int,
        unstalled: list[WarpState],
        bounds: dict[int, int] | None,
    ) -> bool:
        """Dispatch a queue containing fused ranges via integer replay.

        A range's rounds chain through the port (round ``j + 1`` issues
        only when round ``j``'s data has arrived), so their timing is not
        a prefix-stable scan like :meth:`_safe_prefix`'s.  Instead, every
        remaining round of every queued entry is replayed through a pure
        integer heap in exact event order, and the longest prefix of that
        replay that no future arrival can precede is committed: pops
        below ``outside`` (warps parked elsewhere) and below every queued
        warp's chain-exit key (a warp re-enqueues only after its current
        entry completes — so each replayed chain end bounds the keys
        later arrivals can carry).  Committed rounds update the port,
        statistics, and memory exactly as the event engine would; a
        partially-committed range is re-keyed at its next round and stays
        queued for a later wave.  Returns whether anything committed.
        """
        last = self._last_enc.get(uid)
        if last is not None and entries[0][0] < last:
            self._monotonicity_violation(unit, entries[0])
        n = len(entries)
        nw = self._nw
        if all(len(e) == 6 and e[4] == 0 for e in entries):
            e0 = entries[0]
            r0 = e0[0] // nw
            rounds = len(e0[3])
            comp = e0[2].compute
            if all(
                e[0] // nw == r0
                and len(e[3]) == rounds
                and e[2].compute == comp
                and e[2].kind is AccessKind.READ
                for e in entries
            ):
                return self._wave_dispatch(
                    unit, uid, entries, outside, unstalled, bounds, r0, comp
                )
        lat1 = unit.latency - 1
        pipelined = unit.pipelined
        pf = unit.port_free
        slists: list = [None] * n
        j0s = [0] * n
        cs = [0] * n
        wids = [0] * n
        for i, e in enumerate(entries):
            wids[i] = e[1].warp_id
            if len(e) == 4:
                slists[i] = (e[3],)
            else:
                slists[i] = e[3]
                j0s[i] = e[4]
                cs[i] = e[2].compute

        # Replay: pops come out in nondecreasing key order (a chained
        # round's key always exceeds the round that produced it).
        replayed = None
        if self._native is not None:
            total = sum(len(sl) - j0 for sl, j0 in zip(slists, j0s))
            nround = np.fromiter(
                (len(sl) for sl in slists), dtype=np.int64, count=n
            )
            slot_off = np.zeros(n + 1, dtype=np.int64)
            np.cumsum(nround, out=slot_off[1:])
            slot_flat = np.fromiter(
                (s for sl in slists for s in sl),
                dtype=np.int64,
                count=int(slot_off[-1]),
            )
            out_enc = np.empty(total, dtype=np.int64)
            out_i = np.empty(total, dtype=np.int64)
            out_j = np.empty(total, dtype=np.int64)
            out_nxt = np.empty(total, dtype=np.int64)
            out_pf = np.empty(total, dtype=np.int64)
            out_final = np.zeros(n, dtype=np.int64)
            p = self._native["repro_batch_sim"](
                n,
                np.fromiter((e[0] for e in entries), dtype=np.int64, count=n),
                np.asarray(wids, dtype=np.int64),
                np.asarray(cs, dtype=np.int64),
                np.asarray(j0s, dtype=np.int64),
                nround,
                slot_off,
                slot_flat,
                nw,
                lat1,
                1 if pipelined else 0,
                pf,
                out_enc,
                out_i,
                out_j,
                out_nxt,
                out_pf,
                out_final,
            )
            if p >= 0:
                NATIVE_METRICS.native_calls += 1
                encs = out_enc[:p].tolist()
                pops = list(
                    zip(out_i[:p].tolist(), out_j[:p].tolist(),
                        out_nxt[:p].tolist())
                )
                pfs = out_pf[:p].tolist()
                finals = out_final.tolist()
                replayed = True
        if replayed is None:
            heap = [(e[0], i) for i, e in enumerate(entries)]  # sorted == heap
            pop = heapq.heappop
            push = heapq.heappush
            encs: list[int] = []
            pops: list[tuple[int, int, int]] = []  # (entry, round, clock)
            pfs: list[int] = []
            finals = [0] * n
            js = j0s[:]
            while heap:
                enc, i = pop(heap)
                j = js[i]
                s = slists[i][j]
                ready = enc // nw
                start = ready if ready > pf else pf
                pf = start + (s if pipelined else s + lat1)
                nxt = start + s + lat1 + cs[i]
                encs.append(enc)
                pops.append((i, j, nxt))
                pfs.append(pf)
                js[i] = j + 1
                if js[i] < len(slists[i]):
                    push(heap, (nxt * nw + wids[i], i))
                else:
                    finals[i] = nxt

        cap = outside
        for i in range(n):
            ek = finals[i] * nw + wids[i]
            if ek < cap:
                cap = ek
        k = bisect_left(encs, cap)
        if k == 0:
            return False

        # Statistics and per-entry commit counts, one integer pass.
        is_read = [e[2].kind is AccessKind.READ for e in entries]
        reqs = [
            e[2].lanes if isinstance(e[2], RangeOp) else e[2].num_requests
            for e in entries
        ]
        cnt = [0] * n
        clocks = [0] * n  # warp clock after its last committed round
        reads = req = slotsum = confl = excess = c_ops = c_cyc = 0
        for i, j, nxt in pops[:k]:
            s = slists[i][j]
            slotsum += s
            if s > 1:
                confl += 1
                excess += s - 1
            if is_read[i]:
                reads += 1
            req += reqs[i]
            cnt[i] += 1
            clocks[i] = nxt
            if cs[i]:
                c_ops += 1
                c_cyc += cs[i]
        st = unit.stats
        st.transactions += k
        st.reads += reads
        st.writes += k - reads
        st.requests += req
        st.slots += slotsum
        st.conflicted_transactions += confl
        st.excess_slots += excess
        busy = pfs[k - 1] - (0 if pipelined else lat1)
        if busy > st.port_busy_until:
            st.port_busy_until = busy
        i_last, _, nxt_last = pops[k - 1]
        last_complete = nxt_last - cs[i_last] - 1
        if last_complete > st.last_complete:
            st.last_complete = last_complete
        unit._port_free = pfs[k - 1]
        self._last_enc[uid] = encs[k - 1]
        self._extra_compute[0] += c_ops
        self._extra_compute[1] += c_cyc

        # Memory effects.  When no write committed, order is free: bulk
        # per entry (a 2-D fancy load serves all of a range's committed
        # rounds at once).  Otherwise replay the committed pops in order.
        if all(is_read[i] or not cnt[i] for i in range(n)):
            for i, e in enumerate(entries):
                if not cnt[i]:
                    continue
                op = e[2]
                space = op.array.space
                if len(e) == 4:
                    self._deliver(e[1], op, space.load(op.addresses))
                else:
                    j0 = j0s[i]
                    e[5][j0 : j0 + cnt[i]] = space.load(
                        op.addresses[j0 : j0 + cnt[i]]
                    )
        else:
            for i, j, _ in pops[:k]:
                e = entries[i]
                op = e[2]
                space = op.array.space
                if len(e) == 4:
                    if is_read[i]:
                        self._deliver(e[1], op, space.load(op.addresses))
                    else:
                        space.store(op.addresses, op.values)
                elif is_read[i]:
                    e[5][j] = space.load(op.addresses[j])
                else:
                    space.store(op.addresses[j], op.values[j])

        # Completion bookkeeping: finished entries release their warps;
        # partial ranges are re-keyed at their next round.
        stalled = self._stalled
        remaining: list[list] = []
        for i, e in enumerate(entries):
            ki = cnt[i]
            if ki and j0s[i] + ki == len(slists[i]):
                ws = e[1]
                ws.ready = finals[i]
                if len(e) == 6 and is_read[i]:
                    ws.pending_send = e[5]
                del stalled[ws.warp_id]
                if bounds is not None:
                    bounds[ws.warp_id] = ws.ready * nw + ws.warp_id
                unstalled.append(ws)
            elif ki:
                nj = j0s[i] + ki
                clock = clocks[i]
                e[4] = nj
                e[0] = clock * nw + wids[i]
                e[1].ready = clock
                rem = len(slists[i]) - nj
                bound = clock + sum(slists[i][nj:]) + rem * (lat1 + cs[i])
                stalled[wids[i]] = (bound, uid)
                if bounds is not None:
                    bounds[wids[i]] = bound * nw + wids[i]
                remaining.append(e)
            else:
                remaining.append(e)
        if remaining:
            entries[:] = remaining
        else:
            del self._pending[uid]
        return True

    def _wave_dispatch(
        self,
        unit: PipelinedMemoryUnit,
        uid: int,
        entries: list[list],
        outside: int,
        unstalled: list[WarpState],
        bounds: dict[int, int] | None,
        r0: int,
        comp: int,
    ) -> bool:
        """Vectorized :meth:`_sim_dispatch` for wave-synchronous ranges.

        When every queued entry is a fresh read range starting at the
        same clock with the same round count and per-round compute — the
        shape every symmetric kernel produces right after a barrier —
        event order provably proceeds *wave by wave*: round ``j`` of all
        warps in warp-id order, then round ``j + 1``.  (Within a wave the
        ready times are nondecreasing in warp id, and the first round
        ``j + 1`` ready exceeds the last round ``j`` ready because the
        port must serve the whole wave before the first warp's next
        transaction.)  Each wave's port arbitration ``start[i] =
        max(ready[i], start[i-1] + eff[i-1])`` is a prefix-maximum
        recurrence, so the whole replay is one ``maximum.accumulate``
        per wave instead of one Python heap pop per (warp, round).
        Commit rules, statistics, and effects match the scalar replay
        exactly.
        """
        n = len(entries)
        nw = self._nw
        lat1 = unit.latency - 1
        pipelined = unit.pipelined
        lag = lat1 + comp
        S = np.array([e[3] for e in entries], dtype=np.int64).T  # (rounds, n)
        R = S.shape[0]
        wids_a = np.fromiter(
            (e[1].warp_id for e in entries), dtype=np.int64, count=n
        )
        EFF = S if pipelined else S + lat1
        pf = unit.port_free
        uni = int(S[0, 0])
        if int(S.min()) == uni == int(S.max()):
            # Uniform slot counts (every round of every warp coalesces
            # the same way — the common symmetric sweep): the recurrence
            # solves in closed form.  Consecutive waves are ``X =
            # max(s + lag, n·eff)`` apart — whichever of round latency
            # (latency-bound) or port occupancy (bandwidth-bound) binds —
            # and within a wave warps queue ``eff`` apart on the port.
            eff_u = uni if pipelined else uni + lat1
            X = max(uni + lag, n * eff_u)
            STARTS = (
                max(r0, pf)
                + np.arange(n, dtype=np.int64) * eff_u
                + np.arange(R, dtype=np.int64)[:, None] * X
            )
            READY = np.empty((R, n), dtype=np.int64)
            READY[0] = r0
            if R > 1:
                np.add(STARTS[:-1], uni + lag, out=READY[1:])
            ready = STARTS[-1] + (uni + lag)
        elif self._native is not None:
            READY = np.empty((R, n), dtype=np.int64)
            STARTS = np.empty((R, n), dtype=np.int64)
            ready = np.empty(n, dtype=np.int64)
            self._native["repro_wave_starts"](
                R, n, np.ascontiguousarray(S), r0, pf, lat1,
                1 if pipelined else 0, lag, READY, STARTS, ready,
            )
            NATIVE_METRICS.native_calls += 1
        else:
            READY = np.empty((R, n), dtype=np.int64)
            STARTS = np.empty((R, n), dtype=np.int64)
            ready = np.full(n, r0, dtype=np.int64)
            for j in range(R):
                eff = EFF[j]
                cs_prev = np.cumsum(eff) - eff
                t = np.maximum.accumulate(ready - cs_prev)
                np.maximum(t, pf, out=t)
                READY[j] = ready
                starts = t + cs_prev
                STARTS[j] = starts
                ready = starts + S[j] + lag
                pf = int(starts[-1] + eff[-1])
        finals = ready  # next-ready after each chain's last round

        # Pops in event order are exactly the wave-major traversal, so
        # the commit prefix is a searchsorted over the flat key matrix.
        cap = min(outside, int(finals[0]) * nw + int(wids_a[0]))
        encs = (READY * nw + wids_a).ravel()
        k = int(np.searchsorted(encs, cap, side="left"))
        if k == 0:
            return False
        q, r = divmod(k, n)  # q full waves plus the first r of wave q

        committed = S.ravel()[:k]
        confl_mask = committed > 1
        confl = int(confl_mask.sum())
        lanes_v = np.fromiter(
            (e[2].lanes for e in entries), dtype=np.int64, count=n
        )
        st = unit.stats
        st.transactions += k
        st.reads += k
        st.requests += int(lanes_v.sum()) * q + int(lanes_v[:r].sum())
        st.slots += int(committed.sum())
        st.conflicted_transactions += confl
        st.excess_slots += int(committed[confl_mask].sum()) - confl
        jq, iq = divmod(k - 1, n)
        pf_last = int(STARTS[jq, iq] + EFF[jq, iq])
        busy = pf_last - (0 if pipelined else lat1)
        if busy > st.port_busy_until:
            st.port_busy_until = busy
        last_complete = int(STARTS[jq, iq] + S[jq, iq]) + lat1 - 1
        if last_complete > st.last_complete:
            st.last_complete = last_complete
        unit._port_free = pf_last
        self._last_enc[uid] = int(encs[k - 1])
        if comp:
            self._extra_compute[0] += k
            self._extra_compute[1] += k * comp

        stalled = self._stalled
        remaining: list[list] = []
        for i, e in enumerate(entries):
            ci = q + (1 if i < r else 0)
            if ci:
                op = e[2]
                e[5][:ci] = op.array.space.load(op.addresses[:ci])
            ws = e[1]
            if ci == R:
                ws.ready = int(finals[i])
                ws.pending_send = e[5]
                del stalled[ws.warp_id]
                if bounds is not None:
                    bounds[ws.warp_id] = ws.ready * nw + ws.warp_id
                unstalled.append(ws)
            elif ci:
                clock = int(READY[ci, i])  # == nxt of last committed round
                e[4] = ci
                e[0] = clock * nw + int(wids_a[i])
                ws.ready = clock
                bound = clock + int(S[ci:, i].sum()) + (R - ci) * lag
                stalled[ws.warp_id] = (bound, uid)
                if bounds is not None:
                    bounds[ws.warp_id] = bound * nw + ws.warp_id
                remaining.append(e)
            else:
                remaining.append(e)
        if remaining:
            entries[:] = remaining
        else:
            del self._pending[uid]
        return True

    @staticmethod
    def _flush_reads(run: list[tuple[WarpState, ReadOp]]) -> None:
        if not run:
            return
        space = run[0][1].array.space
        if len(run) == 1:
            ws, op = run[0]
            values = space.load(op.addresses)
            BatchCostEngine._deliver(ws, op, values)
        else:
            flat = space.load(np.concatenate([op.addresses for _, op in run]))
            offset = 0
            for ws, op in run:
                size = op.addresses.size
                BatchCostEngine._deliver(ws, op, flat[offset : offset + size])
                offset += size
        run.clear()

    @staticmethod
    def _deliver(ws: WarpState, op: ReadOp, values: np.ndarray) -> None:
        if values.size == ws.ctx.num_lanes:
            # Every lane participated: the loaded vector already is the
            # full-width result (masked positions would shrink it).
            ws.pending_send = values
            return
        out = np.zeros(ws.ctx.num_lanes, dtype=np.float64)
        assert op.result_mask is not None
        out[op.result_mask] = values
        ws.pending_send = out

    # -- generator stepping ----------------------------------------------
    @staticmethod
    def _advance(ws: WarpState) -> Op | None:
        send, ws.pending_send = ws.pending_send, None
        try:
            if send is None:
                return next(ws.program)
            return ws.program.send(send)
        except StopIteration:
            return None

    # -- barriers (same group semantics as the event scheduler) -----------
    @staticmethod
    def _build_barrier_groups(warps: list[WarpState]) -> _GroupMap:
        groups: _GroupMap = {}
        all_ids = {ws.warp_id for ws in warps}
        groups[(BarrierScope.DEVICE, 0)] = _BarrierGroup(all_ids)
        by_dmm: dict[int, set[int]] = {}
        for ws in warps:
            by_dmm.setdefault(ws.ctx.dmm_id, set()).add(ws.warp_id)
        for dmm_id, members in by_dmm.items():
            groups[(BarrierScope.DMM, dmm_id)] = _BarrierGroup(members)
        return groups

    def _arrive(
        self,
        ws: WarpState,
        op: BarrierOp,
        groups: _GroupMap,
        by_id: dict[int, WarpState],
        released: list[int],
    ) -> int:
        if op.scope is BarrierScope.DEVICE:
            key = (BarrierScope.DEVICE, 0)
        else:
            key = (BarrierScope.DMM, ws.ctx.dmm_id)
        group = groups[key]
        group.waiting.add(ws.warp_id)
        group.arrivals[ws.warp_id] = ws.ready
        group.seq[ws.warp_id] = ws.barrier_seq.get(op.scope, 0)
        return self._maybe_release(group, op.scope, by_id, released)

    def _retire(
        self,
        ws: WarpState,
        groups: _GroupMap,
        by_id: dict[int, WarpState],
        released: list[int],
    ) -> int:
        """A finished warp leaves its barrier groups; maybe releases them."""
        count = 0
        for (scope, _), group in groups.items():
            if ws.warp_id in group.members:
                group.members.discard(ws.warp_id)
                group.waiting.discard(ws.warp_id)
                group.arrivals.pop(ws.warp_id, None)
                group.seq.pop(ws.warp_id, None)
                count += self._maybe_release(group, scope, by_id, released)
        return count

    @staticmethod
    def _maybe_release(
        group: _BarrierGroup,
        scope: BarrierScope,
        by_id: dict[int, WarpState],
        released: list[int],
    ) -> int:
        if not group.complete():
            return 0
        seqs = set(group.seq.values())
        if len(seqs) > 1:
            raise DeadlockError(
                f"warps reached different occurrences of a {scope.value} "
                f"barrier (sequence numbers {sorted(seqs)}); every warp in "
                "scope must execute the same number of barriers"
            )
        release_time = max(group.arrivals.values())
        for wid in sorted(group.waiting):
            member = by_id[wid]
            member.ready = release_time
            member.barrier_seq[scope] = member.barrier_seq.get(scope, 0) + 1
            released.append(wid)
        group.waiting.clear()
        group.arrivals.clear()
        group.seq.clear()
        return 1
