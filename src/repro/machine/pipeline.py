"""The pipelined memory port (paper Section II and Figure 4).

The MMU of a memory machine is modeled as an ``l``-stage pipeline that
accepts one stage-occupancy ("slot") per time unit.  A warp transaction
that needs ``s`` slots (bank-conflict degree on a DMM, address-group count
on a UMM) issued at time ``t``:

* occupies the issue port during ``[t, t + s)``,
* completes — data available, threads may continue — at the end of time
  unit ``t + s - 1 + (l - 1)``, i.e. the warp can issue its next operation
  at ``t + s + l - 1``.

Consequences that the paper derives and our unit tests pin down:

* ``x`` requests to one bank take ``l + x - 1`` time units;
* the Figure 4 example (two warps spanning 3 and 1 address groups,
  ``l = 5``) finishes after exactly ``3 + 1 + 5 - 1 = 8`` time units;
* a thread must wait ``l`` time units between its own requests.

Setting ``pipelined=False`` degrades the unit so that a transaction holds
the port until it fully completes — the ablation used to show how much of
the models' throughput comes from pipelining.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError
from repro.machine.ops import AccessKind
from repro.machine.policy import SlotPolicy

__all__ = ["Issue", "PipelinedMemoryUnit", "UnitStats"]


@dataclass(frozen=True)
class Issue:
    """Timing of one warp transaction through the port.

    Attributes
    ----------
    start:
        First time unit the transaction occupies the issue port.
    slots:
        Number of pipeline stages occupied.
    complete:
        Last time unit of the access; the data is available after it.
    next_ready:
        First time unit at which the issuing warp may proceed
        (``complete + 1``).
    """

    start: int
    slots: int
    complete: int
    next_ready: int


@dataclass
class UnitStats:
    """Running statistics of one memory unit."""

    transactions: int = 0
    reads: int = 0
    writes: int = 0
    requests: int = 0
    slots: int = 0
    #: Transactions whose slot count exceeded 1 (conflicted / uncoalesced).
    conflicted_transactions: int = 0
    #: Extra slots beyond one per transaction (the waste the paper's
    #: contiguous-access technique eliminates).
    excess_slots: int = 0
    #: Last time unit at which the port was busy issuing.
    port_busy_until: int = 0
    #: Last completion time observed.
    last_complete: int = 0

    def observe(self, issue: Issue, kind: AccessKind, requests: int) -> None:
        self.transactions += 1
        if kind is AccessKind.READ:
            self.reads += 1
        else:
            self.writes += 1
        self.requests += requests
        self.slots += issue.slots
        if issue.slots > 1:
            self.conflicted_transactions += 1
            self.excess_slots += issue.slots - 1
        self.port_busy_until = max(self.port_busy_until, issue.start + issue.slots)
        self.last_complete = max(self.last_complete, issue.complete)

    def merge(self, other: "UnitStats") -> "UnitStats":
        """Aggregate of two stats records (used for whole-HMM summaries)."""
        return UnitStats(
            transactions=self.transactions + other.transactions,
            reads=self.reads + other.reads,
            writes=self.writes + other.writes,
            requests=self.requests + other.requests,
            slots=self.slots + other.slots,
            conflicted_transactions=(
                self.conflicted_transactions + other.conflicted_transactions
            ),
            excess_slots=self.excess_slots + other.excess_slots,
            port_busy_until=max(self.port_busy_until, other.port_busy_until),
            last_complete=max(self.last_complete, other.last_complete),
        )


class PipelinedMemoryUnit:
    """One memory subsystem: a slot policy plus an ``l``-stage pipeline.

    Parameters
    ----------
    name:
        Identifier used in traces/reports (``"global"``, ``"shared[0]"``).
    width:
        Number of banks ``w``.
    latency:
        Pipeline depth ``l`` (time units from issue to completion of a
        single-slot transaction).
    policy:
        Slot-counting policy (bank conflicts vs address groups vs ideal).
    pipelined:
        When ``False`` the port is held until completion (ablation).
    """

    __slots__ = ("name", "width", "latency", "policy", "pipelined", "_port_free", "stats")

    def __init__(
        self,
        name: str,
        width: int,
        latency: int,
        policy: SlotPolicy,
        *,
        pipelined: bool = True,
    ) -> None:
        if width < 1:
            raise ConfigurationError(f"width must be >= 1, got {width}")
        if latency < 1:
            raise ConfigurationError(f"latency must be >= 1, got {latency}")
        self.name = name
        self.width = width
        self.latency = latency
        self.policy = policy
        self.pipelined = pipelined
        self._port_free = 0
        self.stats = UnitStats()

    # ------------------------------------------------------------------
    def issue(
        self,
        ready: int,
        addresses: np.ndarray,
        kind: AccessKind,
    ) -> Issue:
        """Dispatch one warp transaction; return its timing.

        ``ready`` is the first time unit at which the issuing warp may
        send requests.  The transaction starts as soon as both the warp
        and the issue port are available; arbitration among warps is the
        scheduler's job (it feeds transactions in dispatch order).
        """
        slots = self.policy.slot_count(addresses, self.width)
        if slots == 0:
            # A warp with no pending request is not dispatched at all.
            return Issue(start=ready, slots=0, complete=ready - 1, next_ready=ready)
        start = max(ready, self._port_free)
        complete = start + slots - 1 + (self.latency - 1)
        if self.pipelined:
            self._port_free = start + slots
        else:
            self._port_free = complete + 1
        issue = Issue(start=start, slots=slots, complete=complete, next_ready=complete + 1)
        self.stats.observe(issue, kind, int(np.asarray(addresses).size))
        return issue

    # ------------------------------------------------------------------
    @property
    def port_free(self) -> int:
        """First time unit at which the issue port is free."""
        return self._port_free

    def reset(self) -> None:
        """Clear timing state and statistics (new kernel launch)."""
        self._port_free = 0
        self.stats = UnitStats()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"PipelinedMemoryUnit({self.name!r}, w={self.width}, "
            f"l={self.latency}, policy={self.policy.name})"
        )
