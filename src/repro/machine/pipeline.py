"""The pipelined memory port (paper Section II and Figure 4).

The MMU of a memory machine is modeled as an ``l``-stage pipeline that
accepts one stage-occupancy ("slot") per time unit.  A warp transaction
that needs ``s`` slots (bank-conflict degree on a DMM, address-group count
on a UMM) issued at time ``t``:

* occupies the issue port during ``[t, t + s)``,
* completes — data available, threads may continue — at the end of time
  unit ``t + s - 1 + (l - 1)``, i.e. the warp can issue its next operation
  at ``t + s + l - 1``.

Consequences that the paper derives and our unit tests pin down:

* ``x`` requests to one bank take ``l + x - 1`` time units;
* the Figure 4 example (two warps spanning 3 and 1 address groups,
  ``l = 5``) finishes after exactly ``3 + 1 + 5 - 1 = 8`` time units;
* a thread must wait ``l`` time units between its own requests.

Setting ``pipelined=False`` degrades the unit so that a transaction holds
the port until it fully completes — the ablation used to show how much of
the models' throughput comes from pipelining.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError
from repro.machine.ops import AccessKind
from repro.machine.policy import SlotPolicy

__all__ = ["Issue", "PipelinedMemoryUnit", "UnitStats"]


@dataclass(frozen=True)
class Issue:
    """Timing of one warp transaction through the port.

    Attributes
    ----------
    start:
        First time unit the transaction occupies the issue port.
    slots:
        Number of pipeline stages occupied.
    complete:
        Last time unit of the access; the data is available after it.
    next_ready:
        First time unit at which the issuing warp may proceed
        (``complete + 1``).
    """

    start: int
    slots: int
    complete: int
    next_ready: int


@dataclass
class UnitStats:
    """Running statistics of one memory unit."""

    transactions: int = 0
    reads: int = 0
    writes: int = 0
    requests: int = 0
    slots: int = 0
    #: Transactions whose slot count exceeded 1 (conflicted / uncoalesced).
    conflicted_transactions: int = 0
    #: Extra slots beyond one per transaction (the waste the paper's
    #: contiguous-access technique eliminates).
    excess_slots: int = 0
    #: Last time unit at which the port was busy issuing.
    port_busy_until: int = 0
    #: Last completion time observed.
    last_complete: int = 0

    def observe(self, issue: Issue, kind: AccessKind, requests: int) -> None:
        self.transactions += 1
        if kind is AccessKind.READ:
            self.reads += 1
        else:
            self.writes += 1
        self.requests += requests
        self.slots += issue.slots
        if issue.slots > 1:
            self.conflicted_transactions += 1
            self.excess_slots += issue.slots - 1
        self.port_busy_until = max(self.port_busy_until, issue.start + issue.slots)
        self.last_complete = max(self.last_complete, issue.complete)

    def merge(self, other: "UnitStats") -> "UnitStats":
        """Aggregate of two stats records (used for whole-HMM summaries)."""
        return UnitStats(
            transactions=self.transactions + other.transactions,
            reads=self.reads + other.reads,
            writes=self.writes + other.writes,
            requests=self.requests + other.requests,
            slots=self.slots + other.slots,
            conflicted_transactions=(
                self.conflicted_transactions + other.conflicted_transactions
            ),
            excess_slots=self.excess_slots + other.excess_slots,
            port_busy_until=max(self.port_busy_until, other.port_busy_until),
            last_complete=max(self.last_complete, other.last_complete),
        )


class PipelinedMemoryUnit:
    """One memory subsystem: a slot policy plus an ``l``-stage pipeline.

    Parameters
    ----------
    name:
        Identifier used in traces/reports (``"global"``, ``"shared[0]"``).
    width:
        Number of banks ``w``.
    latency:
        Pipeline depth ``l`` (time units from issue to completion of a
        single-slot transaction).
    policy:
        Slot-counting policy (bank conflicts vs address groups vs ideal).
    pipelined:
        When ``False`` the port is held until completion (ablation).
    """

    __slots__ = ("name", "width", "latency", "policy", "pipelined", "_port_free", "stats")

    def __init__(
        self,
        name: str,
        width: int,
        latency: int,
        policy: SlotPolicy,
        *,
        pipelined: bool = True,
    ) -> None:
        if width < 1:
            raise ConfigurationError(f"width must be >= 1, got {width}")
        if latency < 1:
            raise ConfigurationError(f"latency must be >= 1, got {latency}")
        self.name = name
        self.width = width
        self.latency = latency
        self.policy = policy
        self.pipelined = pipelined
        self._port_free = 0
        self.stats = UnitStats()

    # ------------------------------------------------------------------
    def issue(
        self,
        ready: int,
        addresses: np.ndarray,
        kind: AccessKind,
    ) -> Issue:
        """Dispatch one warp transaction; return its timing.

        ``ready`` is the first time unit at which the issuing warp may
        send requests.  The transaction starts as soon as both the warp
        and the issue port are available; arbitration among warps is the
        scheduler's job (it feeds transactions in dispatch order).
        """
        slots = self.policy.slot_count(addresses, self.width)
        if slots == 0:
            # A warp with no pending request is not dispatched at all.
            return Issue(start=ready, slots=0, complete=ready - 1, next_ready=ready)
        start = max(ready, self._port_free)
        complete = start + slots - 1 + (self.latency - 1)
        if self.pipelined:
            self._port_free = start + slots
        else:
            self._port_free = complete + 1
        issue = Issue(start=start, slots=slots, complete=complete, next_ready=complete + 1)
        self.stats.observe(issue, kind, int(np.asarray(addresses).size))
        return issue

    # ------------------------------------------------------------------
    def issue_batch(
        self,
        ready: np.ndarray,
        slots: np.ndarray,
        *,
        num_reads: int,
        num_requests: int,
    ) -> np.ndarray:
        """Dispatch a sorted batch of warp transactions in one call.

        ``ready[i]`` / ``slots[i]`` describe transaction ``i``; the batch
        must already be in dispatch order (nondecreasing ready — the
        batch engine's responsibility) and contain no empty transactions.
        Returns the ``next_ready`` vector.  Equivalent to calling
        :meth:`issue` once per transaction, but the port recurrence

            pf[i] = max(ready[i], pf[i-1]) + eff[i]

        (``eff = slots`` pipelined, ``slots + l - 1`` otherwise) is
        evaluated with one cumulative-sum + running-max scan:

            pf[i] = cumsum(eff)[i] + max(pf0, max_{k<=i}(ready[k] - exclusive_cumsum(eff)[k]))

        For a barrier-aligned round (all ``ready`` equal) this reduces to
        the paper's pipeline formula ``s_1 + ... + s_k + l - 1`` time
        units past the common ready time.
        """
        if ready.size == 0:
            return ready
        eff = slots if self.pipelined else slots + (self.latency - 1)
        csum = np.cumsum(eff)
        offset = np.maximum.accumulate(ready - (csum - eff))
        port_free = np.maximum(offset, self._port_free) + csum
        start = port_free - eff
        complete = start + slots + (self.latency - 2)
        self._port_free = int(port_free[-1])
        st = self.stats
        st.transactions += int(ready.size)
        st.reads += num_reads
        st.writes += int(ready.size) - num_reads
        st.requests += num_requests
        st.slots += int(slots.sum())
        st.conflicted_transactions += int((slots > 1).sum())
        st.excess_slots += int((slots - 1).sum())
        st.port_busy_until = max(st.port_busy_until, int((start + slots).max()))
        st.last_complete = max(st.last_complete, int(complete.max()))
        return complete + 1

    # ------------------------------------------------------------------
    def issue_one(self, ready: int, slots: int, *, is_read: bool, requests: int) -> int:
        """Scalar twin of :meth:`issue_batch` for single-transaction batches.

        Same timing and statistics as a one-element :meth:`issue_batch`
        call, without the numpy overhead (the batch engine's common case
        on per-DMM shared memories, which serve only a couple of warps).
        """
        eff = slots if self.pipelined else slots + (self.latency - 1)
        start = ready if ready > self._port_free else self._port_free
        self._port_free = start + eff
        complete = start + slots + (self.latency - 2)
        st = self.stats
        st.transactions += 1
        if is_read:
            st.reads += 1
        else:
            st.writes += 1
        st.requests += requests
        st.slots += slots
        if slots > 1:
            st.conflicted_transactions += 1
            st.excess_slots += slots - 1
        busy = start + slots
        if busy > st.port_busy_until:
            st.port_busy_until = busy
        if complete > st.last_complete:
            st.last_complete = complete
        return complete + 1

    # ------------------------------------------------------------------
    @property
    def port_free(self) -> int:
        """First time unit at which the issue port is free."""
        return self._port_free

    def reset(self) -> None:
        """Clear timing state and statistics (new kernel launch)."""
        self._port_free = 0
        self.stats = UnitStats()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"PipelinedMemoryUnit({self.name!r}, w={self.width}, "
            f"l={self.latency}, policy={self.policy.name})"
        )
