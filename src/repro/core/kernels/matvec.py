"""Dense matrix-vector multiplication on the memory machines (extension).

``y = A @ x`` for a row-major ``m x n`` matrix is the canonical
bandwidth-bound GPU kernel: every element of ``A`` is touched once, so
the floor is ``mn/w`` on a flat machine with no reuse to exploit —
*except* for ``x``, which every row reads in full.  The two versions:

* :func:`flat_matvec` — one thread per row would read ``A`` column-wise
  (stride ``n``: uncoalesced!), so instead each row is processed by a
  *warp-sized thread group* sweeping the row contiguously and
  tree-reducing the partials — the standard CUDA formulation.  Cost
  ``O(mn/w + mnl/p + l·(n/w + log w))``.
* :func:`hmm_matvec` — rows are chunked over the DMMs and ``x`` is
  staged once per DMM into shared memory (``O(dn)`` extra global
  traffic instead of ``O(mn)`` repeated reads), with the row reductions
  at latency 1.

The benchmark shows the staging win growing with latency, mirroring the
convolution's Theorem 9 structure.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError
from repro.machine.engine import MachineEngine
from repro.machine.hmm import HMMEngine, split_threads
from repro.machine.memory import ArrayHandle
from repro.machine.ops import BarrierScope
from repro.machine.report import RunReport
from repro.machine.trace import TraceRecorder
from repro.machine.warp import WarpContext
from repro.core.kernels.contiguous import copy_range_steps

__all__ = ["matvec_steps", "flat_matvec", "hmm_matvec"]


def matvec_steps(
    warp: WarpContext,
    a: ArrayHandle,
    x: ArrayHandle,
    y: ArrayHandle,
    m: int,
    n: int,
    *,
    row_offset: int = 0,
    rows: int | None = None,
    scope: BarrierScope = BarrierScope.DEVICE,
    num_threads: int | None = None,
    tids: np.ndarray | None = None,
    scratch: ArrayHandle | None = None,
):
    """Sub-generator: ``y[r] = A[r] . x`` for rows ``[row_offset,
    row_offset + rows)``.

    One warp-sized group per row sweep: lane ``j`` of the group
    accumulates ``A[r][j::w] * x[j::w]`` in a register (both reads
    contiguous), then the ``w`` partials tree-reduce through ``scratch``
    (``w`` cells per concurrent group; sized ``num_threads`` is always
    enough).  ``a`` is the full ``m x n`` matrix; ``x`` and ``y`` may
    live in shared memory for the HMM version.
    """
    p = num_threads if num_threads is not None else warp.num_threads
    lane_tids = tids if tids is not None else warp.tids
    w = warp.width
    if scratch is None:
        raise ConfigurationError("matvec_steps requires a scratch array")
    count = rows if rows is not None else m
    groups = max(p // w, 1)  # concurrent row groups
    group = lane_tids // w  # this lane's group id
    lane = lane_tids % w

    rounds = -(-count // groups)
    for rd in range(rounds):
        r = rd * groups + group
        mask = r < count
        r_safe = np.where(mask, r, 0)
        acc = np.zeros(warp.num_lanes, dtype=np.float64)
        for col0 in range(0, n, w):
            col = col0 + lane
            cmask = mask & (col < n)
            av = yield warp.read(
                a, np.where(cmask, (row_offset + r_safe) * n + col, 0),
                mask=cmask,
            )
            xv = yield warp.read(x, np.where(cmask, col, 0), mask=cmask)
            yield warp.compute(1)
            acc += av * xv
        # Tree-reduce the w lane partials of each group via scratch.
        yield warp.write(scratch, lane_tids, acc)
        yield warp.barrier(scope)
        half = w // 2
        while half >= 1:
            active = mask & (lane < half)
            lo = yield warp.read(scratch, np.where(active, lane_tids, 0),
                                 mask=active)
            hi = yield warp.read(
                scratch, np.where(active, lane_tids + half, 0), mask=active
            )
            yield warp.compute(1)
            yield warp.write(scratch, np.where(active, lane_tids, 0),
                             lo + hi, mask=active)
            yield warp.barrier(scope)
            half //= 2
        emit = mask & (lane == 0)
        if emit.any():
            total = yield warp.read(scratch, np.where(emit, lane_tids, 0),
                                    mask=emit)
            yield warp.write(y, np.where(emit, r_safe, 0), total, mask=emit)


def flat_matvec(
    engine: MachineEngine,
    matrix: np.ndarray,
    vector: np.ndarray,
    num_threads: int,
    *,
    trace: TraceRecorder | None = None,
) -> tuple[np.ndarray, RunReport]:
    """``y = A @ x`` on a flat machine; returns ``(y, report)``."""
    av, xv, m, n = _check(matrix, vector)
    w = engine.params.width
    if num_threads % w or num_threads < w:
        raise ConfigurationError(
            f"matvec requires full warp groups: num_threads ({num_threads}) "
            f"must be a positive multiple of the width ({w})"
        )
    a = engine.array_from(av.ravel(), "mv.A")
    x = engine.array_from(xv, "mv.x")
    y = engine.alloc(m, "mv.y")
    scratch = engine.alloc(max(num_threads, engine.params.width), "mv.scratch")
    report = engine.launch(
        _flat_kernel(a, x, y, m, n, scratch),
        num_threads,
        trace=trace,
        label="flat-matvec",
    )
    return y.to_numpy(), report


def _flat_kernel(a, x, y, m, n, scratch):
    def program(warp: WarpContext):
        yield from matvec_steps(warp, a, x, y, m, n, scratch=scratch)

    return program


def hmm_matvec(
    engine: HMMEngine,
    matrix: np.ndarray,
    vector: np.ndarray,
    num_threads: int,
    *,
    trace: TraceRecorder | None = None,
) -> tuple[np.ndarray, RunReport]:
    """``y = A @ x`` on the HMM: rows chunked over DMMs, ``x`` staged
    into each shared memory, reductions at latency 1."""
    av, xv, m, n = _check(matrix, vector)
    d = engine.params.num_dmms
    w = engine.params.width
    shares = split_threads(num_threads, d)
    if any(s % w for s in shares):
        raise ConfigurationError(
            f"matvec requires full warp groups on every DMM: num_threads "
            f"({num_threads}) must be a multiple of d*w = {d * w}"
        )
    active = sum(1 for s in shares if s > 0)
    chunk = -(-m // active)

    a = engine.global_from(av.ravel(), "mv.A")
    gx = engine.global_from(xv, "mv.x")
    gy = engine.alloc_global(m, "mv.y")
    sx, sy, scratch = [], [], []
    for i in range(d):
        lo = min(i * chunk, m) if i < active else m
        hi = min(lo + chunk, m)
        rows = max(hi - lo, 1)
        sx.append(engine.alloc_shared(i, n, "mv.sx"))
        sy.append(engine.alloc_shared(i, rows, "mv.sy"))
        scratch.append(
            engine.alloc_shared(i, max(shares[i], engine.params.width), "mv.sc")
        )

    def program(warp: WarpContext):
        i = warp.dmm_id
        q = warp.threads_in_dmm
        local = warp.local_tids
        lo = min(i * chunk, m)
        hi = min(lo + chunk, m)
        rows = hi - lo
        if rows <= 0:
            return
        yield from copy_range_steps(
            warp, gx, 0, sx[i], 0, n, num_threads=q, tids=local
        )
        yield warp.sync_dmm()
        yield from matvec_steps(
            warp, a, sx[i], sy[i], m, n,
            row_offset=lo, rows=rows,
            scope=BarrierScope.DMM,
            num_threads=q, tids=local,
            scratch=scratch[i],
        )
        yield warp.sync_dmm()
        yield from copy_range_steps(
            warp, sy[i], 0, gy, lo, rows, num_threads=q, tids=local
        )

    report = engine.launch(program, num_threads, trace=trace, label="hmm-matvec")
    return gy.to_numpy(), report


def _check(matrix, vector) -> tuple[np.ndarray, np.ndarray, int, int]:
    av = np.asarray(matrix, dtype=np.float64)
    xv = np.asarray(vector, dtype=np.float64).ravel()
    if av.ndim != 2:
        raise ConfigurationError(f"matrix must be 2-D, got shape {av.shape}")
    m, n = av.shape
    if m < 1 or n < 1:
        raise ConfigurationError(f"matrix must be non-empty, got {av.shape}")
    if xv.size != n:
        raise ConfigurationError(
            f"vector length {xv.size} does not match matrix columns {n}"
        )
    return av, xv, m, n
