"""Conflict-free *oblivious* sorting, merging and permutation kernels.

The naive kernels in :mod:`~repro.core.kernels.sorting`,
:mod:`~repro.core.kernels.merge` and
:mod:`~repro.core.kernels.permutation` are registered in
:data:`~repro.machine.replay.NON_OBLIVIOUS_MODULES` and always refuse
trace replay, so every sweep point re-runs the full event scheduler.
This module implements the input-independent constructions from the
bank-conflict-free line of work — Sitchinava & Weichert, *Bank Conflict
Free Comparison-based Sorting On GPUs*, and Afshani & Sitchinava,
*Sorting and Permuting without Bank Conflicts on GPUs* (both in
PAPERS.md) — whose access streams depend only on the launch shape.
That buys three things at once:

1. **No avoidable bank conflicts.**  Every warp transaction touches
   pairwise-distinct banks (DMM) or a minimal number of address groups
   (UMM): ``slots == ceil(#addresses / w)`` for every transaction, the
   information-theoretic floor.  The trace-level checker in
   :mod:`repro.analysis.certify` verifies this machine-checked.
2. **Replay eligibility.**  Because the addresses never depend on the
   stored values, the compiled trace of one instrumented run re-prices
   any latency/policy — the module is deliberately *not* listed in the
   replay refusal registry (a test pins this).
3. **Tuner certificates.**  A conflict-free run is a
   ``certificate: "conflict-free"`` early exit for the autotuner.

How the sorting network avoids conflicts
----------------------------------------

Batcher's bitonic network compares pairs ``(i, i | j)`` at stride
``j``.  For ``j >= w`` the lane-per-pair schedule already issues
contiguous transactions (degree-1); the conflicts live in the ``log w``
sub-warp stages, where natural strided addressing is 2-way conflicted.
Following Sitchinava-Weichert, the sub-warp stages reorganize the
*access layout* instead of the network: each warp loads a contiguous
block of ``2w`` elements (two degree-1 transactions), performs the
compare-exchange shuffles in registers — lane-local numpy here, warp
shuffles on real hardware — and stores the block back contiguously.
Unfused, this issues *exactly* the same number of transactions and
requests as the strided schedule, just conflict-free; fused
(``fused=True``), one load/store pass covers every remaining sub-warp
stage of the phase, the same burst structure the paper uses for its
``O(n log n / w)`` shared-memory term.

The merge is the bitonic merger applied to the bitonic sequence
``[a ascending, +inf padding, b reversed]`` — an oblivious
``O((n/w + nl/p + l) log n)`` merge, conflict-free by the same layout.

The permutation generalizes :func:`~repro.core.kernels.permutation
.conflict_free_permutation_schedule`'s König/Hall round decomposition
to **arbitrary sizes and DMM/HMM widths**: when ``w`` does not divide
``n`` the bipartite (source bank -> destination bank) multigraph is
completed to ``ceil(n/w)``-regular with virtual fixed points, which the
kernel masks off lane-wise.  Because the permutation is *offline* —
``pi`` and its schedule are part of the launch closure, hashed into the
LaunchKey — the kernel is replay-eligible even though its addresses
depend on ``pi``.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError
from repro.machine.engine import MachineEngine
from repro.machine.hmm import HMMEngine, split_threads
from repro.machine.memory import ArrayHandle
from repro.machine.report import RunReport
from repro.machine.trace import TraceRecorder
from repro.machine.warp import WarpContext
from repro.params import next_power_of_two
from repro.core.kernels.contiguous import copy_range_steps
from repro.core.kernels.sorting import compare_exchange_steps

__all__ = [
    "cf_bitonic_sort_kernel",
    "cf_bitonic_merge_kernel",
    "oblivious_permutation_kernel",
    "generalized_permutation_schedule",
    "generalized_naive_schedule",
    "flat_cf_sort",
    "hmm_cf_sort",
    "flat_cf_merge",
    "flat_cf_permutation",
    "hmm_cf_permutation",
]


def _require_power_of_two_width(width: int) -> None:
    if width < 1 or width & (width - 1):
        raise ConfigurationError(
            "conflict-free kernels require a power-of-two machine width "
            f"(the strided stages rely on w | j), got w={width}"
        )


# ---------------------------------------------------------------------------
# Block machinery: contiguous gather / in-register shuffle / scatter.
# ---------------------------------------------------------------------------


def _gather_block(warp: WarpContext, arr: ArrayHandle, base: int, size: int):
    """Read ``arr[base : base + size)`` in contiguous lane-rounds.

    Every transaction covers consecutive addresses, so it is degree-1 on
    the DMM for any lane count ``<= w``.  Returns the block as one
    vector (the warp's "registers").
    """
    lanes = warp.num_lanes
    parts = []
    r = 0
    while r * lanes < size:
        take = min(lanes, size - r * lanes)
        idx = r * lanes + warp.lanes
        if take == lanes:
            vals = yield warp.read(arr, base + idx)
            parts.append(vals)
        else:
            mask = idx < size
            vals = yield warp.read(arr, base + np.where(mask, idx, 0),
                                   mask=mask)
            parts.append(vals[:take])
        r += 1
    return parts[0] if len(parts) == 1 else np.concatenate(parts)


def _scatter_block(warp: WarpContext, arr: ArrayHandle, base: int,
                   values: np.ndarray):
    """Write ``values`` back to ``arr[base : base + len(values))``
    contiguously (the inverse of :func:`_gather_block`)."""
    lanes = warp.num_lanes
    size = values.size
    r = 0
    while r * lanes < size:
        take = min(lanes, size - r * lanes)
        idx = r * lanes + warp.lanes
        if take == lanes:
            yield warp.write(arr, base + idx, values[idx])
        else:
            mask = idx < size
            safe = np.where(mask, idx, 0)
            yield warp.write(arr, base + safe, values[safe], mask=mask)
        r += 1


def _pair_indices(size: int, j: int) -> tuple[np.ndarray, np.ndarray]:
    """Local (lo, hi) indices of the stride-``j`` pairs within a block."""
    q = np.arange(size // 2, dtype=np.int64)
    lo = ((q & ~(j - 1)) << 1) | (q & (j - 1))
    return lo, lo | j


def _cf_block_stages(
    warp: WarpContext,
    arr: ArrayHandle,
    offset: int,
    count: int,
    j_top: int,
    j_stop: int,
    k: int,
    block: int,
    worker: int,
    num_workers: int,
    *,
    global_base: int = 0,
):
    """Stages ``j_top, j_top/2, .., j_stop`` of phase ``k``, block-wise.

    Requires ``2 * j_top <= block`` so every pair is block-internal;
    blocks are then independent at each sub-stage, which is what makes
    fusing them into one gather/shuffle/scatter pass legal.
    """
    nblocks = count // block
    for b in range(worker, nblocks, num_workers):
        base = offset + b * block
        x = yield from _gather_block(warp, arr, base, block)
        x = np.array(x, dtype=np.float64, copy=True)
        j = j_top
        while j >= j_stop:
            lo, hi = _pair_indices(block, j)
            gi = global_base + b * block + lo
            ascending = (gi & k) == 0
            lo_v, hi_v = x[lo], x[hi]
            small = np.minimum(lo_v, hi_v)
            big = np.maximum(lo_v, hi_v)
            x[lo] = np.where(ascending, small, big)
            x[hi] = np.where(ascending, big, small)
            yield warp.compute(1)
            j //= 2
        yield from _scatter_block(warp, arr, base, x)


def _merge_phase_steps(
    warp: WarpContext,
    arr: ArrayHandle,
    offset: int,
    count: int,
    k: int,
    j_start: int,
    *,
    fused: bool,
    global_base: int = 0,
    worker: int | None = None,
    num_workers: int | None = None,
    num_threads: int | None = None,
    tids: np.ndarray | None = None,
):
    """The stride chain ``j_start, j_start/2, .., 1`` of phase ``k``.

    Strides ``j >= w`` use the lane-per-pair schedule (contiguous,
    degree-1 for power-of-two ``w``); strides ``j < w`` switch to the
    conflict-avoiding block layout.  ``fused=True`` collapses every
    remaining sub-warp stage into one block pass.
    """
    width = warp.width
    block = min(2 * width, count)
    if worker is None:
        worker = warp.warp_id
    if num_workers is None:
        num_workers = -(-warp.num_threads // width)
    j = j_start
    while j >= 1:
        if 2 * j <= block and (fused or j < width):
            j_stop = 1 if fused else j
            yield from _cf_block_stages(
                warp, arr, offset, count, j, j_stop, k, block,
                worker, num_workers, global_base=global_base,
            )
            yield warp.barrier()
            if fused:
                return
            j //= 2
            continue
        yield from compare_exchange_steps(
            warp, arr, offset, count, j, k, global_base=global_base,
            num_threads=num_threads, tids=tids,
        )
        yield warp.barrier()
        j //= 2


# ---------------------------------------------------------------------------
# Sorting: the conflict-free bitonic network.
# ---------------------------------------------------------------------------


def cf_bitonic_sort_kernel(a: ArrayHandle, n: int, *, fused: bool = True):
    """Kernel: in-place ascending conflict-free bitonic sort of ``a[0..n)``.

    ``n`` must be a power of two (the launch helpers pad).  ``fused``
    collapses all remaining sub-warp stages of a phase into one
    load/shuffle/store burst per block (fewer transactions); unfused,
    the network issues exactly as many transactions as the naive strided
    schedule — just conflict-free.
    """
    if n < 1 or n & (n - 1):
        raise ConfigurationError(
            f"bitonic sort requires a power-of-two size, got {n}")

    def program(warp: WarpContext):
        _require_power_of_two_width(warp.width)
        k = 2
        while k <= n:
            yield from _merge_phase_steps(
                warp, a, 0, n, k, k // 2, fused=fused)
            k *= 2

    return program


def flat_cf_sort(
    engine: MachineEngine,
    values: np.ndarray,
    num_threads: int,
    *,
    fused: bool = True,
    trace: TraceRecorder | None = None,
) -> tuple[np.ndarray, RunReport]:
    """Sort ``values`` ascending, conflict-free, on a flat machine."""
    _require_power_of_two_width(engine.params.width)
    vals = np.asarray(values, dtype=np.float64).ravel()
    if vals.size < 1:
        raise ConfigurationError("cannot sort an empty array")
    n = next_power_of_two(vals.size)
    a = engine.alloc(n, "cfsort.a")
    a.set(np.concatenate([vals, np.full(n - vals.size, np.inf)]))
    report = engine.launch(
        cf_bitonic_sort_kernel(a, n, fused=fused), num_threads,
        trace=trace, label="cf-sort",
    )
    return a.to_numpy()[: vals.size], report


def hmm_cf_sort(
    engine: HMMEngine,
    values: np.ndarray,
    num_threads: int,
    *,
    fused: bool = True,
    trace: TraceRecorder | None = None,
) -> tuple[np.ndarray, RunReport]:
    """Conflict-free bitonic sort on the HMM.

    The structure of :func:`~repro.core.kernels.sorting.hmm_bitonic_sort`
    — chunk-local stages burst through the latency-1 shared memories,
    only the ``O(log^2 d)`` cross-chunk stages touch the global port —
    with the shared-memory stages running the Sitchinava-Weichert
    conflict-avoiding block layout instead of the strided schedule.
    """
    _require_power_of_two_width(engine.params.width)
    vals = np.asarray(values, dtype=np.float64).ravel()
    if vals.size < 1:
        raise ConfigurationError("cannot sort an empty array")
    n = next_power_of_two(vals.size)
    d = engine.params.num_dmms
    shares = split_threads(num_threads, d)
    avail = sum(1 for s in shares if s > 0)
    active = 1
    while active * 2 <= min(avail, n // 2 if n >= 2 else 1):
        active *= 2
    chunk = n // active

    a = engine.alloc_global(n, "cfsort.a")
    a.set(np.concatenate([vals, np.full(n - vals.size, np.inf)]))
    stage = [
        engine.alloc_shared(i, chunk if i < active else 1, "cfsort.stage")
        for i in range(d)
    ]
    shares = [0] * d
    for i, s in enumerate(split_threads(num_threads, active)):
        shares[i] = s

    def program(warp: WarpContext):
        i = warp.dmm_id
        q = warp.threads_in_dmm
        local = warp.local_tids
        base = i * chunk
        width = warp.width
        warps_in_dmm = -(-q // width)

        def shared_burst(k_now: int, j_top: int):
            yield from copy_range_steps(
                warp, a, base, stage[i], 0, chunk, num_threads=q, tids=local
            )
            yield warp.sync_dmm()
            j = j_top
            while j >= 1:
                block = min(2 * width, chunk)
                if 2 * j <= block and (fused or j < width):
                    j_stop = 1 if fused else j
                    yield from _cf_block_stages(
                        warp, stage[i], 0, chunk, j, j_stop, k_now, block,
                        warp.warp_in_dmm, warps_in_dmm, global_base=base,
                    )
                    yield warp.sync_dmm()
                    if fused:
                        break
                else:
                    yield from compare_exchange_steps(
                        warp, stage[i], 0, chunk, j, k_now,
                        global_base=base, num_threads=q, tids=local,
                    )
                    yield warp.sync_dmm()
                j //= 2
            yield from copy_range_steps(
                warp, stage[i], 0, a, base, chunk, num_threads=q, tids=local
            )

        k = 2
        while k <= n:
            j = k // 2
            while j >= 1:
                if j < chunk:
                    yield from shared_burst(k, j)
                    yield warp.barrier()
                    break
                yield from compare_exchange_steps(
                    warp, a, 0, n, j, k,
                    num_threads=warp.num_threads, tids=warp.tids,
                )
                yield warp.barrier()
                j //= 2
            k *= 2

    report = engine.launch(
        program, num_threads, threads_per_dmm=shares, trace=trace,
        label="hmm-cf-sort",
    )
    return a.to_numpy()[: vals.size], report


# ---------------------------------------------------------------------------
# Merging: the oblivious bitonic merger.
# ---------------------------------------------------------------------------


def cf_bitonic_merge_kernel(buf: ArrayHandle, m: int, *, fused: bool = True):
    """Kernel: sort the bitonic sequence ``buf[0..m)`` ascending.

    One phase of the bitonic network (``j = m/2 .. 1``, all comparators
    ascending) — the classic oblivious merger.  ``m`` must be a power of
    two; the launch helper stages ``[a, +inf pad, reversed(b)]`` which
    is bitonic whenever ``a`` and ``b`` are sorted.
    """
    if m < 1 or m & (m - 1):
        raise ConfigurationError(
            f"bitonic merge requires a power-of-two size, got {m}")

    def program(warp: WarpContext):
        _require_power_of_two_width(warp.width)
        # k = 2m keeps every comparator ascending: (gi & 2m) == 0 always.
        yield from _merge_phase_steps(
            warp, buf, 0, m, 2 * m, m // 2, fused=fused)

    return program


def flat_cf_merge(
    engine: MachineEngine,
    a_values: np.ndarray,
    b_values: np.ndarray,
    num_threads: int,
    *,
    fused: bool = True,
    trace: TraceRecorder | None = None,
) -> tuple[np.ndarray, RunReport]:
    """Merge two sorted arrays obliviously and conflict-free.

    Unlike :func:`~repro.core.kernels.merge.flat_merge` (merge-path:
    data-dependent diagonal searches, replay-refused), the bitonic
    merger's addresses depend only on the sizes — the trade is
    ``O(n log n)`` comparator work for replay eligibility and zero
    conflicts.
    """
    _require_power_of_two_width(engine.params.width)
    av = np.asarray(a_values, dtype=np.float64).ravel()
    bv = np.asarray(b_values, dtype=np.float64).ravel()
    if av.size + bv.size < 1:
        raise ConfigurationError("merge requires at least one element")
    if av.size > 1 and (np.diff(av) < 0).any():
        raise ConfigurationError("first input is not sorted")
    if bv.size > 1 and (np.diff(bv) < 0).any():
        raise ConfigurationError("second input is not sorted")
    n = av.size + bv.size
    m = next_power_of_two(n)
    # [ascending, +inf plateau, descending] is bitonic.
    staged = np.concatenate([av, np.full(m - n, np.inf), bv[::-1]])
    buf = engine.alloc(m, "cfmerge.buf")
    buf.set(staged)
    report = engine.launch(
        cf_bitonic_merge_kernel(buf, m, fused=fused), num_threads,
        trace=trace, label="cf-merge",
    )
    return buf.to_numpy()[:n], report


# ---------------------------------------------------------------------------
# Permutation: generalized offline round decomposition, any n, any width.
# ---------------------------------------------------------------------------


def _check_permutation(perm: np.ndarray) -> np.ndarray:
    perm = np.asarray(perm, dtype=np.int64).ravel()
    n = perm.size
    if n < 1:
        raise ConfigurationError("permutation must be non-empty")
    if perm.min() < 0 or perm.max() >= n:
        raise ConfigurationError("permutation values out of range")
    seen = np.zeros(n, dtype=bool)
    seen[perm] = True
    if not seen.all():
        raise ConfigurationError(
            "input is not a permutation (duplicate values)")
    return perm


def generalized_naive_schedule(n: int, width: int) -> np.ndarray:
    """In-order schedule for any ``n``: element ``i`` moves in round
    ``i // w``; the short final round idles the trailing lanes (entries
    ``>= n`` are virtual and masked off by the kernel)."""
    if n < 1 or width < 1:
        raise ConfigurationError("n and width must be >= 1")
    rounds = -(-n // width)
    return np.arange(rounds * width, dtype=np.int64).reshape(rounds, width)


def generalized_permutation_schedule(perm: np.ndarray,
                                     width: int) -> np.ndarray:
    """Conflict-free round decomposition for **any** ``n`` and ``width``.

    Extends :func:`~repro.core.kernels.permutation
    .conflict_free_permutation_schedule` past the ``w | n`` restriction:
    the (source bank -> destination bank) multigraph is completed to
    ``ceil(n/w)``-regular with virtual fixed points ``perm'(i) = i`` for
    ``i in [n, ceil(n/w)*w)``, König-decomposed into perfect matchings,
    and the virtual entries (``schedule >= n``) are masked off lane-wise
    by the kernel.  Every round's live lanes still have pairwise
    distinct source banks *and* destination banks.
    """
    if width < 1:
        raise ConfigurationError(f"width must be >= 1, got {width}")
    perm = _check_permutation(perm)
    n = perm.size
    rounds = -(-n // width)
    n_pad = rounds * width
    # Virtual elements are fixed points; they pad every (s, t) degree to
    # exactly `rounds` per bank on both sides.
    dest = np.concatenate([perm, np.arange(n, n_pad, dtype=np.int64)])

    buckets: dict[tuple[int, int], list[int]] = {}
    for i in range(n_pad):
        key = (int(i % width), int(dest[i] % width))
        buckets.setdefault(key, []).append(i)
    mult = np.zeros((width, width), dtype=np.int64)
    for (s, t), items in buckets.items():
        mult[s, t] = len(items)

    schedule = np.empty((rounds, width), dtype=np.int64)
    for r in range(rounds):
        matching = _perfect_matching(mult, width)
        for s, t in enumerate(matching):
            schedule[r, s] = buckets[(s, t)].pop()
            mult[s, t] -= 1
    return schedule


def _perfect_matching(mult: np.ndarray, width: int) -> list[int]:
    """A perfect matching of the regular bipartite multigraph ``mult``
    (Kuhn's augmenting paths; the graphs are at most ``w x w``)."""
    match_t = [-1] * width

    def try_assign(s: int, visited: list[bool]) -> bool:
        for t in range(width):
            if mult[s, t] > 0 and not visited[t]:
                visited[t] = True
                if match_t[t] == -1 or try_assign(match_t[t], visited):
                    match_t[t] = s
                    return True
        return False

    for s in range(width):
        if not try_assign(s, [False] * width):
            raise ConfigurationError(
                "no perfect matching found; the residual graph lost "
                "regularity (schedule construction bug)"
            )
    match_s = [-1] * width
    for t, s in enumerate(match_t):
        match_s[s] = t
    return match_s


def oblivious_permutation_kernel(
    a: ArrayHandle,
    b: ArrayHandle,
    perm: np.ndarray,
    schedule: np.ndarray,
):
    """Kernel: ``b[perm[i]] = a[i]`` following an offline ``schedule``.

    ``schedule`` is a ``(rounds, w)`` source-index array from either
    :func:`generalized_permutation_schedule` or
    :func:`generalized_naive_schedule`; entries ``>= len(perm)`` are
    virtual and mask their lane off.  The permutation and schedule are
    launch-closure data (hashed into the LaunchKey), so the trace is
    input-independent and replay-eligible — the *offline* in "offline
    permutation".
    """
    perm = _check_permutation(perm)
    n = perm.size
    schedule = np.asarray(schedule, dtype=np.int64)
    if schedule.ndim != 2:
        raise ConfigurationError("schedule must be a (rounds, w) array")

    def program(warp: WarpContext):
        if warp.num_lanes != warp.width:
            raise ConfigurationError(
                "oblivious_permutation_kernel requires full warps: launch "
                f"with a multiple of {warp.width} threads"
            )
        if schedule.shape[1] != warp.width:
            raise ConfigurationError(
                f"schedule width {schedule.shape[1]} != machine width "
                f"{warp.width}"
            )
        num_warps = -(-warp.num_threads // warp.width)
        rounds = schedule.shape[0]
        lane = warp.local_tids % warp.width
        for r in range(warp.warp_id, rounds, num_warps):
            src = schedule[r, lane]
            live = src < n
            src_safe = np.where(live, src, 0)
            vals = yield warp.read(a, src_safe, mask=live)
            yield warp.write(b, perm[src_safe], vals, mask=live)

    return program


def flat_cf_permutation(
    engine: MachineEngine,
    values: np.ndarray,
    perm: np.ndarray,
    num_threads: int,
    *,
    schedule: str = "conflict-free",
    trace: TraceRecorder | None = None,
) -> tuple[np.ndarray, RunReport]:
    """Apply ``b[perm[i]] = a[i]`` on a flat machine, any size/width."""
    vals = np.asarray(values, dtype=np.float64).ravel()
    perm = _check_permutation(perm)
    if vals.size != perm.size:
        raise ConfigurationError(
            f"values ({vals.size}) and permutation ({perm.size}) sizes differ")
    w = engine.params.width
    if schedule == "conflict-free":
        sched = generalized_permutation_schedule(perm, w)
    elif schedule == "naive":
        sched = generalized_naive_schedule(perm.size, w)
    else:
        raise ConfigurationError(
            f"schedule must be 'conflict-free' or 'naive', got {schedule!r}")
    a = engine.array_from(vals, "cfperm.a")
    b = engine.alloc(perm.size, "cfperm.b")
    report = engine.launch(
        oblivious_permutation_kernel(a, b, perm, sched), num_threads,
        trace=trace, label="cf-permutation",
    )
    return b.to_numpy(), report


def _hmm_chunk_bounds(n: int, d: int, width: int) -> list[tuple[int, int]]:
    """Contiguous per-DMM chunks, bases aligned to ``w`` so the global
    staging transactions stay single-group; the final chunk may be
    ragged (that is what the generalized schedule builder handles)."""
    per = -(-n // d)
    per = -(-per // width) * width  # round up to a width multiple
    bounds = []
    lo = 0
    for _ in range(d):
        hi = min(lo + per, n)
        bounds.append((lo, hi))
        lo = hi
    return bounds


def hmm_cf_permutation(
    engine: HMMEngine,
    values: np.ndarray,
    perm: np.ndarray,
    num_threads: int,
    *,
    trace: TraceRecorder | None = None,
) -> tuple[np.ndarray, RunReport]:
    """Chunk-local offline permutation on the HMM.

    Each DMM stages its contiguous chunk into shared memory (coalesced,
    width-aligned bases), applies its slice of the permutation with a
    conflict-free generalized schedule — chunk sizes need *not* be
    multiples of the width — and writes back coalesced.  Requires the
    permutation to be chunk-local (``perm`` maps every chunk into
    itself); arbitrary global routing would need scattered global
    transactions the UMM prices as uncoalesced.
    """
    _require_power_of_two_width(engine.params.width)
    vals = np.asarray(values, dtype=np.float64).ravel()
    perm = _check_permutation(perm)
    if vals.size != perm.size:
        raise ConfigurationError(
            f"values ({vals.size}) and permutation ({perm.size}) sizes differ")
    n = perm.size
    d = engine.params.num_dmms
    w = engine.params.width
    bounds = _hmm_chunk_bounds(n, d, w)
    for lo, hi in bounds:
        if hi > lo:
            seg = perm[lo:hi]
            if seg.min() < lo or seg.max() >= hi:
                raise ConfigurationError(
                    "hmm_cf_permutation requires a chunk-local permutation: "
                    f"chunk [{lo}, {hi}) maps outside itself"
                )
    shares = split_threads(num_threads, d)
    for s, (lo, hi) in zip(shares, bounds):
        if s % w or (hi > lo and s == 0):
            raise ConfigurationError(
                "hmm_cf_permutation requires full warps per DMM: launch "
                f"with a multiple of {d * w} threads"
            )
    schedules = []
    for lo, hi in bounds:
        if hi > lo:
            schedules.append(
                generalized_permutation_schedule(perm[lo:hi] - lo, w))
        else:
            schedules.append(np.empty((0, w), dtype=np.int64))

    a = engine.global_from(vals, "cfperm.a")
    b = engine.alloc_global(n, "cfperm.b")
    s_in = [engine.alloc_shared(i, max(hi - lo, 1), "cfperm.in")
            for i, (lo, hi) in enumerate(bounds)]
    s_out = [engine.alloc_shared(i, max(hi - lo, 1), "cfperm.out")
             for i, (lo, hi) in enumerate(bounds)]

    def program(warp: WarpContext):
        i = warp.dmm_id
        lo, hi = bounds[i]
        size = hi - lo
        if size <= 0:
            return
        q = warp.threads_in_dmm
        local = warp.local_tids
        yield from copy_range_steps(
            warp, a, lo, s_in[i], 0, size, num_threads=q, tids=local)
        yield warp.sync_dmm()
        sched = schedules[i]
        local_perm = perm[lo:hi] - lo
        warps_in_dmm = q // warp.width
        lane = local % warp.width
        for r in range(warp.warp_in_dmm, sched.shape[0], warps_in_dmm):
            src = sched[r, lane]
            live = src < size
            src_safe = np.where(live, src, 0)
            v = yield warp.read(s_in[i], src_safe, mask=live)
            yield warp.write(s_out[i], local_perm[src_safe], v, mask=live)
        yield warp.sync_dmm()
        yield from copy_range_steps(
            warp, s_out[i], 0, b, lo, size, num_threads=q, tids=local)

    report = engine.launch(
        program, num_threads, threads_per_dmm=shares, trace=trace,
        label="hmm-cf-permutation",
    )
    return b.to_numpy(), report
