"""Approximate string matching on the memory machine models
(extension; paper ref [18]).

Nakano's companion paper ("Efficient implementations of the approximate
string matching on the memory machine models", ICNC 2012) runs the
Sellers dynamic program on the DMM/UMM: given a pattern ``P`` of length
``m`` and a text ``T`` of length ``n``, compute for every text position
``j`` the minimum edit distance ``D[m][j]`` of ``P`` to *some substring
of T ending at j*:

    D[0][j] = 0;  D[i][0..] per the recurrence
    D[i][j] = min(D[i-1][j] + 1,            # delete P[i]
                  D[i][j-1] + 1,            # insert T[j]
                  D[i-1][j-1] + (P[i] != T[j]))

The parallel structure is anti-diagonal: cells ``(i, j)`` with
``i + j = t`` depend only on diagonals ``t-1`` and ``t-2``.  Keeping
each diagonal in a *contiguous* array makes every warp transaction
coalesced / conflict-free (offset-by-one neighbours cost at most one
extra address group), so a diagonal of length ``<= m`` costs
``O(m/w + ml/p' + l)`` and the whole DP
``O(nm/w + nml/p + (n+m)·l)`` on a flat machine — the per-diagonal
latency is the pain point the HMM removes:

:func:`hmm_approximate_match` chunks the text over the ``d`` DMMs with
``2m`` columns of overlap (an alignment of the length-``m`` pattern with
edit cost ``<= m`` spans at most ``2m`` text columns, so ``2m`` columns
of warm-up recompute the exact boundary values), stages pattern and
chunk into shared memory, and runs all diagonals at latency 1:
``O(nm/(dw) + nm/p + n/w + nl/p + l + m)``.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError
from repro.machine.engine import MachineEngine
from repro.machine.hmm import HMMEngine, split_threads
from repro.machine.memory import ArrayHandle
from repro.machine.ops import BarrierScope
from repro.machine.report import RunReport
from repro.machine.trace import TraceRecorder
from repro.machine.warp import WarpContext
from repro.core.kernels.contiguous import copy_range_steps

__all__ = [
    "find_matches",
    "reference_approximate_match",
    "approximate_match_steps",
    "approximate_match_kernel",
    "flat_approximate_match",
    "hmm_approximate_match",
]


def reference_approximate_match(pattern: np.ndarray, text: np.ndarray) -> np.ndarray:
    """Host-side Sellers DP: ``out[j] = D[m][j]`` (numpy, row by row)."""
    pattern = np.asarray(pattern)
    text = np.asarray(text)
    m, n = pattern.size, text.size
    if m < 1 or n < 1:
        raise ConfigurationError("pattern and text must be non-empty")
    prev = np.zeros(n + 1, dtype=np.float64)  # D[0][*] = 0
    for i in range(1, m + 1):
        cur = np.empty(n + 1, dtype=np.float64)
        cur[0] = i
        sub = prev[:-1] + (pattern[i - 1] != text)
        dele = prev[1:] + 1
        # Insertion chains force a sequential min-scan along j.
        best = np.minimum(sub, dele)
        for j in range(1, n + 1):
            cur[j] = min(best[j - 1], cur[j - 1] + 1)
        prev = cur
    return prev[1:]


def approximate_match_steps(
    warp: WarpContext,
    pattern: ArrayHandle,
    text: ArrayHandle,
    out: ArrayHandle,
    m: int,
    n: int,
    diag: list[ArrayHandle],
    *,
    out_offset: int = 0,
    skip_columns: int = 0,
    num_threads: int | None = None,
    tids: np.ndarray | None = None,
    scope: BarrierScope = BarrierScope.DEVICE,
):
    """Sub-generator: the anti-diagonal Sellers DP.

    ``diag`` is three scratch arrays of ``m + 1`` cells (rotating
    diagonals).  Writes ``D[m][j]`` to ``out[out_offset + j -
    skip_columns]`` for ``j >= skip_columns`` (the warm-up columns of a
    chunk are recomputed but not emitted).
    """
    p = num_threads if num_threads is not None else warp.num_threads
    lane_tids = tids if tids is not None else warp.tids
    prev2, prev, cur = diag

    for t in range(0, n + m + 1):
        i_lo = max(0, t - n)
        i_hi = min(m, t)  # inclusive
        count = i_hi - i_lo + 1
        rounds = -(-count // p)
        for r in range(rounds):
            i = i_lo + r * p + lane_tids
            mask = i <= i_hi
            i_safe = np.where(mask, i, 0)
            j = t - i_safe  # column of each cell

            base_mask = mask & (i_safe == 0)  # D[0][j] = 0
            col_mask = mask & (j == 0) & (i_safe > 0)  # D[i][0] = i
            mid_mask = mask & (i_safe > 0) & (j > 0)

            value = np.zeros(warp.num_lanes, dtype=np.float64)
            value[col_mask] = i_safe[col_mask]

            if mid_mask.any():
                up = yield warp.read(prev, i_safe - 1, mask=mid_mask)
                left = yield warp.read(prev, i_safe, mask=mid_mask)
                upleft = yield warp.read(prev2, i_safe - 1, mask=mid_mask)
                pc = yield warp.read(
                    pattern, np.where(mid_mask, i_safe - 1, 0), mask=mid_mask
                )
                tc = yield warp.read(
                    text, np.where(mid_mask, j - 1, 0), mask=mid_mask
                )
                yield warp.compute(3)  # two mins and a comparison-add
                candidate = np.minimum(
                    np.minimum(up + 1, left + 1), upleft + (pc != tc)
                )
                value[mid_mask] = candidate[mid_mask]

            yield warp.write(cur, i_safe, value, mask=mask)
            emit = mask & (i_safe == m) & (j - 1 >= skip_columns) & (j > 0)
            if emit.any():
                yield warp.write(
                    out,
                    np.where(emit, out_offset + j - 1 - skip_columns, 0),
                    value,
                    mask=emit,
                )
        yield warp.barrier(scope)
        prev2, prev, cur = prev, cur, prev2

    return


def approximate_match_kernel(
    pattern: ArrayHandle,
    text: ArrayHandle,
    out: ArrayHandle,
    m: int,
    n: int,
    diag: list[ArrayHandle],
):
    """Kernel: approximate matching on a flat DMM or UMM."""

    def program(warp: WarpContext):
        yield from approximate_match_steps(
            warp, pattern, text, out, m, n, diag
        )

    return program


def flat_approximate_match(
    engine: MachineEngine,
    pattern: np.ndarray,
    text: np.ndarray,
    num_threads: int,
    *,
    trace: TraceRecorder | None = None,
) -> tuple[np.ndarray, RunReport]:
    """Run the DP on a flat machine; returns ``(distances, report)``."""
    pv = _codes(pattern)
    tv = _codes(text)
    m, n = pv.size, tv.size
    p_arr = engine.array_from(pv, "asm.P")
    t_arr = engine.array_from(tv, "asm.T")
    out = engine.alloc(n, "asm.out")
    diag = [engine.alloc(m + 1, f"asm.diag{i}") for i in range(3)]
    for d in diag:
        d.fill(0.0)
    report = engine.launch(
        approximate_match_kernel(p_arr, t_arr, out, m, n, diag),
        num_threads,
        trace=trace,
        label="flat-approx-match",
    )
    return out.to_numpy(), report


def hmm_approximate_match(
    engine: HMMEngine,
    pattern: np.ndarray,
    text: np.ndarray,
    num_threads: int,
    *,
    trace: TraceRecorder | None = None,
) -> tuple[np.ndarray, RunReport]:
    """Chunked approximate matching on the HMM.

    Each active DMM stages the pattern plus its text chunk (with ``2m``
    columns of left overlap) into shared memory, runs the DP at latency
    1, and writes its owned slice of the result back coalesced.
    """
    pv = _codes(pattern)
    tv = _codes(text)
    m, n = pv.size, tv.size
    d = engine.params.num_dmms
    shares = split_threads(num_threads, d)
    active = sum(1 for s in shares if s > 0)
    chunk = -(-n // active)
    overlap = 2 * m

    g_p = engine.global_from(pv, "asm.P")
    g_t = engine.global_from(tv, "asm.T")
    g_out = engine.alloc_global(n, "asm.out")

    s_p, s_t, s_out, s_diag = [], [], [], []
    bounds = []
    for i in range(d):
        lo = min(i * chunk, n) if i < active else n
        hi = min(lo + chunk, n)
        start = max(0, lo - overlap)
        bounds.append((lo, hi, start))
        cn = max(hi - start, 1)
        s_p.append(engine.alloc_shared(i, m, "asm.sP"))
        s_t.append(engine.alloc_shared(i, cn, "asm.sT"))
        s_out.append(engine.alloc_shared(i, max(hi - lo, 1), "asm.sOut"))
        s_diag.append(
            [engine.alloc_shared(i, m + 1, f"asm.sDiag{k}") for k in range(3)]
        )

    def program(warp: WarpContext):
        i = warp.dmm_id
        q = warp.threads_in_dmm
        lo, hi, start = bounds[i]
        cn = hi - start
        own = hi - lo
        if own <= 0:
            return
        local = warp.local_tids
        # Stage pattern and chunk (coalesced global reads).
        yield from copy_range_steps(
            warp, g_p, 0, s_p[i], 0, m, num_threads=q, tids=local
        )
        yield from copy_range_steps(
            warp, g_t, start, s_t[i], 0, cn, num_threads=q, tids=local
        )
        yield warp.sync_dmm()
        # DP over the chunk at latency 1; warm-up columns not emitted.
        yield from approximate_match_steps(
            warp,
            s_p[i],
            s_t[i],
            s_out[i],
            m,
            cn,
            s_diag[i],
            skip_columns=lo - start,
            num_threads=q,
            tids=local,
            scope=BarrierScope.DMM,
        )
        yield warp.sync_dmm()
        # Publish the owned slice.
        yield from copy_range_steps(
            warp, s_out[i], 0, g_out, lo, own, num_threads=q, tids=local
        )

    report = engine.launch(program, num_threads, trace=trace,
                           label="hmm-approx-match")
    return g_out.to_numpy(), report


def _codes(seq) -> np.ndarray:
    """Accept strings or numeric arrays; return float64 symbol codes."""
    if isinstance(seq, str):
        return np.array([ord(c) for c in seq], dtype=np.float64)
    arr = np.asarray(seq, dtype=np.float64).ravel()
    if arr.size < 1:
        raise ConfigurationError("pattern and text must be non-empty")
    return arr


def find_matches(
    engine: "HMMEngine",
    pattern,
    text,
    max_edits: int,
    num_threads: int,
    *,
    trace: TraceRecorder | None = None,
) -> tuple[np.ndarray, RunReport]:
    """End positions where the pattern matches with at most ``max_edits``.

    A host-side convenience over :func:`hmm_approximate_match`: runs the
    DP on the HMM and returns the (0-based) text positions ``j`` with
    ``D[m][j] <= max_edits``, i.e. where an approximate occurrence of
    the pattern ends.  Returns ``(positions, report)``.
    """
    if max_edits < 0:
        raise ConfigurationError(f"max_edits must be >= 0, got {max_edits}")
    distances, report = hmm_approximate_match(
        engine, pattern, text, num_threads, trace=trace
    )
    return np.nonzero(distances <= max_edits)[0], report
