"""Prefix-sums on the memory machine models (extension; paper ref [17]).

The paper's summing results build on Nakano's companion prefix-sums
paper ("An optimal parallel prefix-sums algorithm on the memory machine
models for GPUs", ICA3PP 2012): the prefix-sums of ``n`` numbers take
``O(n/w + nl/p + l·log n)`` time units on the DMM/UMM.  We implement the
work-efficient two-sweep scan with *per-level auxiliary arrays* so that
every level is a (stride-2) sweep over a contiguous array:

* **up-sweep** — ``L_t[i] = L_{t-1}[2i] + L_{t-1}[2i+1]``,
* **down-sweep** — exclusive prefixes ``P_{t-1}[2i] = P_t[i]`` and
  ``P_{t-1}[2i+1] = P_t[i] + L_{t-1}[2i]``,
* inclusive result ``out[i] = P_0[i] + L_0[i]``.

Stride-2 warp transactions touch 2 address groups / have bank-conflict
degree 2 — a constant factor over perfectly contiguous access, preserving
the bound.  Arbitrary ``n`` is handled by ceil-halving level sizes.

On the HMM, an ``O(n/w + nl/p + l + log n)`` scan mirrors Theorem 7:
chunks are staged into the shared memories, scanned at latency 1,
per-DMM totals are exclusive-scanned on ``DMM(0)``, and the offsets are
applied during the contiguous copy-out.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError
from repro.machine.hmm import HMMEngine, split_threads
from repro.machine.memory import ArrayHandle
from repro.machine.ops import BarrierScope
from repro.machine.report import RunReport
from repro.machine.trace import TraceRecorder
from repro.machine.warp import WarpContext
from repro.core.kernels.contiguous import contiguous_range_steps, copy_range_steps

__all__ = [
    "level_sizes",
    "prefix_sums_kernel",
    "scan_steps",
    "hmm_prefix_sums",
]


def level_sizes(n: int) -> list[int]:
    """Sizes of the scan's level arrays: ``n, ceil(n/2), ..., 1``."""
    if n < 1:
        raise ConfigurationError(f"scan requires n >= 1, got {n}")
    sizes = [n]
    while sizes[-1] > 1:
        sizes.append(-(-sizes[-1] // 2))
    return sizes


def scan_steps(
    warp: WarpContext,
    levels: list[ArrayHandle],
    prefixes: list[ArrayHandle],
    out: ArrayHandle,
    n: int,
    *,
    num_threads: int | None = None,
    tids: np.ndarray | None = None,
    scope: BarrierScope = BarrierScope.DEVICE,
):
    """Sub-generator: inclusive scan of ``levels[0][0..n)`` into ``out``.

    ``levels[t]`` / ``prefixes[t]`` must have the :func:`level_sizes`
    sizes; ``levels[0]`` holds the input (it is not modified).  The HMM
    kernel runs this against shared-memory arrays with ``scope=DMM``.
    """
    sizes = level_sizes(n)
    depth = len(sizes)
    p = num_threads if num_threads is not None else warp.num_threads
    lane_tids = tids if tids is not None else warp.tids

    # Up-sweep.
    for t in range(1, depth):
        m_prev, m = sizes[t - 1], sizes[t]
        for idx, mask in contiguous_range_steps(
            warp, m, num_threads=p, tids=lane_tids
        ):
            left = yield warp.read(levels[t - 1], 2 * idx, mask=mask)
            right_mask = mask & (2 * idx + 1 < m_prev)
            right = yield warp.read(
                levels[t - 1], np.where(right_mask, 2 * idx + 1, 0), mask=right_mask
            )
            yield warp.compute(1)
            yield warp.write(levels[t], idx, left + right, mask=mask)
        yield warp.barrier(scope)

    # Seed the top exclusive prefix with 0.
    top = lane_tids == 0
    if top.any():
        yield warp.write(prefixes[depth - 1], 0, np.zeros(warp.num_lanes), mask=top)
    yield warp.barrier(scope)

    # Down-sweep.
    for t in range(depth - 1, 0, -1):
        m_prev, m = sizes[t - 1], sizes[t]
        for idx, mask in contiguous_range_steps(
            warp, m, num_threads=p, tids=lane_tids
        ):
            pref = yield warp.read(prefixes[t], idx, mask=mask)
            left = yield warp.read(levels[t - 1], 2 * idx, mask=mask)
            yield warp.compute(1)
            yield warp.write(prefixes[t - 1], 2 * idx, pref, mask=mask)
            odd_mask = mask & (2 * idx + 1 < m_prev)
            yield warp.write(
                prefixes[t - 1],
                np.where(odd_mask, 2 * idx + 1, 0),
                pref + left,
                mask=odd_mask,
            )
        yield warp.barrier(scope)

    # Inclusive result: out[i] = P_0[i] + L_0[i].
    for idx, mask in contiguous_range_steps(warp, n, num_threads=p, tids=lane_tids):
        pref = yield warp.read(prefixes[0], idx, mask=mask)
        base = yield warp.read(levels[0], idx, mask=mask)
        yield warp.compute(1)
        yield warp.write(out, idx, pref + base, mask=mask)
    yield warp.barrier(scope)


def alloc_scan_scratch(
    alloc, n: int, name: str = "scan"
) -> tuple[list[ArrayHandle], list[ArrayHandle]]:
    """Allocate level/prefix arrays via ``alloc(size, name)``."""
    sizes = level_sizes(n)
    levels = [alloc(s, f"{name}.L{t}") for t, s in enumerate(sizes)]
    prefixes = [alloc(s, f"{name}.P{t}") for t, s in enumerate(sizes)]
    return levels, prefixes


def prefix_sums_kernel(
    a: ArrayHandle,
    levels: list[ArrayHandle],
    prefixes: list[ArrayHandle],
    out: ArrayHandle,
    n: int,
):
    """Kernel: inclusive prefix-sums on a flat DMM or UMM.

    ``levels[0]`` must alias or copy the input; pass ``a`` as
    ``levels[0]`` and it is used directly.
    """

    def program(warp: WarpContext):
        yield from scan_steps(warp, levels, prefixes, out, n)

    return program


def hmm_prefix_sums(
    engine: HMMEngine,
    values: np.ndarray,
    num_threads: int,
    *,
    trace: TraceRecorder | None = None,
) -> tuple[np.ndarray, RunReport]:
    """Inclusive prefix-sums on the HMM in ``O(n/w + nl/p + l + log n)``.

    Returns ``(prefix_array, report)``.
    """
    vals = np.asarray(values, dtype=np.float64).ravel()
    n = vals.size
    if n < 1:
        raise ConfigurationError("prefix sums require a non-empty array")
    d = engine.params.num_dmms
    # Chunk the input over the DMMs that actually receive threads, so a
    # launch with fewer threads than DMMs still covers every element.
    active = sum(1 for s in split_threads(num_threads, d) if s > 0)
    chunk = -(-n // active)
    a = engine.global_from(vals, "scan.in")
    out = engine.alloc_global(n, "scan.out")
    totals = engine.alloc_global(active, "scan.totals")
    offsets = engine.alloc_global(active, "scan.offsets")

    s_in: list[ArrayHandle] = []
    s_out: list[ArrayHandle] = []
    s_levels: list[list[ArrayHandle]] = []
    s_prefixes: list[list[ArrayHandle]] = []
    o_levels: list[list[ArrayHandle]] = []
    o_prefixes: list[list[ArrayHandle]] = []
    for i in range(d):
        lo = min(i * chunk, n) if i < active else n
        hi = min(lo + chunk, n)
        cn = max(hi - lo, 1)
        alloc = lambda size, name, _i=i: engine.alloc_shared(_i, size, name)
        s_in.append(engine.alloc_shared(i, cn, "scan.s_in"))
        s_out.append(engine.alloc_shared(i, cn, "scan.s_out"))
        lv, pf = alloc_scan_scratch(alloc, cn, "scan.chunk")
        s_levels.append(lv)
        s_prefixes.append(pf)
        if i == 0:
            s_tot_in = engine.alloc_shared(0, active, "scan.t_in")
            s_tot_out = engine.alloc_shared(0, active, "scan.t_out")
            olv, opf = alloc_scan_scratch(alloc, active, "scan.tot")
            o_levels.append(olv)
            o_prefixes.append(opf)

    def program(warp: WarpContext):
        i = warp.dmm_id
        q = warp.threads_in_dmm
        lo = min(i * chunk, n)
        hi = min(lo + chunk, n)
        cn = hi - lo
        local = warp.local_tids
        leader = local == 0

        if cn > 0:
            # Stage the chunk and scan it at latency 1.
            yield from copy_range_steps(
                warp, a, lo, s_in[i], 0, cn, num_threads=q, tids=local
            )
            yield warp.sync_dmm()
            chunk_levels = [s_in[i]] + s_levels[i][1:]
            yield from scan_steps(
                warp,
                chunk_levels,
                s_prefixes[i],
                s_out[i],
                cn,
                num_threads=q,
                tids=local,
                scope=BarrierScope.DMM,
            )
            if leader.any():
                total = yield warp.read(s_out[i], cn - 1, mask=leader)
                yield warp.write(totals, i, total, mask=leader)
        yield warp.barrier()  # all chunk totals are in `totals`

        if i == 0:
            # Exclusive scan of the d totals on DMM(0).
            yield from copy_range_steps(
                warp, totals, 0, s_tot_in, 0, active, num_threads=q, tids=local
            )
            yield warp.sync_dmm()
            tot_levels = [s_tot_in] + o_levels[0][1:]
            yield from scan_steps(
                warp,
                tot_levels,
                o_prefixes[0],
                s_tot_out,
                active,
                num_threads=q,
                tids=local,
                scope=BarrierScope.DMM,
            )
            # offsets[i] = inclusive[i - 1]; offsets[0] = 0.
            for idx, mask in contiguous_range_steps(
                warp, active, num_threads=q, tids=local
            ):
                prev_mask = mask & (idx > 0)
                vals_prev = yield warp.read(
                    s_tot_out, np.where(prev_mask, idx - 1, 0), mask=prev_mask
                )
                yield warp.write(offsets, idx, vals_prev, mask=mask)
        yield warp.barrier()  # offsets are final

        if cn > 0:
            off = yield warp.read(offsets, i)  # broadcast: one address
            for idx, mask in contiguous_range_steps(
                warp, cn, num_threads=q, tids=local
            ):
                v = yield warp.read(s_out[i], idx, mask=mask)
                yield warp.compute(1)
                yield warp.write(out, lo + idx, v + off, mask=mask)

    report = engine.launch(program, num_threads, trace=trace, label="hmm-prefix-sums")
    return out.to_numpy(), report
