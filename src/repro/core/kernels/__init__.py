"""Warp-program implementations of the paper's algorithms.

Every module provides *kernel factories* — functions taking array handles
and problem parameters and returning a warp program — plus, where useful,
host-side helpers that launch the kernel and post-process the result.

Organization (paper section in parentheses):

* :mod:`repro.core.kernels.contiguous` — contiguous memory access
  (Section IV, Lemma 1, Theorem 2);
* :mod:`repro.core.kernels.reduction` — the sum on the DMM and UMM
  (Section VI, Lemma 5);
* :mod:`repro.core.kernels.hmm_sum` — the sum on the HMM (Section VII,
  Lemma 6 and Theorem 7);
* :mod:`repro.core.kernels.convolution` — direct convolution on the DMM
  and UMM (Section VIII, Theorem 8);
* :mod:`repro.core.kernels.hmm_conv` — direct convolution on the HMM
  (Section IX, Theorem 9 / Corollary 10);
* :mod:`repro.core.kernels.prefix` — prefix-sums (companion result the
  paper builds on, reference [17]);
* :mod:`repro.core.kernels.permutation` — conflict-free offline
  permutation on the DMM (references [13], [19]);
* :mod:`repro.core.kernels.matmul` — shared-memory tiled matrix
  multiplication on the HMM (extension: the canonical CUDA pattern
  expressed in the model).
"""

from repro.core.kernels.compaction import hmm_compact
from repro.core.kernels.contiguous import (
    contiguous_copy,
    contiguous_read,
    contiguous_write,
    multi_array_access,
    strided_read,
)
from repro.core.kernels.convolution import convolution_kernel
from repro.core.kernels.hmm_conv import hmm_convolution
from repro.core.kernels.histogram import hmm_histogram
from repro.core.kernels.hmm_sum import hmm_reduce, hmm_sum, hmm_sum_single_dmm
from repro.core.kernels.matmul import hmm_matmul, hmm_transpose
from repro.core.kernels.matvec import flat_matvec, hmm_matvec
from repro.core.kernels.merge import flat_merge, hmm_merge, merge_partition
from repro.core.kernels.permutation import (
    conflict_free_permutation_schedule,
    permutation_kernel,
)
from repro.core.kernels.prefix import hmm_prefix_sums, prefix_sums_kernel
from repro.core.kernels.reduction import sum_kernel
from repro.core.kernels.bfs import adjacency_from_graph, hmm_bfs
from repro.core.kernels.sorting import flat_bitonic_sort, hmm_bitonic_sort
from repro.core.kernels.spmv import csr_from_dense, flat_spmv, hmm_spmv
from repro.core.kernels.string_matching import (
    flat_approximate_match,
    hmm_approximate_match,
    reference_approximate_match,
)

__all__ = [
    "contiguous_copy",
    "flat_approximate_match",
    "flat_bitonic_sort",
    "hmm_bitonic_sort",
    "hmm_approximate_match",
    "reference_approximate_match",
    "contiguous_read",
    "contiguous_write",
    "convolution_kernel",
    "conflict_free_permutation_schedule",
    "adjacency_from_graph",
    "csr_from_dense",
    "flat_spmv",
    "hmm_bfs",
    "flat_merge",
    "hmm_compact",
    "hmm_merge",
    "merge_partition",
    "hmm_spmv",
    "hmm_convolution",
    "hmm_histogram",
    "hmm_matvec",
    "flat_matvec",
    "hmm_reduce",
    "hmm_transpose",
    "hmm_matmul",
    "hmm_prefix_sums",
    "hmm_sum",
    "hmm_sum_single_dmm",
    "multi_array_access",
    "permutation_kernel",
    "prefix_sums_kernel",
    "strided_read",
    "sum_kernel",
]
