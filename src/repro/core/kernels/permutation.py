"""Offline conflict-free permutation on the DMM (paper refs [13], [19]).

The paper's evidence that the DMM predicts real GPU shared-memory
behaviour is Kasagi-Nakano-Ito's *conflict-free off-line permutation*:
given a permutation ``pi`` known in advance, data can be permuted
(``b[pi[i]] = a[i]``) so that every warp transaction is free of bank
conflicts, in ``O(n/w + nl/p + l)`` time units — while a naive schedule
can be ``w``-fold slower on adversarial permutations.

The scheduling argument: build the bipartite multigraph whose left nodes
are *source banks*, right nodes *destination banks*, with one edge per
element ``i`` from ``bank(i)`` to ``bank(pi[i])``.  With ``n`` a multiple
of ``w`` the graph is ``n/w``-regular, so by König's theorem it
decomposes into ``n/w`` perfect matchings; each matching is a round of
``w`` elements with pairwise-distinct source banks *and* pairwise
-distinct destination banks — one conflict-free read plus one
conflict-free write.

:func:`conflict_free_permutation_schedule` computes the decomposition
with Hopcroft-Karp matchings (regularity guarantees each one is
perfect); :func:`permutation_kernel` executes either that schedule or
the naive in-order schedule.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError
from repro.machine.memory import ArrayHandle
from repro.machine.warp import WarpContext

__all__ = [
    "conflict_free_permutation_schedule",
    "permutation_kernel",
    "naive_permutation_schedule",
]


def _check_permutation(perm: np.ndarray) -> np.ndarray:
    perm = np.asarray(perm, dtype=np.int64).ravel()
    n = perm.size
    if n < 1:
        raise ConfigurationError("permutation must be non-empty")
    seen = np.zeros(n, dtype=bool)
    if perm.min() < 0 or perm.max() >= n:
        raise ConfigurationError("permutation values out of range")
    seen[perm] = True
    if not seen.all():
        raise ConfigurationError("input is not a permutation (duplicate values)")
    return perm


def naive_permutation_schedule(perm: np.ndarray, width: int) -> np.ndarray:
    """The obvious schedule: element ``i`` moves in round ``i // w``.

    Returns an ``(n/w, w)`` array of source indices (row = round).
    Reads are contiguous (conflict-free) but writes hit banks
    ``pi[i] mod w`` — up to ``w``-way conflicted for adversarial ``pi``.
    """
    perm = _check_permutation(perm)
    n = perm.size
    if n % width:
        raise ConfigurationError(
            f"scheduled permutation requires n ({n}) divisible by width ({width})"
        )
    return np.arange(n, dtype=np.int64).reshape(n // width, width)


def conflict_free_permutation_schedule(perm: np.ndarray, width: int) -> np.ndarray:
    """Decompose the permutation into conflict-free rounds.

    Returns an ``(n/w, w)`` array of source indices: row ``r`` lists the
    ``w`` elements moved in round ``r``, whose source banks are pairwise
    distinct and whose destination banks are pairwise distinct.  Column
    ``c`` of each row is the element read from source bank ``c``.
    """
    perm = _check_permutation(perm)
    n = perm.size
    if n % width:
        raise ConfigurationError(
            f"scheduled permutation requires n ({n}) divisible by width ({width})"
        )
    rounds = n // width

    # Bucket the elements by (source bank, destination bank).
    buckets: dict[tuple[int, int], list[int]] = {}
    for i in range(n):
        key = (int(i % width), int(perm[i] % width))
        buckets.setdefault(key, []).append(i)
    # Residual multiplicity matrix M[s, t] = #elements from bank s to bank t.
    mult = np.zeros((width, width), dtype=np.int64)
    for (s, t), items in buckets.items():
        mult[s, t] = len(items)

    schedule = np.empty((rounds, width), dtype=np.int64)
    for r in range(rounds):
        matching = _perfect_matching(mult, width)
        for s, t in enumerate(matching):
            schedule[r, s] = buckets[(s, t)].pop()
            mult[s, t] -= 1
    return schedule


def _perfect_matching(mult: np.ndarray, width: int) -> list[int]:
    """A perfect matching of the regular bipartite multigraph ``mult``.

    Returns ``match[s] = t``.  Uses Hopcroft-Karp via networkx when
    available, falling back to Hungarian-style augmenting paths.
    """
    # Simple augmenting-path matching (Kuhn's algorithm) — the graphs are
    # width x width (at most 32x32 in the benchmarks), so this is cheap.
    match_t = [-1] * width  # right node -> left node

    def try_assign(s: int, visited: list[bool]) -> bool:
        for t in range(width):
            if mult[s, t] > 0 and not visited[t]:
                visited[t] = True
                if match_t[t] == -1 or try_assign(match_t[t], visited):
                    match_t[t] = s
                    return True
        return False

    for s in range(width):
        if not try_assign(s, [False] * width):
            raise ConfigurationError(
                "no perfect matching found; the residual graph is not "
                "regular (is n a multiple of the width?)"
            )
    match_s = [-1] * width
    for t, s in enumerate(match_t):
        match_s[s] = t
    return match_s


def permutation_kernel(
    a: ArrayHandle,
    b: ArrayHandle,
    perm: np.ndarray,
    schedule: np.ndarray,
):
    """Kernel: apply ``b[perm[i]] = a[i]`` following ``schedule``.

    ``schedule`` is an ``(rounds, w)`` source-index array (from either
    scheduler).  Warp ``j`` executes rounds ``j, j + p/w, ...``; each
    round is one read transaction and one write transaction.  Rounds
    touch disjoint elements, so no barriers are needed.
    """
    perm = _check_permutation(perm)
    schedule = np.asarray(schedule, dtype=np.int64)
    if schedule.ndim != 2:
        raise ConfigurationError("schedule must be a (rounds, w) array")

    def program(warp: WarpContext):
        if warp.num_lanes != warp.width:
            raise ConfigurationError(
                "permutation_kernel requires full warps: launch with a "
                f"multiple of {warp.width} threads"
            )
        num_warps = -(-warp.num_threads // warp.width)
        rounds = schedule.shape[0]
        lane = warp.local_tids % warp.width
        for r in range(warp.warp_id, rounds, num_warps):
            src = schedule[r, lane]
            vals = yield warp.read(a, src)
            yield warp.write(b, perm[src], vals)

    return program
