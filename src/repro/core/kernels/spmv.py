"""Sparse matrix-vector multiplication (CSR) on the memory machines
(extension).

SpMV is *the* canonical irregular GPU kernel: the CSR structure streams
beautifully (``indices`` / ``data`` reads are contiguous), but the
``x[col]`` gather is data-dependent — scattered across address groups on
the UMM, the access pattern coalescing cannot fix.  The two versions
make the model's verdict concrete:

* :func:`flat_spmv` — warp-per-row (the classic "CSR-vector" kernel):
  row sweeps coalesced, but every ``x`` gather pays the scattered-group
  cost *and* the global latency.
* :func:`hmm_spmv` — identical structure with ``x`` staged into each
  DMM's shared memory: the gathers still conflict (data-dependent
  banks), but at latency 1 instead of ``l`` — the HMM's answer to
  irregular access.

Unlike the dense kernel, rows have irregular lengths, so the per-row
reduction is *intra-warp only* (a warp's own operations are ordered by
its program; no cross-warp barriers are needed or used) — which is what
lets warps proceed independently through rows of different lengths.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError
from repro.machine.engine import MachineEngine
from repro.machine.hmm import HMMEngine, split_threads
from repro.machine.memory import ArrayHandle
from repro.machine.report import RunReport
from repro.machine.trace import TraceRecorder
from repro.machine.warp import WarpContext
from repro.core.kernels.contiguous import copy_range_steps

__all__ = ["csr_from_dense", "flat_spmv", "hmm_spmv", "spmv_row_steps"]


def csr_from_dense(matrix: np.ndarray) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Host-side CSR conversion: ``(indptr, indices, data)``."""
    a = np.asarray(matrix, dtype=np.float64)
    if a.ndim != 2:
        raise ConfigurationError(f"matrix must be 2-D, got shape {a.shape}")
    indptr = [0]
    indices: list[int] = []
    data: list[float] = []
    for row in a:
        nz = np.nonzero(row)[0]
        indices.extend(int(c) for c in nz)
        data.extend(float(v) for v in row[nz])
        indptr.append(len(indices))
    return (
        np.array(indptr, dtype=np.int64),
        np.array(indices, dtype=np.int64),
        np.array(data, dtype=np.float64),
    )


def spmv_row_steps(
    warp: WarpContext,
    indptr: np.ndarray,
    g_indices: ArrayHandle,
    g_data: ArrayHandle,
    x: ArrayHandle,
    y: ArrayHandle,
    *,
    scratch: ArrayHandle,
    row_offset: int = 0,
    rows: int | None = None,
    num_threads: int | None = None,
    tids: np.ndarray | None = None,
):
    """Sub-generator: CSR-vector SpMV over a row range, barrier-free.

    ``indptr`` is host-side (the sparsity structure is known offline,
    exactly like the permutation schedules); ``g_indices`` / ``g_data``
    are the device CSR arrays.  Each warp sweeps its row's nonzeros
    contiguously, gathers ``x[col]``, and tree-reduces the ``w`` lane
    partials through ``scratch`` (one slot per thread).  Every step of
    the reduction is issued by the *same warp*, whose operations the
    model orders by program sequence — so no barriers are needed and
    warps stream through rows of different lengths independently.
    """
    p = num_threads if num_threads is not None else warp.num_threads
    lane_tids = tids if tids is not None else warp.tids
    w = warp.width
    count = rows if rows is not None else indptr.size - 1
    groups = max(p // w, 1)
    group = int(lane_tids[0]) // w  # one group per warp (enforced by callers)
    lane = lane_tids % w

    for r in range(group, count, groups):
        start = int(indptr[row_offset + r])
        end = int(indptr[row_offset + r + 1])
        nnz = end - start
        acc = np.zeros(warp.num_lanes, dtype=np.float64)
        for k0 in range(0, nnz, w):
            k = k0 + lane
            mask = k < nnz
            cols = yield warp.read(
                g_indices, np.where(mask, start + k, 0), mask=mask
            )
            vals = yield warp.read(
                g_data, np.where(mask, start + k, 0), mask=mask
            )
            xv = yield warp.read(
                x, np.where(mask, cols.astype(np.int64), 0), mask=mask
            )
            yield warp.compute(1)
            acc += vals * xv
        # Intra-warp tree reduction through scratch memory (threads
        # cannot read each other's registers in the model).  All steps
        # belong to this warp, so its program order suffices - no
        # barriers, and other warps proceed independently.
        yield warp.write(scratch, lane_tids, acc)
        half = w // 2
        while half >= 1:
            active = lane < half
            lo = yield warp.read(
                scratch, np.where(active, lane_tids, 0), mask=active
            )
            hi = yield warp.read(
                scratch, np.where(active, lane_tids + half, 0), mask=active
            )
            yield warp.compute(1)
            yield warp.write(
                scratch, np.where(active, lane_tids, 0), lo + hi, mask=active
            )
            half //= 2
        emit = lane == 0
        if emit.any():
            total = yield warp.read(
                scratch, np.where(emit, lane_tids, 0), mask=emit
            )
            yield warp.write(y, np.where(emit, r, 0), total, mask=emit)


def flat_spmv(
    engine: MachineEngine,
    matrix: np.ndarray,
    vector: np.ndarray,
    num_threads: int,
    *,
    trace: TraceRecorder | None = None,
) -> tuple[np.ndarray, RunReport]:
    """CSR SpMV on a flat machine; returns ``(y, report)``."""
    indptr, indices, data, xv, m, n = _prepare_inputs(matrix, vector)
    w = engine.params.width
    if num_threads % w or num_threads < w:
        raise ConfigurationError(
            f"spmv requires whole warps: num_threads ({num_threads}) must "
            f"be a positive multiple of the width ({w})"
        )
    g_indices = engine.array_from(indices.astype(np.float64), "spmv.indices")
    g_data = engine.array_from(data, "spmv.data")
    x = engine.array_from(xv, "spmv.x")
    y = engine.alloc(m, "spmv.y")
    scratch = engine.alloc(num_threads, "spmv.scratch")

    def program(warp: WarpContext):
        yield from spmv_row_steps(
            warp, indptr, g_indices, g_data, x, y, scratch=scratch
        )

    report = engine.launch(program, num_threads, trace=trace, label="flat-spmv")
    return y.to_numpy(), report


def hmm_spmv(
    engine: HMMEngine,
    matrix: np.ndarray,
    vector: np.ndarray,
    num_threads: int,
    *,
    trace: TraceRecorder | None = None,
) -> tuple[np.ndarray, RunReport]:
    """CSR SpMV on the HMM: ``x`` staged into each shared memory, rows
    chunked over the DMMs."""
    indptr, indices, data, xv, m, n = _prepare_inputs(matrix, vector)
    d = engine.params.num_dmms
    w = engine.params.width
    shares = split_threads(num_threads, d)
    if any(s % w for s in shares):
        raise ConfigurationError(
            f"spmv requires whole warps on every DMM: num_threads "
            f"({num_threads}) must be a multiple of d*w = {d * w}"
        )
    active = sum(1 for s in shares if s > 0)
    chunk = -(-m // active)

    g_indices = engine.global_from(indices.astype(np.float64), "spmv.indices")
    g_data = engine.global_from(data, "spmv.data")
    gx = engine.global_from(xv, "spmv.x")
    gy = engine.alloc_global(m, "spmv.y")
    sx = [engine.alloc_shared(i, n, "spmv.sx") for i in range(d)]
    sy = []
    scratch = []
    for i in range(d):
        lo = min(i * chunk, m) if i < active else m
        hi = min(lo + chunk, m)
        sy.append(engine.alloc_shared(i, max(hi - lo, 1), "spmv.sy"))
        scratch.append(engine.alloc_shared(i, max(shares[i], w), "spmv.sc"))

    def program(warp: WarpContext):
        i = warp.dmm_id
        q = warp.threads_in_dmm
        local = warp.local_tids
        lo = min(i * chunk, m)
        hi = min(lo + chunk, m)
        rows = hi - lo
        if rows <= 0:
            return
        yield from copy_range_steps(
            warp, gx, 0, sx[i], 0, n, num_threads=q, tids=local
        )
        yield warp.sync_dmm()
        yield from spmv_row_steps(
            warp, indptr, g_indices, g_data, sx[i], sy[i],
            scratch=scratch[i],
            row_offset=lo, rows=rows,
            num_threads=q, tids=local,
        )
        yield warp.sync_dmm()
        yield from copy_range_steps(
            warp, sy[i], 0, gy, lo, rows, num_threads=q, tids=local
        )

    report = engine.launch(program, num_threads, trace=trace, label="hmm-spmv")
    return gy.to_numpy(), report


def _prepare_inputs(matrix, vector):
    a = np.asarray(matrix, dtype=np.float64)
    xv = np.asarray(vector, dtype=np.float64).ravel()
    indptr, indices, data = csr_from_dense(a)
    m, n = a.shape
    if m < 1 or n < 1:
        raise ConfigurationError(f"matrix must be non-empty, got {a.shape}")
    if xv.size != n:
        raise ConfigurationError(
            f"vector length {xv.size} does not match matrix columns {n}"
        )
    if indices.size == 0:
        # Guard the device arrays against zero-size allocations.
        indices = np.zeros(1, dtype=np.int64)
        data = np.zeros(1, dtype=np.float64)
    return indptr, indices, data, xv, m, n
