"""Merging sorted arrays on the memory machines (extension).

The merge-path formulation: output position ``k`` is produced by the
unique ``(i, j)`` with ``i + j = k`` splitting the two sorted inputs
into the ``k`` smallest elements.  Each thread finds its start point by
a **diagonal binary search** — a chain of data-dependent, scattered
reads (log steps, each paying the memory latency: the honest cost of
searching on a GPU) — then merges a fixed-size output segment with a
step-per-element loop of masked reads.

* :func:`flat_merge` — searches and merges against the flat machine's
  memory: ``O((n/p)·c_step·l' + l·log n)`` per thread chain with every
  access scattered.
* :func:`hmm_merge` — the output is pre-partitioned per DMM (an
  *offline* host-side split, exactly like the permutation schedules:
  the partition depends only on data the host staged in); each DMM
  copies just its two input slices into shared memory (contiguous) and
  merges at latency 1.

All per-lane loops are structurally uniform (fixed iteration counts
with masks), so lockstep holds by construction.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError
from repro.machine.engine import MachineEngine
from repro.machine.hmm import HMMEngine, split_threads
from repro.machine.memory import ArrayHandle
from repro.machine.report import RunReport
from repro.machine.trace import TraceRecorder
from repro.machine.warp import WarpContext
from repro.core.kernels.contiguous import copy_range_steps

__all__ = ["flat_merge", "hmm_merge", "merge_segment_steps", "merge_partition"]

#: Sentinel larger than any finite input (the model stores float64).
_INF = np.inf


def merge_partition(a: np.ndarray, b: np.ndarray, k: int) -> tuple[int, int]:
    """Host-side merge-path split: the unique ``(i, j)``, ``i + j = k``,
    such that ``a[:i]`` and ``b[:j]`` are the ``k`` smallest elements
    (ties resolved toward ``a`` — a stable merge)."""
    lo = max(0, k - b.size)
    hi = min(k, a.size)
    while lo < hi:
        mid = (lo + hi) // 2
        if a[mid] <= b[k - mid - 1]:
            lo = mid + 1
        else:
            hi = mid
    return lo, k - lo


def merge_segment_steps(
    warp: WarpContext,
    a: ArrayHandle,
    b: ArrayHandle,
    out: ArrayHandle,
    na: int,
    nb: int,
    *,
    a_offset: int = 0,
    b_offset: int = 0,
    out_offset: int = 0,
    total: int | None = None,
    num_threads: int | None = None,
    tids: np.ndarray | None = None,
):
    """Sub-generator: merge ``a[:na]`` and ``b[:nb]`` into ``out``.

    Each thread owns one contiguous output segment and finds its split
    by diagonal binary search over the device arrays — a fixed number
    of masked iterations (lockstep-uniform), each a dependent scattered
    read.  On the HMM path the search runs against the staged shared
    slices at latency 1.
    """
    p = num_threads if num_threads is not None else warp.num_threads
    lane_tids = tids if tids is not None else warp.tids
    n = total if total is not None else na + nb
    if n == 0:
        return
    seg = -(-n // p)  # output elements per thread
    k = lane_tids * seg  # each lane's first output index
    live = k < n

    # Diagonal binary search, fixed iteration count for lockstep.
    lo = np.maximum(0, k - nb)
    hi = np.minimum(k, na)
    steps = max(int(np.ceil(np.log2(max(na, 1) + 1))) + 1, 1)
    for _ in range(steps):
        active = live & (lo < hi)
        mid = (lo + hi) // 2
        av = yield warp.read(
            a, np.where(active, a_offset + np.minimum(mid, max(na - 1, 0)), 0),
            mask=active,
        )
        bidx = np.where(active, np.maximum(k - mid - 1, 0), 0)
        bv = yield warp.read(b, b_offset + np.minimum(bidx, max(nb - 1, 0)),
                             mask=active)
        yield warp.compute(1)
        take_a = active & (av <= bv)
        lo = np.where(take_a, mid + 1, lo)
        hi = np.where(active & ~take_a, mid, hi)
    i = lo
    j = k - lo

    # Serial segment merge: seg uniform steps of masked dependent reads.
    for step in range(seg):
        pos = k + step
        active = live & (pos < n)
        a_ok = active & (i < na)
        b_ok = active & (j < nb)
        av = yield warp.read(
            a, np.where(a_ok, a_offset + np.minimum(i, max(na - 1, 0)), 0),
            mask=a_ok,
        )
        bv = yield warp.read(
            b, np.where(b_ok, b_offset + np.minimum(j, max(nb - 1, 0)), 0),
            mask=b_ok,
        )
        av = np.where(a_ok, av, _INF)
        bv = np.where(b_ok, bv, _INF)
        yield warp.compute(1)
        take_a = active & (av <= bv)
        value = np.where(take_a, av, bv)
        yield warp.write(
            out, np.where(active, out_offset + pos, 0), value, mask=active
        )
        i = np.where(take_a, i + 1, i)
        j = np.where(active & ~take_a, j + 1, j)


def flat_merge(
    engine: MachineEngine,
    a_values: np.ndarray,
    b_values: np.ndarray,
    num_threads: int,
    *,
    trace: TraceRecorder | None = None,
) -> tuple[np.ndarray, RunReport]:
    """Merge two sorted arrays on a flat machine; returns ``(merged,
    report)``."""
    av, bv = _check_sorted(a_values, b_values)
    a = engine.array_from(av, "merge.a") if av.size else engine.alloc(1, "merge.a")
    b = engine.array_from(bv, "merge.b") if bv.size else engine.alloc(1, "merge.b")
    out = engine.alloc(max(av.size + bv.size, 1), "merge.out")

    def program(warp: WarpContext):
        yield from merge_segment_steps(
            warp, a, b, out, av.size, bv.size
        )

    report = engine.launch(program, num_threads, trace=trace, label="flat-merge")
    return out.to_numpy()[: av.size + bv.size], report


def hmm_merge(
    engine: HMMEngine,
    a_values: np.ndarray,
    b_values: np.ndarray,
    num_threads: int,
    *,
    trace: TraceRecorder | None = None,
) -> tuple[np.ndarray, RunReport]:
    """Merge on the HMM: the output is split over the DMMs by host-side
    merge-path partition; each DMM stages its two slices (contiguous)
    and merges at latency 1."""
    av, bv = _check_sorted(a_values, b_values)
    n = av.size + bv.size
    d = engine.params.num_dmms
    shares = split_threads(num_threads, d)
    active = sum(1 for s in shares if s > 0)
    chunk = -(-max(n, 1) // active)

    bounds = []
    for idx in range(active):
        k_lo = min(idx * chunk, n)
        k_hi = min(k_lo + chunk, n)
        i_lo, j_lo = merge_partition(av, bv, k_lo)
        i_hi, j_hi = merge_partition(av, bv, k_hi)
        bounds.append((k_lo, k_hi, i_lo, i_hi, j_lo, j_hi))

    g_a = engine.global_from(av, "merge.a") if av.size else engine.alloc_global(1)
    g_b = engine.global_from(bv, "merge.b") if bv.size else engine.alloc_global(1)
    g_out = engine.alloc_global(max(n, 1), "merge.out")
    s_a, s_b, s_out = [], [], []
    for i in range(d):
        if i < active:
            k_lo, k_hi, i_lo, i_hi, j_lo, j_hi = bounds[i]
            s_a.append(engine.alloc_shared(i, max(i_hi - i_lo, 1), "merge.sa"))
            s_b.append(engine.alloc_shared(i, max(j_hi - j_lo, 1), "merge.sb"))
            s_out.append(engine.alloc_shared(i, max(k_hi - k_lo, 1), "merge.so"))
        else:
            s_a.append(engine.alloc_shared(i, 1))
            s_b.append(engine.alloc_shared(i, 1))
            s_out.append(engine.alloc_shared(i, 1))

    def program(warp: WarpContext):
        dmm = warp.dmm_id
        if dmm >= active:
            return
        k_lo, k_hi, i_lo, i_hi, j_lo, j_hi = bounds[dmm]
        cn = k_hi - k_lo
        if cn <= 0:
            return
        q = warp.threads_in_dmm
        local = warp.local_tids
        na = i_hi - i_lo
        nb = j_hi - j_lo
        if na > 0:
            yield from copy_range_steps(
                warp, g_a, i_lo, s_a[dmm], 0, na, num_threads=q, tids=local
            )
        if nb > 0:
            yield from copy_range_steps(
                warp, g_b, j_lo, s_b[dmm], 0, nb, num_threads=q, tids=local
            )
        yield warp.sync_dmm()
        yield from merge_segment_steps(
            warp, s_a[dmm], s_b[dmm], s_out[dmm], na, nb,
            num_threads=q, tids=local,
        )
        yield warp.sync_dmm()
        yield from copy_range_steps(
            warp, s_out[dmm], 0, g_out, k_lo, cn, num_threads=q, tids=local
        )

    report = engine.launch(program, num_threads, trace=trace, label="hmm-merge")
    return g_out.to_numpy()[:n], report


def _check_sorted(a_values, b_values) -> tuple[np.ndarray, np.ndarray]:
    av = np.asarray(a_values, dtype=np.float64).ravel()
    bv = np.asarray(b_values, dtype=np.float64).ravel()
    if av.size + bv.size < 1:
        raise ConfigurationError("merge requires at least one element")
    if av.size > 1 and (np.diff(av) < 0).any():
        raise ConfigurationError("first input is not sorted")
    if bv.size > 1 and (np.diff(bv) < 0).any():
        raise ConfigurationError("second input is not sorted")
    return av, bv
