"""The sum on the HMM (paper Section VII, Lemma 6 and Theorem 7).

The flat Lemma 5 algorithm run in the global memory pays the latency
``l`` at *every* level of the reduction tree — ``O(l·log n)``.  The HMM
algorithms avoid that by doing all tree levels in the latency-1 shared
memories and touching the global memory only for bandwidth-bound
contiguous sweeps plus O(1) synchronizing writes per DMM:

1. **Column sums** (global, contiguous): view the input as a 2-D array
   with ``p`` columns; thread ``j`` accumulates column ``j`` in a
   register.  Cost ``O(n/w + nl/p + l)``.
2. **Per-DMM reduction** (shared, latency 1): each DMM's ``q = p/d``
   threads write their registers into shared memory and tree-reduce them
   there; thread 0 writes the DMM's partial sum to a global array ``t``.
   Cost ``O(q/w + log q + l)``.
3. **Final reduction** (DMM(0)): after a device-wide synchronization,
   DMM(0) copies the ``d`` partial sums into its shared memory, reduces
   them, and writes the total.  Cost ``O(d/w + dl/q + log d + l)``.

Total: ``O(n/w + nl/p + l + log n)`` — Theorem 7, optimal.  Lemma 6 is
the special case where all threads sit on one DMM
(:func:`hmm_sum_single_dmm`), costing ``O(n/w + nl/p0 + l + log n)`` with
``p0`` capped by a single DMM's capacity.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError
from repro.machine.hmm import HMMEngine, split_threads
from repro.machine.memory import ArrayHandle
from repro.machine.ops import BarrierScope
from repro.machine.report import RunReport
from repro.machine.trace import TraceRecorder
from repro.machine.warp import WarpContext
from repro.core.kernels.contiguous import (
    contiguous_range_parts,
    contiguous_range_steps,
)
from repro.core.kernels.reduction import REDUCE_OPS, tree_reduce_steps

__all__ = [
    "hmm_sum_kernel",
    "hmm_sum",
    "hmm_sum_single_dmm",
    "hmm_sum_recursive",
    "hmm_reduce",
]


def hmm_sum_kernel(
    a: ArrayHandle,
    n: int,
    shared: list[ArrayHandle],
    t: ArrayHandle,
    out: ArrayHandle,
    active_dmms: int,
    *,
    op: str = "sum",
):
    """Kernel factory for the Theorem 7 summing algorithm.

    Parameters
    ----------
    a:
        Global input array, summed over ``a[0..n)``.
    shared:
        One shared-memory scratch array per DMM, each at least as large
        as that DMM's thread count (and, on DMM 0, at least
        ``active_dmms``).
    t:
        Global scratch holding one partial sum per active DMM.
    out:
        Global cell receiving the total (``out[0]``).
    active_dmms:
        Number of DMMs that received threads.
    op:
        Named reduction from :data:`repro.core.kernels.reduction.REDUCE_OPS`
        (the whole Theorem 7 structure works for any unit-time
        commutative, associative operation).
    """
    if n < 1:
        raise ConfigurationError(f"sum requires n >= 1, got {n}")
    if op not in REDUCE_OPS:
        raise ConfigurationError(
            f"unknown reduction {op!r}; choose from {sorted(REDUCE_OPS)}"
        )
    combine, identity = REDUCE_OPS[op]

    def program(warp: WarpContext):
        q = warp.threads_in_dmm
        s = shared[warp.dmm_id]

        # Phase 1 - column reductions into registers (contiguous reads).
        # The full rounds are one fused range read (each round followed by
        # one combine step); accumulation stays row-by-row to keep the
        # floating-point order of the per-round loop.
        acc = np.full(warp.num_lanes, identity, dtype=np.float64)
        idx_mat, tails = contiguous_range_parts(warp, n)
        if idx_mat is not None:
            vals_mat = yield warp.read_range(a, idx_mat, compute=1)
            for vals in vals_mat:
                acc = combine(acc, vals)
        for idx, mask in tails:
            vals = yield warp.read(a, idx, mask=mask)
            yield warp.compute(1)
            # Masked lanes read as 0, which is not the identity for
            # min/max/prod - re-mask explicitly.
            acc = np.where(mask, combine(acc, vals), acc)

        # Phase 2 - per-DMM tree reduction in shared memory (latency 1).
        yield warp.write(s, warp.local_tids, acc)
        yield warp.sync_dmm()
        yield from tree_reduce_steps(
            warp,
            s,
            q,
            scope=BarrierScope.DMM,
            num_threads=q,
            tids=warp.local_tids,
            combine=combine,
        )
        leader = warp.local_tids == 0
        if leader.any():
            partial = yield warp.read(s, 0, mask=leader)
            yield warp.write(t, warp.dmm_id, partial, mask=leader)

        # Phase 3 - DMM(0) reduces the per-DMM partial sums.
        yield warp.barrier()  # device-wide: all partials are in t
        if warp.dmm_id == 0:
            for idx, mask in contiguous_range_steps(
                warp, active_dmms, num_threads=q, tids=warp.local_tids
            ):
                vals = yield warp.read(t, idx, mask=mask)
                yield warp.write(s, idx, vals, mask=mask)
            yield warp.sync_dmm()
            yield from tree_reduce_steps(
                warp,
                s,
                active_dmms,
                scope=BarrierScope.DMM,
                num_threads=q,
                tids=warp.local_tids,
                combine=combine,
            )
            if leader.any():
                total = yield warp.read(s, 0, mask=leader)
                yield warp.write(out, 0, total, mask=leader)

    return program


def _prepare(
    engine: HMMEngine, values: np.ndarray, shares: list[int]
) -> tuple[ArrayHandle, list[ArrayHandle], ArrayHandle, ArrayHandle, int]:
    vals = np.asarray(values, dtype=np.float64).ravel()
    active = sum(1 for s in shares if s > 0)
    a = engine.global_from(vals, "sum.in")
    t = engine.alloc_global(max(active, 1), "sum.partials")
    out = engine.alloc_global(1, "sum.out")
    shared = []
    for i, share in enumerate(shares):
        size = max(share, active if i == 0 else 1, 1)
        shared.append(engine.alloc_shared(i, size, "sum.scratch"))
    return a, shared, t, out, active


def hmm_sum(
    engine: HMMEngine,
    values: np.ndarray,
    num_threads: int,
    *,
    trace: TraceRecorder | None = None,
) -> tuple[float, RunReport]:
    """Sum ``values`` on the HMM with ``num_threads`` threads (Theorem 7).

    Returns ``(total, report)``.  Allocates fresh global/shared arrays on
    ``engine``; reuse an engine across calls only for related experiments
    (its allocator is bump-pointer).
    """
    shares = split_threads(num_threads, engine.params.num_dmms)
    a, shared, t, out, active = _prepare(engine, values, shares)
    n = np.asarray(values).size
    report = engine.launch(
        hmm_sum_kernel(a, n, shared, t, out, active),
        num_threads,
        trace=trace,
        label="hmm-sum",
    )
    return float(out.to_numpy()[0]), report


def hmm_sum_single_dmm(
    engine: HMMEngine,
    values: np.ndarray,
    num_threads: int,
    *,
    trace: TraceRecorder | None = None,
) -> tuple[float, RunReport]:
    """Sum ``values`` using only ``DMM(0)`` (Lemma 6, the "straightforward"
    algorithm).

    All ``num_threads`` threads run on one DMM, so the column-sum phase
    can hide at most ``num_threads/w`` of the global latency — the
    shortfall Theorem 7's all-DMM version eliminates.  Returns
    ``(total, report)``.
    """
    shares = [num_threads] + [0] * (engine.params.num_dmms - 1)
    a, shared, t, out, active = _prepare(engine, values, shares)
    n = np.asarray(values).size
    report = engine.launch(
        hmm_sum_kernel(a, n, shared, t, out, active),
        num_threads,
        threads_per_dmm=shares,
        trace=trace,
        label="hmm-sum-single-dmm",
    )
    return float(out.to_numpy()[0]), report


def hmm_partial_sum_kernel(
    a: ArrayHandle,
    n: int,
    shared: list[ArrayHandle],
    t: ArrayHandle,
):
    """Kernel factory for phases 1-2 only: one partial sum per DMM.

    Used by the multi-launch recursive driver; ``t[i]`` receives
    ``DMM(i)``'s partial sum.
    """
    if n < 1:
        raise ConfigurationError(f"sum requires n >= 1, got {n}")

    def program(warp: WarpContext):
        q = warp.threads_in_dmm
        s = shared[warp.dmm_id]
        acc = np.zeros(warp.num_lanes, dtype=np.float64)
        idx_mat, tails = contiguous_range_parts(warp, n)
        if idx_mat is not None:
            vals_mat = yield warp.read_range(a, idx_mat, compute=1)
            for vals in vals_mat:
                acc += vals
        for idx, mask in tails:
            vals = yield warp.read(a, idx, mask=mask)
            yield warp.compute(1)
            acc += vals
        yield warp.write(s, warp.local_tids, acc)
        yield warp.sync_dmm()
        yield from tree_reduce_steps(
            warp,
            s,
            q,
            scope=BarrierScope.DMM,
            num_threads=q,
            tids=warp.local_tids,
        )
        leader = warp.local_tids == 0
        if leader.any():
            partial = yield warp.read(s, 0, mask=leader)
            yield warp.write(t, warp.dmm_id, partial, mask=leader)

    return program


def hmm_sum_recursive(
    engine: HMMEngine,
    values: np.ndarray,
    num_threads: int,
    *,
    trace: TraceRecorder | None = None,
) -> tuple[float, int]:
    """Sum by repeated kernel launches (the recursion Theorem 7 sketches
    to drop its size conditions; also the classic CUDA multi-kernel
    reduction).

    While the array is larger than one DMM's thread share, a
    partial-sum launch (phases 1-2 of Theorem 7) reduces ``n`` values to
    one per DMM; the final launch runs the full single-launch algorithm.
    Returns ``(total, total_cycles)``; cycles across launches are summed,
    modeling back-to-back kernel launches.
    """
    current = np.asarray(values, dtype=np.float64).ravel()
    total_cycles = 0
    d = engine.params.num_dmms
    w = engine.params.width
    while current.size > max(d * w, 1):
        p_eff = min(num_threads, current.size)
        shares = split_threads(p_eff, d)
        active = sum(1 for s in shares if s > 0)
        a = engine.global_from(current, "rsum.in")
        t = engine.alloc_global(max(active, 1), "rsum.partials")
        shared = [
            engine.alloc_shared(i, max(share, 1), "rsum.scratch")
            for i, share in enumerate(shares)
        ]
        report = engine.launch(
            hmm_partial_sum_kernel(a, current.size, shared, t),
            p_eff,
            trace=trace,
            label="hmm-sum-pass",
        )
        total_cycles += report.cycles
        current = t.to_numpy()[:active]
    total, report = hmm_sum(engine, current, min(num_threads, current.size), trace=trace)
    total_cycles += report.cycles
    return total, total_cycles


def hmm_reduce(
    engine: HMMEngine,
    values: np.ndarray,
    num_threads: int,
    op: str = "sum",
    *,
    trace: TraceRecorder | None = None,
) -> tuple[float, RunReport]:
    """Reduce ``values`` with a named operation (Theorem 7 structure).

    ``op`` is one of ``sum``, ``max``, ``min``, ``prod``.  Returns
    ``(result, report)``.
    """
    shares = split_threads(num_threads, engine.params.num_dmms)
    a, shared, t, out, active = _prepare(engine, values, shares)
    n = np.asarray(values).size
    report = engine.launch(
        hmm_sum_kernel(a, n, shared, t, out, active, op=op),
        num_threads,
        trace=trace,
        label=f"hmm-reduce-{op}",
    )
    return float(out.to_numpy()[0]), report
