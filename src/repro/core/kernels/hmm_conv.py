"""Direct convolution on the HMM (paper Section IX, Theorem 9).

The three-step algorithm:

1. **Copy in** — the output ``z`` is partitioned into ``d`` chunks of
   ``~n/d``; ``DMM(i)``'s ``q = p/d`` threads copy ``x`` (``k`` cells)
   and its slice of ``y`` (``n/d + k - 1`` cells) from the global memory
   into their shared memory.  All DMMs' transactions share the single
   global pipeline; contiguous access keeps the cost at
   ``O((n + dk)/w + (n + dk)·l/p + l)``.
2. **Compute** — each DMM runs the Theorem 8 convolution entirely in its
   latency-1 shared memory: ``O(nk/(dw) + nk/p + log k)``.
3. **Copy out** — each DMM writes its ``n/d`` results back to the global
   ``z`` (contiguous), no more expensive than step 1.

Total: ``O((n + dk)/w + nk/(dw) + (n + dk)·l/p + l + log k)`` — Theorem
9; with ``k >= lw/d`` this is ``O(n/w + nk/(dw) + nl/p + l + log k)``
(Corollary 10), which matches the lower bounds, so the algorithm is
optimal.  The ``d``-fold speed-up term ``nk/(dw)`` — versus ``nk/w`` on
a single machine — is what the HMM's multiple shared memories buy.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError
from repro.machine.hmm import HMMEngine, split_threads
from repro.machine.memory import ArrayHandle
from repro.machine.ops import BarrierScope
from repro.machine.report import RunReport
from repro.machine.trace import TraceRecorder
from repro.machine.warp import WarpContext
from repro.core.kernels.contiguous import copy_range_steps
from repro.core.kernels.convolution import convolution_steps, scratch_blocks_needed

__all__ = ["hmm_convolution_kernel", "hmm_convolution"]


def _chunk_bounds(n: int, d: int, i: int) -> tuple[int, int]:
    """Output range ``[lo, hi)`` of ``DMM(i)`` under even chunking."""
    chunk = -(-n // d)  # ceil(n / d)
    lo = min(i * chunk, n)
    hi = min(lo + chunk, n)
    return lo, hi


def hmm_convolution_kernel(
    x: ArrayHandle,
    y: ArrayHandle,
    z: ArrayHandle,
    k: int,
    n: int,
    sx: list[ArrayHandle],
    sy: list[ArrayHandle],
    sz: list[ArrayHandle],
    szblk: list[ArrayHandle | None],
    active_dmms: int,
):
    """Kernel factory for the Theorem 9 algorithm.

    ``sx`` / ``sy`` / ``sz`` / ``szblk`` hold each DMM's shared-memory
    staging arrays (``szblk[i]`` may be ``None`` when that DMM uses at
    most one thread per output).  ``active_dmms`` is the number of DMMs
    that received threads — the output is chunked over those only, so a
    launch with fewer threads than DMMs still covers every output.
    """
    if k < 1 or n < 1:
        raise ConfigurationError(f"convolution requires k, n >= 1; got k={k}, n={n}")

    def program(warp: WarpContext):
        i = warp.dmm_id
        q = warp.threads_in_dmm
        lo, hi = _chunk_bounds(n, active_dmms, i)
        cn = hi - lo  # this DMM's output count
        if cn == 0:
            return  # more DMMs than chunks: nothing to do

        # Step 1: copy x and the y slice into shared memory.
        yield from copy_range_steps(
            warp, x, 0, sx[i], 0, k, num_threads=q, tids=warp.local_tids
        )
        yield from copy_range_steps(
            warp, y, lo, sy[i], 0, cn + k - 1,
            num_threads=q, tids=warp.local_tids,
        )
        yield warp.sync_dmm()

        # Step 2: convolve inside the shared memory (latency 1).
        yield from convolution_steps(
            warp,
            sx[i],
            sy[i],
            sz[i],
            k,
            cn,
            num_threads=q,
            tids=warp.local_tids,
            scope=BarrierScope.DMM,
            zblk=szblk[i],
        )
        yield warp.sync_dmm()

        # Step 3: copy the chunk of z back to the global memory.
        yield from copy_range_steps(
            warp, sz[i], 0, z, lo, cn, num_threads=q, tids=warp.local_tids
        )

    return program


def hmm_convolution(
    engine: HMMEngine,
    x_values: np.ndarray,
    y_values: np.ndarray,
    num_threads: int,
    *,
    trace: TraceRecorder | None = None,
) -> tuple[np.ndarray, RunReport]:
    """Convolve ``x`` with ``y`` on the HMM (Theorem 9).

    ``x`` has length ``k``; ``y`` must have length ``n + k - 1`` with
    ``k <= n``.  Returns ``(z, report)`` where ``z`` has length ``n``.
    """
    xv = np.asarray(x_values, dtype=np.float64).ravel()
    yv = np.asarray(y_values, dtype=np.float64).ravel()
    k = xv.size
    n = yv.size - k + 1
    if k < 1 or n < 1:
        raise ConfigurationError(
            f"need len(x) >= 1 and len(y) >= len(x); got {xv.size}, {yv.size}"
        )
    if k > n:
        raise ConfigurationError(f"the paper assumes k <= n; got k={k}, n={n}")

    d = engine.params.num_dmms
    shares = split_threads(num_threads, d)
    active = sum(1 for s in shares if s > 0)
    x = engine.global_from(xv, "conv.x")
    y = engine.global_from(yv, "conv.y")
    z = engine.alloc_global(n, "conv.z")
    sx: list[ArrayHandle] = []
    sy: list[ArrayHandle] = []
    sz: list[ArrayHandle] = []
    szblk: list[ArrayHandle | None] = []
    for i in range(d):
        lo, hi = _chunk_bounds(n, active, i) if i < active else (0, 0)
        cn = max(hi - lo, 1)
        sx.append(engine.alloc_shared(i, k, "conv.sx"))
        sy.append(engine.alloc_shared(i, cn + k - 1, "conv.sy"))
        sz.append(engine.alloc_shared(i, cn, "conv.sz"))
        blocks = scratch_blocks_needed(k, cn, max(shares[i], 1))
        if blocks > 1:
            szblk.append(engine.alloc_shared(i, blocks * cn, "conv.szblk"))
        else:
            szblk.append(None)
    report = engine.launch(
        hmm_convolution_kernel(x, y, z, k, n, sx, sy, sz, szblk, active),
        num_threads,
        trace=trace,
        label="hmm-convolution",
    )
    return z.to_numpy(), report
