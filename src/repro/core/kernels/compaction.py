"""Stream compaction on the HMM (extension).

``compact(values, keep)`` gathers the kept elements contiguously while
preserving order — the GPU filter primitive, and the classic *consumer*
of prefix-sums: scan the 0/1 keep flags to get each survivor's output
slot, then scatter.

The scatter is well-behaved on the models: within a warp the
destination indices are strictly increasing with gaps only where
elements were dropped, so a warp's writes span at most two address
groups (UMM) and hit distinct banks (DMM) — coalescing degrades
gracefully with the drop rate instead of collapsing.

Built entirely from library pieces: the Theorem 7-style HMM scan
computes the slots, one more contiguous sweep scatters.  Cost
``O(n/w + nl/p + l + log n)`` — the scan dominates.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError
from repro.machine.hmm import HMMEngine
from repro.machine.trace import TraceRecorder
from repro.machine.warp import WarpContext
from repro.core.kernels.contiguous import contiguous_range_steps
from repro.core.kernels.prefix import hmm_prefix_sums

__all__ = ["hmm_compact"]


def hmm_compact(
    engine: HMMEngine,
    values,
    keep,
    num_threads: int,
    *,
    trace: TraceRecorder | None = None,
) -> tuple[np.ndarray, int]:
    """Keep ``values[i]`` where ``keep[i]``; returns ``(kept, cycles)``.

    ``keep`` is a boolean (or 0/1) array of the same length.  Runs as
    two launches — the HMM prefix-sum of the flags, then the scatter —
    with cycles summed (back-to-back kernels, the CUDA idiom).  Order
    is preserved; an all-false ``keep`` returns an empty array.
    """
    vals = np.asarray(values, dtype=np.float64).ravel()
    flags = np.asarray(keep).ravel().astype(np.float64)
    n = vals.size
    if n < 1:
        raise ConfigurationError("compact requires a non-empty input")
    if flags.size != n:
        raise ConfigurationError(
            f"keep has {flags.size} entries but values has {n}"
        )
    if not np.isin(flags, (0.0, 1.0)).all():
        raise ConfigurationError("keep must be boolean / 0-1 valued")

    # Launch 1: inclusive scan of the flags -> output slot + 1.
    slots, scan_report = hmm_prefix_sums(engine, flags, num_threads,
                                         trace=trace)
    kept_count = int(slots[-1])

    # Launch 2: gather-scatter using the slots.
    data = engine.global_from(vals, "compact.in")
    slot_arr = engine.global_from(slots, "compact.slots")
    flag_arr = engine.global_from(flags, "compact.keep")
    out = engine.alloc_global(max(kept_count, 1), "compact.out")

    def program(warp: WarpContext):
        for idx, mask in contiguous_range_steps(warp, n):
            v = yield warp.read(data, idx, mask=mask)
            f = yield warp.read(flag_arr, idx, mask=mask)
            s = yield warp.read(slot_arr, idx, mask=mask)
            write_mask = mask & (f > 0)
            dest = np.where(write_mask, s - 1, 0).astype(np.int64)
            yield warp.write(out, dest, v, mask=write_mask)

    scatter_report = engine.launch(program, num_threads, trace=trace,
                                   label="hmm-compact-scatter")
    total_cycles = scan_report.cycles + scatter_report.cycles
    if kept_count == 0:
        return np.empty(0), total_cycles
    return out.to_numpy()[:kept_count], total_cycles
