"""Histograms on the HMM (extension).

Histogramming is the canonical *scatter-with-collisions* GPU workload:
the naive kernel — every thread read-modify-writes global bins — both
races (the model's arbitrary-CRCW write drops colliding increments; the
models have no atomics) and serializes on hot bins.  The standard
solution maps directly onto the HMM:

1. each DMM keeps a **private histogram** in its shared memory, updated
   by exactly one warp (intra-warp lane serialization handles same-bin
   collisions within the warp; a single warp per histogram removes
   cross-warp races by construction);
2. a device barrier, then the private histograms are **merged** through
   the global memory with a contiguous tree combine.

Returns exact counts — validated against ``numpy.bincount`` — at cost
``O(n·c/p' + n/w + bins·d/w + l)`` where ``c`` is the per-item
serialization factor and ``p'`` the updating threads.  The racy naive
kernel is also provided (:func:`hmm_histogram_racy`) because the trace
race detector flagging it is itself a library feature under test.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError
from repro.machine.hmm import HMMEngine, split_threads
from repro.machine.report import RunReport
from repro.machine.trace import TraceRecorder
from repro.machine.warp import WarpContext
from repro.core.kernels.contiguous import contiguous_range_steps

__all__ = ["hmm_histogram", "hmm_histogram_racy"]


def _check_inputs(values, bins: int) -> np.ndarray:
    vals = np.asarray(values, dtype=np.float64).ravel()
    if vals.size < 1:
        raise ConfigurationError("histogram requires a non-empty input")
    if bins < 1:
        raise ConfigurationError(f"bins must be >= 1, got {bins}")
    if (vals < 0).any() or (vals >= bins).any():
        raise ConfigurationError(
            f"values must be integer bin ids in [0, {bins}); "
            "bin your data host-side first"
        )
    if not np.allclose(vals, np.round(vals)):
        raise ConfigurationError("values must be integral bin ids")
    return vals


def hmm_histogram(
    engine: HMMEngine,
    values,
    bins: int,
    *,
    trace: TraceRecorder | None = None,
) -> tuple[np.ndarray, RunReport]:
    """Exact histogram of integer bin ids on the HMM.

    Uses one updating warp per DMM (the private-histogram pattern);
    additional launched warps idle through the update phase and help
    with the merge.  Returns ``(counts, report)``.
    """
    vals = _check_inputs(values, bins)
    n = vals.size
    d = engine.params.num_dmms
    w = engine.params.width
    shares = split_threads(min(engine_threads(engine, d, w), d * w), d)
    active = sum(1 for s in shares if s > 0)

    data = engine.global_from(vals, "hist.data")
    gpart = engine.alloc_global(active * bins, "hist.partial")
    gout = engine.alloc_global(bins, "hist.out")
    shist = [
        engine.alloc_shared(i, bins, "hist.local") for i in range(d)
    ]
    chunk = -(-n // active)

    def program(warp: WarpContext):
        i = warp.dmm_id
        s = shist[i]
        lanes = warp.local_tids
        lo = min(i * chunk, n)
        hi = min(lo + chunk, n)
        cn = hi - lo

        # Zero the private histogram.
        for idx, mask in contiguous_range_steps(
            warp, bins, num_threads=warp.threads_in_dmm, tids=lanes
        ):
            yield warp.write(s, idx, 0.0, mask=mask)
        yield warp.sync_dmm()

        if cn > 0:
            # One warp per DMM updates; coalesced reads of the chunk,
            # lane-serialized RMW on the private bins.
            share = -(-cn // warp.width)
            for j in range(share):
                idx = lo + lanes * share + j
                mask = (lanes * share + j < cn)
                v = yield warp.read(data, np.where(mask, idx, 0), mask=mask)
                bin_idx = v.astype(np.int64)
                for lane in range(warp.num_lanes):
                    lane_mask = mask & (warp.lanes == lane)
                    if not lane_mask.any():
                        continue
                    h = yield warp.read(
                        s, np.where(lane_mask, bin_idx, 0), mask=lane_mask
                    )
                    yield warp.compute(1)
                    yield warp.write(
                        s, np.where(lane_mask, bin_idx, 0), h + 1.0,
                        mask=lane_mask,
                    )
        yield warp.sync_dmm()

        # Publish the private histogram contiguously.
        for idx, mask in contiguous_range_steps(
            warp, bins, num_threads=warp.threads_in_dmm, tids=lanes
        ):
            v = yield warp.read(s, idx, mask=mask)
            yield warp.write(gpart, i * bins + idx, v, mask=mask)
        yield warp.barrier()

        # DMM(0) merges the d partial histograms (contiguous reads).
        if i == 0:
            for idx, mask in contiguous_range_steps(
                warp, bins, num_threads=warp.threads_in_dmm, tids=lanes
            ):
                total = np.zeros(warp.num_lanes, dtype=np.float64)
                for k in range(active):
                    v = yield warp.read(gpart, k * bins + idx, mask=mask)
                    yield warp.compute(1)
                    total += v
                yield warp.write(gout, idx, total, mask=mask)

    report = engine.launch(
        program,
        sum(shares),
        threads_per_dmm=shares,
        trace=trace,
        label="hmm-histogram",
    )
    return gout.to_numpy(), report


def hmm_histogram_racy(
    engine: HMMEngine,
    values,
    bins: int,
    num_threads: int,
    *,
    trace: TraceRecorder | None = None,
) -> tuple[np.ndarray, RunReport]:
    """The naive (WRONG) histogram: direct global read-modify-write.

    Kept as the didactic counterpart: it loses colliding increments
    under the arbitrary-CRCW rule, and the race detector flags it.
    Returns ``(counts, report)`` — the counts will generally be too low.
    """
    vals = _check_inputs(values, bins)
    n = vals.size
    data = engine.global_from(vals, "hist.data")
    gout = engine.alloc_global(bins, "hist.out")

    def program(warp: WarpContext):
        for idx, mask in contiguous_range_steps(warp, n):
            v = yield warp.read(data, idx, mask=mask)
            bin_idx = v.astype(np.int64)
            h = yield warp.read(gout, np.where(mask, bin_idx, 0), mask=mask)
            yield warp.compute(1)
            yield warp.write(gout, np.where(mask, bin_idx, 0), h + 1.0, mask=mask)

    report = engine.launch(program, num_threads, trace=trace,
                           label="hmm-histogram-racy")
    return gout.to_numpy(), report


def engine_threads(engine: HMMEngine, d: int, w: int) -> int:
    """Default updating-thread budget: one warp per DMM."""
    return d * w
