"""Direct convolution on the DMM and the UMM (paper Section VIII).

Problem: given ``x`` of length ``k`` and ``y`` of length ``n + k - 1``
(``k <= n``), compute ``z[j] = sum_{i<k} x[i] * y[j+i]`` for ``j < n``.

Theorem 8: with ``p`` threads (``n <= p <= nk``) the direct convolution
takes ``O(nk/w + nkl/p + l·log k)`` time units on the DMM and the UMM —
optimal.  Two regimes:

* ``p <= n`` — each thread evaluates ``~n/p`` outputs alone; every step
  reads ``x[i]`` (a broadcast: one address, one slot) and ``y[j+i]``
  (contiguous across the warp), accumulating in a register.
* ``p > n`` — ``q = p/n`` threads share each output.  Thread ``t·n + j``
  accumulates the ``t``-th block of ``~k/q`` products for output ``j``
  (all ``y`` accesses contiguous in ``j``), the block partials land in a
  scratch array ``zblk[t·n + j]``, and a pairwise tree over the block
  axis combines them in ``log q <= log k`` levels of contiguous accesses.

The core is exposed as the sub-generator :func:`convolution_steps` so the
HMM algorithm (Section IX) can run the identical code against shared
memory with DMM-scope barriers.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError
from repro.machine.memory import ArrayHandle
from repro.machine.ops import BarrierScope
from repro.machine.warp import WarpContext

__all__ = ["convolution_kernel", "convolution_steps", "scratch_blocks_needed"]


def scratch_blocks_needed(k: int, n: int, num_threads: int) -> int:
    """Number of per-output blocks ``q`` the ``p > n`` regime will use.

    Returns 1 when ``p <= n`` (no scratch array needed).
    """
    if num_threads <= n:
        return 1
    return min(num_threads // n, k)


def convolution_steps(
    warp: WarpContext,
    x: ArrayHandle,
    y: ArrayHandle,
    z: ArrayHandle,
    k: int,
    n: int,
    *,
    num_threads: int | None = None,
    tids: np.ndarray | None = None,
    scope: BarrierScope = BarrierScope.DEVICE,
    zblk: ArrayHandle | None = None,
):
    """Sub-generator computing ``z[0..n) = x (*) y`` with a thread subset.

    ``num_threads`` / ``tids`` default to the launch-wide values; the HMM
    kernel passes each DMM's local values plus ``scope=DMM``.  ``zblk``
    must hold ``q·n`` cells when ``q = scratch_blocks_needed(...) > 1``.
    """
    p = num_threads if num_threads is not None else warp.num_threads
    lane_tids = tids if tids is not None else warp.tids
    if k < 1 or n < 1:
        raise ConfigurationError(f"convolution requires k, n >= 1; got k={k}, n={n}")
    # (The paper's k <= n assumption is enforced at the problem level by
    # the launch helpers; per-chunk calls from the HMM kernel may see a
    # tail chunk shorter than k, which the loops handle correctly.)
    q = scratch_blocks_needed(k, n, p)

    if q == 1:
        # --- p <= n: one thread per output, n/p outputs each. ---------
        rounds = -(-n // p)
        for r in range(rounds):
            j = r * p + lane_tids
            mask = j < n
            if not mask.any():
                continue
            j_safe = np.where(mask, j, 0)
            acc = np.zeros(warp.num_lanes, dtype=np.float64)
            for i in range(k):
                xv = yield warp.read(x, i, mask=mask)
                yv = yield warp.read(y, j_safe + i, mask=mask)
                yield warp.compute(1)
                acc += xv * yv
            yield warp.write(z, j_safe, acc, mask=mask)
        return

    # --- p > n: q threads per output. ---------------------------------
    if zblk is None:
        raise ConfigurationError(
            f"p={p} > n={n} requires a scratch array of {q * n} cells"
        )
    if zblk.size < q * n:
        raise ConfigurationError(
            f"scratch array {zblk.describe()} holds {zblk.size} cells, "
            f"need {q * n}"
        )
    block = -(-k // q)  # ceil(k / q) products per block
    # Thread h = t*n + j accumulates block t of output j.
    t_idx = lane_tids // n
    j_idx = lane_tids % n
    live = t_idx < q  # threads beyond q*n idle
    acc = np.zeros(warp.num_lanes, dtype=np.float64)
    for r in range(block):
        i = t_idx * block + r
        mask = live & (i < k)
        if mask.any():
            i_safe = np.where(mask, i, 0)
            xv = yield warp.read(x, i_safe, mask=mask)
            yv = yield warp.read(y, np.where(mask, j_idx + i, 0), mask=mask)
            yield warp.compute(1)
            acc += xv * yv
    yield warp.write(zblk, np.where(live, t_idx * n + j_idx, 0), acc, mask=live)
    yield warp.barrier(scope)

    # Pairwise tree over the block axis: zblk[t] += zblk[t + half].
    m = q
    while m > 1:
        half = -(-m // 2)
        active = (m - half) * n  # cells receiving a partner
        rounds = -(-active // p)
        for r in range(rounds):
            h = r * p + lane_tids
            mask = h < active
            if mask.any():
                h_safe = np.where(mask, h, 0)
                lhs = yield warp.read(zblk, h_safe, mask=mask)
                rhs = yield warp.read(zblk, h_safe + half * n, mask=mask)
                yield warp.compute(1)
                yield warp.write(zblk, h_safe, lhs + rhs, mask=mask)
        yield warp.barrier(scope)
        m = half

    # Copy the combined block 0 into z.
    rounds = -(-n // p)
    for r in range(rounds):
        j = r * p + lane_tids
        mask = j < n
        if not mask.any():
            continue
        j_safe = np.where(mask, j, 0)
        vals = yield warp.read(zblk, j_safe, mask=mask)
        yield warp.write(z, j_safe, vals, mask=mask)


def convolution_kernel(
    x: ArrayHandle,
    y: ArrayHandle,
    z: ArrayHandle,
    k: int,
    n: int,
    *,
    zblk: ArrayHandle | None = None,
):
    """Kernel: direct convolution on a flat DMM or UMM (Theorem 8).

    Allocate ``zblk`` with ``scratch_blocks_needed(k, n, p) * n`` cells
    when launching with more threads than outputs.
    """

    def program(warp: WarpContext):
        yield from convolution_steps(warp, x, y, z, k, n, zblk=zblk)

    return program
