"""The sum on the DMM and the UMM (paper Section VI, Lemma 5).

The parallel summing algorithm repeats pairwise sums (paper Figure 5):

    for t = log n - 1 .. 0:
        for i = 0 .. 2^t - 1 in parallel:  a[i] <- a[i] + a[i + 2^t]

Every level performs three contiguous accesses (read the two operand
ranges, write the result range), so by Theorem 2 level ``t`` costs
``O(2^t / w + 2^t l / p + l)`` and the total is
``O(n/w + nl/p + l·log n)`` — Lemma 5, optimal on both machines.

The implementation generalizes to arbitrary ``n`` (not only powers of
two) by splitting each level at ``half = ceil(m / 2)`` and adding
``a[i + half]`` into ``a[i]`` for ``i < m - half``.
All reductions generalize to any commutative, associative elementwise
operation: pass ``combine`` (a numpy binary ufunc-like) to
:func:`tree_reduce_steps` or use :func:`reduce_kernel` with one of the
named operations.
"""

from __future__ import annotations

from typing import Callable, Iterator

import numpy as np

from repro.errors import ConfigurationError
from repro.machine.memory import ArrayHandle
from repro.machine.ops import BarrierScope
from repro.machine.warp import WarpContext
from repro.core.kernels.contiguous import contiguous_range_steps

__all__ = ["sum_kernel", "reduce_kernel", "tree_reduce_steps", "REDUCE_OPS"]

#: Named reductions: operation -> (combine function, identity element).
REDUCE_OPS: dict[str, tuple[Callable[[np.ndarray, np.ndarray], np.ndarray], float]] = {
    "sum": (np.add, 0.0),
    "max": (np.maximum, -np.inf),
    "min": (np.minimum, np.inf),
    "prod": (np.multiply, 1.0),
}


def tree_reduce_steps(
    warp: WarpContext,
    a: ArrayHandle,
    m: int,
    *,
    scope: BarrierScope = BarrierScope.DEVICE,
    num_threads: int | None = None,
    tids: np.ndarray | None = None,
    participate: bool = True,
    combine: Callable[[np.ndarray, np.ndarray], np.ndarray] = np.add,
):
    """Sub-generator: pairwise tree reduction of ``a[0..m)`` into ``a[0]``.

    Reusable inside larger kernels (``yield from`` it).  ``num_threads`` /
    ``tids`` scope the contiguous sweeps to a subset of threads — e.g.
    one DMM's threads reducing in their shared memory with
    ``scope=BarrierScope.DMM``.  Warps with ``participate=False`` still
    execute the barriers (required for a correct device-scope sync) but
    issue no memory traffic.

    Every level: read lhs range, read rhs range, one addition, write lhs
    range — three contiguous accesses (Theorem 2) plus one time unit of
    computation — then a barrier before the next level.
    """
    while m > 1:
        half = -(-m // 2)  # ceil(m / 2)
        active = m - half
        if participate and active > 0:
            for idx, mask in contiguous_range_steps(
                warp, active, num_threads=num_threads, tids=tids
            ):
                lhs = yield warp.read(a, idx, mask=mask)
                rhs = yield warp.read(a, idx + half, mask=mask)
                yield warp.compute(1)
                yield warp.write(a, idx, combine(lhs, rhs), mask=mask)
        yield warp.barrier(scope)
        m = half


def sum_kernel(a: ArrayHandle, n: int):
    """Kernel: sum ``a[0..n)`` into ``a[0]`` (Lemma 5).

    Launch on a DMM or UMM with ``p`` threads for
    ``O(n/w + nl/p + l·log n)`` time units.  The kernel also runs
    unchanged on the HMM with ``a`` in global memory — that is exactly the
    "use only the global memory" strawman that Section VII improves on.
    """
    if n < 1:
        raise ConfigurationError(f"sum requires n >= 1, got {n}")
    if n > a.size:
        raise ConfigurationError(
            f"sum over {n} cells exceeds array {a.describe()} of size {a.size}"
        )

    def program(warp: WarpContext):
        yield from tree_reduce_steps(warp, a, n)

    return program


def reduce_kernel(a: ArrayHandle, n: int, op: str = "sum"):
    """Kernel: reduce ``a[0..n)`` into ``a[0]`` with a named operation.

    ``op`` is one of :data:`REDUCE_OPS` (``sum``, ``max``, ``min``,
    ``prod``).  Identical structure and cost to :func:`sum_kernel` —
    Lemma 5 holds for any unit-time binary operation.
    """
    if op not in REDUCE_OPS:
        raise ConfigurationError(
            f"unknown reduction {op!r}; choose from {sorted(REDUCE_OPS)}"
        )
    if n < 1:
        raise ConfigurationError(f"reduce requires n >= 1, got {n}")
    if n > a.size:
        raise ConfigurationError(
            f"reduce over {n} cells exceeds array {a.describe()} of size {a.size}"
        )
    combine, _ = REDUCE_OPS[op]

    def program(warp: WarpContext):
        yield from tree_reduce_steps(warp, a, n, combine=combine)

    return program
