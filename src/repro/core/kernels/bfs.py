"""Level-synchronous breadth-first search on the HMM (extension).

The classic irregular multi-kernel GPU workload, composed entirely from
library pieces.  Each BFS level is the CUDA idiom, three launches:

1. **expand** — threads sweep the current frontier; for each frontier
   node they walk its CSR adjacency (scattered reads — the honest,
   uncoalesced heart of GPU BFS), check ``dist`` and flag unvisited
   neighbours.  Same-value flag collisions are benign under the
   arbitrary-CRCW rule.
2. **label** — a contiguous sweep sets ``dist = level + 1`` for flagged
   nodes and clears the flags.
3. **compact** — the HMM scan (:func:`~repro.core.kernels.compaction.
   hmm_compact` logic, inlined over the flags) builds the next frontier.

The host reads the frontier back between levels — exactly how a CUDA
host orchestrates level-synchronous BFS (host readbacks are untimed,
like all host-side staging in this library).  Cycles are summed over
every launch.

Validated against :func:`networkx.single_source_shortest_path_length`.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError
from repro.machine.hmm import HMMEngine
from repro.machine.trace import TraceRecorder
from repro.machine.warp import WarpContext
from repro.core.kernels.contiguous import contiguous_range_steps
from repro.core.kernels.prefix import hmm_prefix_sums
from repro.core.kernels.spmv import csr_from_dense

__all__ = ["hmm_bfs", "adjacency_from_graph"]


def adjacency_from_graph(graph) -> np.ndarray:
    """Dense 0/1 adjacency from a networkx graph (node order sorted)."""
    import networkx as nx

    nodes = sorted(graph.nodes())
    index = {u: i for i, u in enumerate(nodes)}
    n = len(nodes)
    adj = np.zeros((n, n))
    for u, v in graph.edges():
        adj[index[u], index[v]] = 1.0
        adj[index[v], index[u]] = 1.0
    return adj


def hmm_bfs(
    engine_factory,
    adjacency: np.ndarray,
    source: int,
    num_threads: int,
    *,
    trace: TraceRecorder | None = None,
) -> tuple[np.ndarray, int]:
    """BFS distances from ``source``; returns ``(dist, total_cycles)``.

    ``engine_factory`` is a zero-argument callable producing a fresh
    :class:`HMMEngine` (each level's launches run on one engine; the
    factory keeps per-level allocations from accumulating).
    Unreachable nodes get distance ``-1``.
    """
    adj = np.asarray(adjacency, dtype=np.float64)
    if adj.ndim != 2 or adj.shape[0] != adj.shape[1]:
        raise ConfigurationError(f"adjacency must be square, got {adj.shape}")
    n = adj.shape[0]
    if not (0 <= source < n):
        raise ConfigurationError(f"source {source} out of range for {n} nodes")
    indptr, indices, _data = csr_from_dense(adj)
    if indices.size == 0:
        indices = np.zeros(1, dtype=np.int64)

    dist_host = np.full(n, -1.0)
    dist_host[source] = 0.0
    frontier = np.array([source], dtype=np.int64)
    total_cycles = 0
    level = 0

    while frontier.size > 0:
        engine = engine_factory()
        g_indices = engine.global_from(indices.astype(np.float64), "bfs.adj")
        g_dist = engine.global_from(dist_host, "bfs.dist")
        g_frontier = engine.global_from(frontier.astype(np.float64), "bfs.frontier")
        g_flags = engine.alloc_global(n, "bfs.flags")
        fsize = frontier.size
        degrees = (indptr[frontier + 1] - indptr[frontier]).astype(np.int64)
        starts = indptr[frontier].astype(np.int64)

        def expand(warp: WarpContext):
            p = warp.num_threads
            rounds = -(-fsize // p)
            for rd in range(rounds):
                fi = rd * p + warp.tids
                mask = fi < fsize
                fi_safe = np.where(mask, fi, 0)
                # The frontier values are re-read on device (timed) even
                # though the host also knows them for loop bounds.
                yield warp.read(g_frontier, fi_safe, mask=mask)
                deg = np.where(mask, degrees[fi_safe], 0)
                base = starts[fi_safe]
                max_deg = int(deg.max()) if mask.any() else 0
                for k in range(max_deg):
                    nb_mask = mask & (k < deg)
                    if not nb_mask.any():
                        continue
                    v = yield warp.read(
                        g_indices, np.where(nb_mask, base + k, 0), mask=nb_mask
                    )
                    v_idx = v.astype(np.int64)
                    dv = yield warp.read(
                        g_dist, np.where(nb_mask, v_idx, 0), mask=nb_mask
                    )
                    fresh = nb_mask & (dv < 0)
                    yield warp.compute(1)
                    yield warp.write(
                        g_flags, np.where(fresh, v_idx, 0), 1.0, mask=fresh
                    )

        total_cycles += engine.launch(
            expand, num_threads, trace=trace, label=f"bfs-expand-{level}"
        ).cycles

        def label(warp: WarpContext):
            for idx, mask in contiguous_range_steps(warp, n):
                f = yield warp.read(g_flags, idx, mask=mask)
                hit = mask & (f > 0)
                yield warp.compute(1)
                yield warp.write(g_dist, np.where(hit, idx, 0),
                                 float(level + 1), mask=hit)

        total_cycles += engine.launch(
            label, num_threads, trace=trace, label=f"bfs-label-{level}"
        ).cycles

        # Next frontier = compact(arange(n), flags): scan + scatter.
        flags_host = g_flags.to_numpy()
        slots, scan_report = hmm_prefix_sums(
            engine, flags_host, num_threads, trace=trace
        )
        total_cycles += scan_report.cycles
        kept = int(slots[-1])
        if kept == 0:
            dist_host = g_dist.to_numpy()
            break
        g_slots = engine.global_from(slots, "bfs.slots")
        g_next = engine.alloc_global(max(kept, 1), "bfs.next")

        def scatter(warp: WarpContext):
            for idx, mask in contiguous_range_steps(warp, n):
                f = yield warp.read(g_flags, idx, mask=mask)
                s = yield warp.read(g_slots, idx, mask=mask)
                keep = mask & (f > 0)
                dest = np.where(keep, s - 1, 0).astype(np.int64)
                yield warp.write(g_next, dest, idx.astype(np.float64),
                                 mask=keep)

        total_cycles += engine.launch(
            scatter, num_threads, trace=trace, label=f"bfs-compact-{level}"
        ).cycles

        dist_host = g_dist.to_numpy()
        frontier = g_next.to_numpy()[:kept].astype(np.int64)
        level += 1

    return dist_host.astype(np.int64), total_cycles
