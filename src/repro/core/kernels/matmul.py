"""Tiled matrix algorithms on the HMM (extension).

Two canonical CUDA shared-memory patterns expressed in the model:

* :func:`hmm_matmul` — ``C = A @ B`` with ``w x w`` tiles staged in
  shared memory.  Lane ``j`` of a DMM's warp owns output *column* ``j``
  of the current tile, so every shared access is either a row read
  (conflict-free) or a same-address broadcast (free): the model confirms
  the pattern is conflict-free and all global traffic is coalesced.
* :func:`hmm_transpose` — ``B = A^T`` via shared-memory tiles, the
  classic bank-conflict demonstration.  Each tile row is read from global
  memory coalesced and written *transposed* into the shared tile: with
  the natural row stride ``w`` the transposed writes of a warp all land
  in one bank (a ``w``-way conflict per step); padding the stride to
  ``w + 1`` rotates consecutive rows across banks and removes every
  conflict.  The ``padded`` flag exposes both layouts so the ablation
  benchmark can measure exactly the ``w``-fold gap the DMM predicts.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError
from repro.machine.hmm import HMMEngine
from repro.machine.memory import ArrayHandle
from repro.machine.report import RunReport
from repro.machine.trace import TraceRecorder
from repro.machine.warp import WarpContext

__all__ = [
    "hmm_matmul_kernel",
    "hmm_matmul",
    "hmm_transpose_kernel",
    "hmm_transpose",
]


def _check_one_warp_per_dmm(warp: WarpContext, num_dmms: int) -> None:
    if warp.num_lanes != warp.width or warp.warp_in_dmm != 0:
        raise ConfigurationError(
            "tile kernels expect exactly one full warp per DMM "
            f"(launch with num_threads = d*w = {num_dmms * warp.width})"
        )


def hmm_matmul_kernel(
    a: ArrayHandle,
    b: ArrayHandle,
    c: ArrayHandle,
    m: int,
    sa: list[ArrayHandle],
    sb: list[ArrayHandle],
    num_dmms: int,
):
    """Kernel factory: ``C = A @ B`` for row-major ``m x m`` matrices.

    One warp per DMM; DMM ``i`` computes output tiles ``i, i+d, ...``
    (row-major tile order).  Shared tiles need ``w*w`` cells each.
    """

    def program(warp: WarpContext):
        w = warp.width
        if m % w:
            raise ConfigurationError(
                f"matrix size {m} must be a multiple of the width {w}"
            )
        _check_one_warp_per_dmm(warp, num_dmms)
        tiles = m // w
        i = warp.dmm_id
        lane = warp.local_tids  # lane j owns tile column j
        my_sa, my_sb = sa[i], sb[i]

        for tile_id in range(i, tiles * tiles, num_dmms):
            ti, tj = divmod(tile_id, tiles)
            acc_rows = np.zeros((w, w), dtype=np.float64)  # [r][lane]
            for tk in range(tiles):
                # Stage A(ti, tk) and B(tk, tj): coalesced row reads,
                # conflict-free row writes.
                for r in range(w):
                    av = yield warp.read(a, (ti * w + r) * m + tk * w + lane)
                    yield warp.write(my_sa, r * w + lane, av)
                    bv = yield warp.read(b, (tk * w + r) * m + tj * w + lane)
                    yield warp.write(my_sb, r * w + lane, bv)
                yield warp.sync_dmm()
                # acc[r][j] += A[r][kk] * B[kk][j]: the A read is a
                # broadcast (one address), the B read a conflict-free row.
                for kk in range(w):
                    bkj = yield warp.read(my_sb, kk * w + lane)
                    for r in range(w):
                        aik = yield warp.read(my_sa, r * w + kk)
                        yield warp.compute(1)
                        acc_rows[r] += aik * bkj
                yield warp.sync_dmm()
            for r in range(w):  # coalesced row writes of the C tile
                yield warp.write(c, (ti * w + r) * m + tj * w + lane, acc_rows[r])

    return program


def hmm_matmul(
    engine: HMMEngine,
    a_values: np.ndarray,
    b_values: np.ndarray,
    *,
    trace: TraceRecorder | None = None,
) -> tuple[np.ndarray, RunReport]:
    """Multiply two square matrices on the HMM; returns ``(C, report)``."""
    av = np.asarray(a_values, dtype=np.float64)
    bv = np.asarray(b_values, dtype=np.float64)
    if av.ndim != 2 or av.shape[0] != av.shape[1] or av.shape != bv.shape:
        raise ConfigurationError(
            f"need two equal square matrices; got {av.shape} and {bv.shape}"
        )
    m = av.shape[0]
    w = engine.params.width
    d = engine.params.num_dmms
    if m % w:
        raise ConfigurationError(f"matrix size {m} must be a multiple of width {w}")
    a = engine.global_from(av.ravel(), "mm.A")
    b = engine.global_from(bv.ravel(), "mm.B")
    c = engine.alloc_global(m * m, "mm.C")
    sa = engine.alloc_shared_all(w * w, "mm.sA")
    sb = engine.alloc_shared_all(w * w, "mm.sB")
    report = engine.launch(
        hmm_matmul_kernel(a, b, c, m, sa, sb, d),
        d * w,
        trace=trace,
        label="hmm-matmul",
    )
    return c.to_numpy().reshape(m, m), report


def hmm_transpose_kernel(
    a: ArrayHandle,
    b: ArrayHandle,
    m: int,
    tile: list[ArrayHandle],
    num_dmms: int,
    *,
    padded: bool = True,
):
    """Kernel factory: ``B = A^T`` via shared-memory tiles.

    One warp per DMM; DMM ``i`` handles tiles ``i, i+d, ...``.  Each step
    reads a tile row from ``A`` (coalesced), writes it into the shared
    tile *transposed* — lane ``j`` writes cell ``(j, r)``, i.e. address
    ``j * stride + r`` — then reads shared rows back (conflict-free) and
    writes coalesced rows of ``B``.  With ``stride = w`` the transposed
    write is a full ``w``-way bank conflict; ``stride = w + 1`` (padded)
    is conflict-free.
    """

    def program(warp: WarpContext):
        w = warp.width
        if m % w:
            raise ConfigurationError(
                f"matrix size {m} must be a multiple of the width {w}"
            )
        _check_one_warp_per_dmm(warp, num_dmms)
        stride = w + 1 if padded else w
        tiles = m // w
        i = warp.dmm_id
        lane = warp.local_tids
        my_tile = tile[i]

        for tile_id in range(i, tiles * tiles, num_dmms):
            ti, tj = divmod(tile_id, tiles)
            for r in range(w):
                av = yield warp.read(a, (ti * w + r) * m + tj * w + lane)
                # Transposed store: lane j -> shared cell (j, r).
                yield warp.write(my_tile, lane * stride + r, av)
            yield warp.sync_dmm()
            for r in range(w):
                tv = yield warp.read(my_tile, r * stride + lane)
                # B tile (tj, ti) receives the transposed rows, coalesced.
                yield warp.write(b, (tj * w + r) * m + ti * w + lane, tv)
            yield warp.sync_dmm()

    return program


def hmm_transpose(
    engine: HMMEngine,
    a_values: np.ndarray,
    *,
    padded: bool = True,
    trace: TraceRecorder | None = None,
) -> tuple[np.ndarray, RunReport]:
    """Transpose a square matrix on the HMM; returns ``(A^T, report)``.

    ``padded`` selects the conflict-free shared-tile layout (stride
    ``w + 1``) or the naive one (stride ``w``, ``w``-way conflicted).
    """
    av = np.asarray(a_values, dtype=np.float64)
    if av.ndim != 2 or av.shape[0] != av.shape[1]:
        raise ConfigurationError(f"need a square matrix; got {av.shape}")
    m = av.shape[0]
    w = engine.params.width
    d = engine.params.num_dmms
    if m % w:
        raise ConfigurationError(f"matrix size {m} must be a multiple of width {w}")
    a = engine.global_from(av.ravel(), "tr.A")
    b = engine.alloc_global(m * m, "tr.B")
    stride = w + 1 if padded else w
    tile = engine.alloc_shared_all(w * stride, "tr.tile")
    report = engine.launch(
        hmm_transpose_kernel(a, b, m, tile, d, padded=padded),
        d * w,
        trace=trace,
        label=f"hmm-transpose-{'padded' if padded else 'naive'}",
    )
    return b.to_numpy().reshape(m, m), report
