"""Contiguous memory access (paper Section IV).

The key technique of the memory machine models: ``p`` threads accessing
``n`` cells so that, at every step, each warp touches ``w`` *consecutive*
addresses — which fall in ``w`` distinct banks (no DMM conflicts) and in
one address group (full UMM coalescing).  The access pattern is

    for j = 0 .. n/p - 1:  thread(t) accesses a[j * p + t]

Lemma 1: the contiguous access of ``n`` cells takes
``O(n/w + nl/p + l)`` time units on the DMM and the UMM.
Theorem 2: the same bound holds for accessing up to ``w`` arrays of total
size ``n`` in turn.

These kernels are both measurement subjects (the contiguous-access
benchmarks) and building blocks reused by every other kernel in the
library.  :func:`strided_read` provides the anti-pattern — stride-``s``
access — used by the policy ablation benchmarks.
"""

from __future__ import annotations

from typing import Iterator, Sequence

import numpy as np

from repro.errors import ConfigurationError
from repro.machine.memory import ArrayHandle
from repro.machine.warp import WarpContext, full_mask

__all__ = [
    "contiguous_read",
    "contiguous_write",
    "contiguous_copy",
    "multi_array_access",
    "strided_read",
    "contiguous_range_parts",
    "contiguous_range_steps",
    "copy_range_steps",
]


def contiguous_range_parts(
    warp: WarpContext,
    n: int,
    *,
    num_threads: int | None = None,
    tids: np.ndarray | None = None,
) -> tuple[np.ndarray | None, list[tuple[np.ndarray, np.ndarray]]]:
    """Split the canonical contiguous sweep into full rounds and tail.

    Round ``j`` of the sweep has thread ``t`` handle index ``j * p + t``.
    Returns ``(full, tails)`` where ``full`` is the read-only
    ``(rounds, lanes)`` index matrix of all *full* rounds (every lane in
    range; ``None`` when there are none) — ready to feed
    :meth:`~repro.machine.warp.WarpContext.read_range` /
    ``write_range`` as one fused operation — and ``tails`` lists the
    ragged ``(index-vector, live-mask)`` rounds (at most one unless
    ``tids`` is sparse) that must stay masked single-step operations.
    ``num_threads`` / ``tids`` default to the launch-wide values but can
    be overridden for sweeps private to a thread subset (e.g. one DMM's
    block).  Rounds where this warp has no live lane are dropped — the
    model does not dispatch warps without pending requests.
    """
    p = num_threads if num_threads is not None else warp.num_threads
    lane_tids = tids if tids is not None else warp.tids
    rounds = -(-n // p)
    if rounds <= 0 or lane_tids.size == 0:
        return None, []
    # Round j is full iff j * p + max(tids) < n.
    n_full = min(rounds, max(0, (n - 1 - int(lane_tids.max())) // p + 1))
    idx_mat = None
    if n_full:
        idx_mat = np.arange(n_full, dtype=np.int64)[:, None] * p + lane_tids
        idx_mat.setflags(write=False)
    tails = []
    for j in range(n_full, rounds):
        idx = j * p + lane_tids
        mask = idx < n
        if not mask.any():
            continue
        tails.append((np.where(mask, idx, 0), mask))
    return idx_mat, tails


def contiguous_range_steps(
    warp: WarpContext,
    n: int,
    *,
    num_threads: int | None = None,
    tids: np.ndarray | None = None,
) -> Iterator[tuple[np.ndarray, np.ndarray]]:
    """Yield ``(indices, mask)`` pairs for the canonical contiguous sweep.

    The per-round form of :func:`contiguous_range_parts`, for kernels
    that interleave other operations between rounds (and so cannot fuse
    the sweep into one range operation).  Full rounds share one
    read-only all-ones mask, so the per-round cost is a generator resume
    rather than fresh numpy arithmetic.
    """
    idx_mat, tails = contiguous_range_parts(
        warp, n, num_threads=num_threads, tids=tids
    )
    if idx_mat is not None:
        ones = full_mask(idx_mat.shape[1])
        for j in range(idx_mat.shape[0]):
            yield idx_mat[j], ones
    yield from tails


def copy_range_steps(
    warp: WarpContext,
    src: ArrayHandle,
    src_offset: int,
    dst: ArrayHandle,
    dst_offset: int,
    count: int,
    *,
    num_threads: int | None = None,
    tids: np.ndarray | None = None,
):
    """Sub-generator: contiguous copy of ``count`` cells between arrays.

    Copies ``src[src_offset .. src_offset + count)`` to
    ``dst[dst_offset ..)`` with the canonical contiguous pattern, scoped
    to a thread subset via ``num_threads`` / ``tids`` (e.g. one DMM's
    threads staging global data into their shared memory).  Both the read
    and the write are conflict-free / fully coalesced provided the
    offsets are width-aligned.
    """
    if count <= 0:
        return
    for idx, mask in contiguous_range_steps(
        warp, count, num_threads=num_threads, tids=tids
    ):
        vals = yield warp.read(src, src_offset + idx, mask=mask)
        yield warp.write(dst, dst_offset + idx, vals, mask=mask)


def contiguous_read(a: ArrayHandle, n: int):
    """Kernel: read cells ``a[0..n)`` with the contiguous pattern.

    The values go nowhere (measurement kernel); use
    :func:`contiguous_copy` to move data.
    """
    _check_size(a, n)

    def program(warp: WarpContext):
        idx_mat, tails = contiguous_range_parts(warp, n)
        if idx_mat is not None:
            yield warp.read_range(a, idx_mat)
        for idx, mask in tails:
            yield warp.read(a, idx, mask=mask)

    return program


def contiguous_write(a: ArrayHandle, n: int, value: float = 0.0):
    """Kernel: write ``value`` to cells ``a[0..n)`` contiguously."""
    _check_size(a, n)

    def program(warp: WarpContext):
        idx_mat, tails = contiguous_range_parts(warp, n)
        if idx_mat is not None:
            yield warp.write_range(a, idx_mat, np.full(idx_mat.shape, value))
        for idx, mask in tails:
            yield warp.write(a, idx, np.full(warp.num_lanes, value), mask=mask)

    return program


def contiguous_copy(src: ArrayHandle, dst: ArrayHandle, n: int):
    """Kernel: copy ``src[0..n) -> dst[0..n)`` contiguously.

    Each round is a contiguous read followed by a contiguous write —
    two arrays accessed in turn, the Theorem 2 pattern.
    """
    _check_size(src, n)
    _check_size(dst, n)

    def program(warp: WarpContext):
        for idx, mask in contiguous_range_steps(warp, n):
            vals = yield warp.read(src, idx, mask=mask)
            yield warp.write(dst, idx, vals, mask=mask)

    return program


def multi_array_access(arrays: Sequence[ArrayHandle], sizes: Sequence[int]):
    """Kernel: contiguously read several arrays *in turn* (Theorem 2).

    Round ``j`` touches round ``j`` of array 1, then of array 2, ... so
    that each thread alternates between the arrays, keeping every warp
    transaction contiguous.  Theorem 2 allows up to ``w`` arrays of total
    size ``n`` in ``O(n/w + nl/p + l)`` time.
    """
    if len(arrays) != len(sizes):
        raise ConfigurationError(
            f"got {len(arrays)} arrays but {len(sizes)} sizes"
        )
    for a, n in zip(arrays, sizes):
        _check_size(a, n)

    def program(warp: WarpContext):
        p = warp.num_threads
        rounds = max((-(-n // p) for n in sizes), default=0)
        for j in range(rounds):
            for a, n in zip(arrays, sizes):
                idx = j * p + warp.tids
                mask = idx < n
                if not mask.any():
                    continue
                yield warp.read(a, np.where(mask, idx, 0), mask=mask)

    return program


def strided_read(a: ArrayHandle, n: int, stride: int):
    """Kernel: the contiguous access *anti-pattern* — stride-``s`` reads.

    Thread ``t`` of round ``j`` reads ``a[((j * p + t) * stride) mod n]``.
    With ``stride`` a multiple of the width this maximizes DMM bank
    conflicts; with ``stride > 1`` it touches many address groups per
    warp on the UMM.  Used by the policy-ablation benchmarks to show the
    cost the models attach to uncoalesced access.
    """
    _check_size(a, n)
    if stride < 1:
        raise ConfigurationError(f"stride must be >= 1, got {stride}")

    def program(warp: WarpContext):
        idx_mat, tails = contiguous_range_parts(warp, n)
        if idx_mat is not None:
            yield warp.read_range(a, (idx_mat * stride) % n)
        for idx, mask in tails:
            yield warp.read(a, (idx * stride) % n, mask=mask)

    return program


def _check_size(a: ArrayHandle, n: int) -> None:
    if n < 1:
        raise ConfigurationError(f"access size must be >= 1, got {n}")
    if n > a.size:
        raise ConfigurationError(
            f"access size {n} exceeds array {a.describe()} of size {a.size}"
        )
