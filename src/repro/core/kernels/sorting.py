"""Bitonic sorting on the memory machine models (extension).

Sorting is the stock benchmark of the memory-machines line of work, and
Batcher's bitonic network is the GPU-friendly choice: its
compare-exchange stages are oblivious and regular, so every warp
transaction is (nearly) contiguous — group count and bank-conflict
degree are at most 2 for sub-warp strides and exactly 1 otherwise.

* :func:`bitonic_sort_kernel` — the full network on a flat DMM/UMM:
  ``log n (log n + 1)/2`` stages of ``O(n/w + nl/p + l)`` each, i.e.
  ``O((n/w + nl/p + l)·log^2 n)`` time units.
* :func:`hmm_bitonic_sort` — the hierarchical version: stages whose
  stride fits inside a chunk run in the latency-1 shared memories
  (staged in bursts: one load/store per burst of sub-stages), and only
  the ``O(log^2 d)`` cross-chunk stages touch the global memory.  The
  latency bill drops from ``l·log^2 n`` to
  ``l·(log^2 d + log d·log(n/d))``-ish — the same structural win as
  Theorems 7/9.

Inputs of any length are padded to a power of two with ``+inf`` and the
padding is stripped from the result.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError
from repro.machine.engine import MachineEngine
from repro.machine.hmm import HMMEngine, split_threads
from repro.machine.memory import ArrayHandle
from repro.machine.report import RunReport
from repro.machine.trace import TraceRecorder
from repro.machine.warp import WarpContext
from repro.params import next_power_of_two
from repro.core.kernels.contiguous import copy_range_steps

__all__ = ["bitonic_sort_kernel", "flat_bitonic_sort", "hmm_bitonic_sort"]


def compare_exchange_steps(
    warp: WarpContext,
    arr: ArrayHandle,
    offset: int,
    count: int,
    j: int,
    k: int,
    *,
    global_base: int = 0,
    num_threads: int | None = None,
    tids: np.ndarray | None = None,
):
    """One (k, j) stage of the bitonic network over ``arr[offset..offset+count)``.

    ``global_base`` is the array-wide index of ``arr[offset]`` — the
    ascending/descending direction of each pair depends on the *global*
    index (bit ``k``), which is what lets the HMM version run chunk
    stages locally yet produce the exact global network.
    """
    p = num_threads if num_threads is not None else warp.num_threads
    lane_tids = tids if tids is not None else warp.tids
    pairs = count // 2
    rounds = -(-pairs // p)
    for r in range(rounds):
        pidx = r * p + lane_tids
        mask = pidx < pairs
        pidx_safe = np.where(mask, pidx, 0)
        # Insert a zero bit at position log2(j): the pair's low index.
        i = ((pidx_safe & ~(j - 1)) << 1) | (pidx_safe & (j - 1))
        partner = i | j
        gi = global_base + i
        ascending = (gi & k) == 0
        lo_v = yield warp.read(arr, offset + i, mask=mask)
        hi_v = yield warp.read(arr, offset + partner, mask=mask)
        yield warp.compute(1)
        small = np.minimum(lo_v, hi_v)
        big = np.maximum(lo_v, hi_v)
        yield warp.write(
            arr, offset + i, np.where(ascending, small, big), mask=mask
        )
        yield warp.write(
            arr, offset + partner, np.where(ascending, big, small), mask=mask
        )


def bitonic_sort_kernel(a: ArrayHandle, n: int):
    """Kernel: in-place ascending bitonic sort of ``a[0..n)``.

    ``n`` must be a power of two (use the launch helpers for general
    sizes).  Device barriers separate the stages.
    """
    if n < 1 or n & (n - 1):
        raise ConfigurationError(f"bitonic sort requires a power-of-two size, got {n}")

    def program(warp: WarpContext):
        k = 2
        while k <= n:
            j = k // 2
            while j >= 1:
                yield from compare_exchange_steps(warp, a, 0, n, j, k)
                yield warp.barrier()
                j //= 2
            k *= 2

    return program


def flat_bitonic_sort(
    engine: MachineEngine,
    values: np.ndarray,
    num_threads: int,
    *,
    trace: TraceRecorder | None = None,
) -> tuple[np.ndarray, RunReport]:
    """Sort ``values`` ascending on a flat machine."""
    vals = np.asarray(values, dtype=np.float64).ravel()
    if vals.size < 1:
        raise ConfigurationError("cannot sort an empty array")
    n = next_power_of_two(vals.size)
    a = engine.alloc(n, "sort.a")
    a.set(np.concatenate([vals, np.full(n - vals.size, np.inf)]))
    report = engine.launch(
        bitonic_sort_kernel(a, n), num_threads, trace=trace, label="flat-sort"
    )
    return a.to_numpy()[: vals.size], report


def hmm_bitonic_sort(
    engine: HMMEngine,
    values: np.ndarray,
    num_threads: int,
    *,
    trace: TraceRecorder | None = None,
) -> tuple[np.ndarray, RunReport]:
    """Sort ``values`` ascending on the HMM.

    Stages with stride ``j < chunk`` run inside the shared memories
    (loaded once per burst); only strides ``j >= chunk`` — there are
    ``O(log^2 d)`` of them — go through the latency-``l`` global port.
    """
    vals = np.asarray(values, dtype=np.float64).ravel()
    if vals.size < 1:
        raise ConfigurationError("cannot sort an empty array")
    n = next_power_of_two(vals.size)
    d = engine.params.num_dmms
    shares = split_threads(num_threads, d)
    avail = sum(1 for s in shares if s > 0)
    # Chunks must be a power-of-two count with chunk >= 2.
    active = 1
    while active * 2 <= min(avail, n // 2 if n >= 2 else 1):
        active *= 2
    chunk = n // active

    a = engine.alloc_global(n, "sort.a")
    a.set(np.concatenate([vals, np.full(n - vals.size, np.inf)]))
    stage = [
        engine.alloc_shared(i, chunk if i < active else 1, "sort.stage")
        for i in range(d)
    ]
    # Re-split the threads over the active DMMs only.
    shares = [0] * d
    for i, s in enumerate(split_threads(num_threads, active)):
        shares[i] = s

    def program(warp: WarpContext):
        i = warp.dmm_id
        q = warp.threads_in_dmm
        local = warp.local_tids
        base = i * chunk

        def shared_burst(k_now: int, j_top: int):
            """Run sub-stages j_top, j_top/2, .., 1 of stage k_now (and,
            when k_now <= chunk, all later k's too) inside shared."""
            yield from copy_range_steps(
                warp, a, base, stage[i], 0, chunk, num_threads=q, tids=local
            )
            yield warp.sync_dmm()
            j = j_top
            while j >= 1:
                yield from compare_exchange_steps(
                    warp, stage[i], 0, chunk, j, k_now,
                    global_base=base, num_threads=q, tids=local,
                )
                yield warp.sync_dmm()
                j //= 2
            yield from copy_range_steps(
                warp, stage[i], 0, a, base, chunk, num_threads=q, tids=local
            )

        k = 2
        while k <= n:
            j = k // 2
            while j >= 1:
                if j < chunk:
                    # The rest of this k fits in the chunks.
                    yield from shared_burst(k, j)
                    yield warp.barrier()
                    break
                # Cross-chunk stage through the global memory.
                yield from compare_exchange_steps(
                    warp, a, 0, n, j, k,
                    num_threads=warp.num_threads, tids=warp.tids,
                )
                yield warp.barrier()
                j //= 2
            k *= 2

    report = engine.launch(
        program,
        num_threads,
        threads_per_dmm=shares,
        trace=trace,
        label="hmm-sort",
    )
    return a.to_numpy()[: vals.size], report
