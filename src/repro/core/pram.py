"""CREW PRAM baseline (Table I, column "PRAM").

The Parallel Random Access Machine used by the paper as the classical
reference model: ``p`` processors, a shared memory with no banks, no
latency, no conflicts; every processor executes one fundamental operation
(``x <- y (op) z``) per time unit.

:class:`PRAM` executes algorithms in *rounds*: one round is a parallel
step in which each of the ``p`` processors performs at most one
operation, costing exactly one time unit.  The two algorithms of the
paper's Section V are provided:

* :meth:`PRAM.sum` — Lemma 3: group-wise folds then a pairwise tree,
  ``O(n/p + log n)`` time;
* :meth:`PRAM.convolution` — Lemma 4: ``O(nk/p + log k)`` time.

Rounds are genuinely executed (vectorized with numpy), so the results are
computed, not just costed.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError

__all__ = ["PRAM", "PRAMResult"]


@dataclass(frozen=True)
class PRAMResult:
    """Value and cost of a PRAM computation."""

    value: np.ndarray | float
    #: Elapsed time units (parallel rounds).
    cycles: int
    #: Total operations across processors (work).
    work: int


class PRAM:
    """A CREW PRAM with ``p`` processors."""

    def __init__(self, num_processors: int) -> None:
        if num_processors < 1:
            raise ConfigurationError(
                f"num_processors must be >= 1, got {num_processors}"
            )
        self.num_processors = num_processors

    @property
    def p(self) -> int:
        """Paper notation alias for :attr:`num_processors`."""
        return self.num_processors

    # ------------------------------------------------------------------
    def sum(self, a: np.ndarray) -> PRAMResult:
        """Lemma 3: the sum of ``n`` numbers in ``O(n/p + log n)`` rounds.

        Partition the input into ``g = min(p, n)`` groups of ``~n/g``
        elements; each group folds sequentially (one addition per round,
        all groups in parallel), then a pairwise tree combines the ``g``
        partial sums in ``ceil(log2 g)`` rounds.
        """
        a = np.asarray(a, dtype=np.float64)
        n = a.size
        if n < 1:
            raise ConfigurationError("sum requires a non-empty array")
        g = min(self.p, n)
        cycles = 0
        work = 0

        # Group phase: group j folds a[j::g]; round r adds element r+1.
        rounds = -(-n // g)  # ceil(n / g)
        acc = np.zeros(g, dtype=np.float64)
        acc[: min(g, n)] = a[:g]
        for r in range(1, rounds):
            idx = r * g + np.arange(g)
            live = idx < n
            acc[live] += a[idx[live]]
            cycles += 1
            work += int(live.sum())

        # Tree phase: pairwise sums of the g partials (Figure 5 shape).
        m = g
        while m > 1:
            half = -(-m // 2)  # ceil(m / 2)
            lo = m - half  # elements [0, lo) receive a partner
            acc[:lo] += acc[half : half + lo]
            m = half
            cycles += 1
            work += lo
        return PRAMResult(value=float(acc[0]), cycles=cycles, work=work)

    # ------------------------------------------------------------------
    def convolution(self, x: np.ndarray, y: np.ndarray) -> PRAMResult:
        """Lemma 4: direct convolution in ``O(nk/p + log k)`` rounds.

        ``z[j] = sum_{i<k} x[i] * y[j+i]`` for ``j < n``.  With ``p <= n``
        each processor evaluates ``~n/p`` outputs sequentially; with
        ``p > n``, ``q = p/n`` processors share each output, folding
        ``k/q``-element blocks then combining with a pairwise tree.
        """
        x = np.asarray(x, dtype=np.float64)
        y = np.asarray(y, dtype=np.float64)
        k = x.size
        n = y.size - k + 1
        if k < 1 or n < 1:
            raise ConfigurationError(
                f"convolution requires len(x) >= 1 and len(y) >= len(x); "
                f"got k={k}, len(y)={y.size}"
            )
        z = np.zeros(n, dtype=np.float64)
        cycles = 0
        work = 0

        if self.p <= n:
            # Each processor evaluates outputs j, j+p, j+2p, ... in turn;
            # one batch of p outputs costs 2k - 1 rounds (k multiplication
            # rounds interleaved with k - 1 addition rounds).
            for base in range(0, n, self.p):
                js = np.arange(base, min(base + self.p, n))
                acc = x[0] * y[js]
                cycles += 1
                work += js.size
                for i in range(1, k):
                    acc += x[i] * y[js + i]
                    cycles += 2  # one multiplication round, one addition round
                    work += 2 * js.size
                z[js] = acc
            return PRAMResult(value=z, cycles=cycles, work=work)

        # p > n: q processors per output.
        q = min(self.p // n, k)
        block = -(-k // q)  # ceil(k / q): products per processor
        # Partial products: partial[t, j] = sum over block t of x[i] y[j+i].
        partial = np.zeros((q, n), dtype=np.float64)
        for r in range(block):
            i = np.arange(q) * block + r
            live = i < k
            for t in np.nonzero(live)[0]:
                partial[t] += x[i[t]] * y[i[t] : i[t] + n]
            cycles += 2 if r else 1  # multiply (+ add after the first round)
            work += (2 if r else 1) * int(live.sum()) * n
        # Pairwise tree over the q partials.
        m = q
        while m > 1:
            half = -(-m // 2)
            lo = m - half
            partial[:lo] += partial[half : half + lo]
            m = half
            cycles += 1
            work += lo * n
        z[:] = partial[0]
        return PRAMResult(value=z, cycles=cycles, work=work)
