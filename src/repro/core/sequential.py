"""Sequential RAM baseline (Table I, column "Sequential").

A single Random Access Machine executing one fundamental operation per
time unit.  :class:`SequentialMachine` runs the obvious sequential
algorithms for the paper's two problems while counting time units, using
the same operation granularity as the parallel simulators: one time unit
per memory access and one per arithmetic operation.

The absolute counts are Θ(n) for the sum and Θ(nk) for the direct
convolution, the first column of Table I.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError

__all__ = ["SequentialMachine", "SequentialResult"]


@dataclass(frozen=True)
class SequentialResult:
    """Value and cost of a sequential computation."""

    value: np.ndarray | float
    #: Elapsed time units (memory accesses + arithmetic).
    cycles: int
    #: Memory accesses performed.
    accesses: int
    #: Arithmetic operations performed.
    arithmetic: int


class SequentialMachine:
    """Op-counting single-thread RAM."""

    # -- the sum (Section V) -----------------------------------------------
    def sum(self, a: np.ndarray) -> SequentialResult:
        """Fold ``a`` left to right: ``n`` reads and ``n - 1`` additions."""
        a = np.asarray(a, dtype=np.float64)
        n = a.size
        if n < 1:
            raise ConfigurationError("sum requires a non-empty array")
        accesses = n
        arithmetic = n - 1
        return SequentialResult(
            value=float(a.sum()),
            cycles=accesses + arithmetic,
            accesses=accesses,
            arithmetic=arithmetic,
        )

    # -- the direct convolution (Section V) -----------------------------------
    def convolution(self, x: np.ndarray, y: np.ndarray) -> SequentialResult:
        """Direct convolution ``z[j] = sum_i x[i] * y[j + i]``.

        ``x`` has length ``k``; ``y`` has length ``n + k - 1``; the result
        has length ``n``.  Every output evaluates independently:
        ``2·k`` reads, ``k`` multiplications and ``k - 1`` additions plus
        one write per output, i.e. Θ(n·k) in total.
        """
        x = np.asarray(x, dtype=np.float64)
        y = np.asarray(y, dtype=np.float64)
        k = x.size
        n = y.size - k + 1
        if k < 1 or n < 1:
            raise ConfigurationError(
                f"convolution requires len(x) >= 1 and len(y) >= len(x); "
                f"got k={k}, len(y)={y.size}"
            )
        z = np.correlate(y, x, mode="valid")
        assert z.size == n
        accesses = n * (2 * k + 1)
        arithmetic = n * (2 * k - 1)
        return SequentialResult(
            value=z,
            cycles=accesses + arithmetic,
            accesses=accesses,
            arithmetic=arithmetic,
        )
