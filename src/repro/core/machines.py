"""User-facing machine front-ends.

:class:`DMM`, :class:`UMM` and :class:`HMM` are thin, parameter-holding
façades over the simulation engines.  Each convenience method builds a
fresh engine (so repeated experiments never share allocator or timing
state), runs the paper's algorithm for the operation, and returns
``(result, report)`` where ``report.cycles`` is the time-unit count the
paper's theorems bound.

For custom kernels, get a raw engine with :meth:`DMM.engine` /
:meth:`HMM.engine`, allocate arrays on it, and ``launch`` warp programs
directly.

>>> from repro import HMM, HMMParams
>>> machine = HMM(HMMParams(num_dmms=4, width=16, global_latency=100))
>>> total, report = machine.sum(range(1 << 12), num_threads=256)
>>> total
8386560.0
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError
from repro.machine.engine import MachineEngine, resolve_mode
from repro.machine.hmm import HMMEngine
from repro.native import resolve_backend
from repro.machine.policy import DMMBankPolicy, SlotPolicy, UMMGroupPolicy
from repro.machine.report import RunReport
from repro.machine.trace import TraceRecorder
from repro.params import HMMParams, MachineParams
from repro.analysis.costmodel import convolution_time, sum_time
from repro.analysis.terms import Params as CostParams
from repro.core.kernels.convolution import (
    convolution_kernel,
    scratch_blocks_needed,
)
from repro.core.kernels.hmm_conv import hmm_convolution
from repro.core.kernels.hmm_sum import hmm_reduce, hmm_sum, hmm_sum_single_dmm
from repro.core.kernels.compaction import hmm_compact
from repro.core.kernels.histogram import hmm_histogram
from repro.core.kernels.matmul import hmm_matmul, hmm_transpose
from repro.core.kernels.matvec import flat_matvec, hmm_matvec
from repro.core.kernels.merge import flat_merge, hmm_merge
from repro.core.kernels.spmv import flat_spmv
from repro.core.kernels.spmv import hmm_spmv
from repro.core.kernels.prefix import (
    alloc_scan_scratch,
    hmm_prefix_sums,
    prefix_sums_kernel,
)
from repro.core.kernels.reduction import reduce_kernel, sum_kernel
from repro.core.kernels.sorting import flat_bitonic_sort, hmm_bitonic_sort
from repro.core.kernels.string_matching import (
    flat_approximate_match,
    hmm_approximate_match,
)

__all__ = ["DMM", "UMM", "HMM", "run_flat_sum", "run_flat_convolution",
           "run_flat_prefix_sums"]


# ---------------------------------------------------------------------------
# Flat-machine operation runners (shared by the DMM and UMM front-ends).
# ---------------------------------------------------------------------------

def run_flat_sum(
    engine: MachineEngine,
    values: np.ndarray,
    num_threads: int,
    *,
    trace: TraceRecorder | None = None,
) -> tuple[float, RunReport]:
    """Lemma 5 sum on a flat machine; returns ``(total, report)``."""
    vals = np.asarray(values, dtype=np.float64).ravel()
    a = engine.array_from(vals, "sum.in")
    report = engine.launch(sum_kernel(a, vals.size), num_threads, trace=trace,
                           label="flat-sum")
    return float(a.to_numpy()[0]), report


def run_flat_convolution(
    engine: MachineEngine,
    x_values: np.ndarray,
    y_values: np.ndarray,
    num_threads: int,
    *,
    trace: TraceRecorder | None = None,
) -> tuple[np.ndarray, RunReport]:
    """Theorem 8 direct convolution on a flat machine."""
    xv = np.asarray(x_values, dtype=np.float64).ravel()
    yv = np.asarray(y_values, dtype=np.float64).ravel()
    k = xv.size
    n = yv.size - k + 1
    if k < 1 or n < 1:
        raise ConfigurationError(
            f"need len(x) >= 1 and len(y) >= len(x); got {xv.size}, {yv.size}"
        )
    if k > n:
        raise ConfigurationError(f"the paper assumes k <= n; got k={k}, n={n}")
    x = engine.array_from(xv, "conv.x")
    y = engine.array_from(yv, "conv.y")
    z = engine.alloc(n, "conv.z")
    blocks = scratch_blocks_needed(k, n, num_threads)
    zblk = engine.alloc(blocks * n, "conv.zblk") if blocks > 1 else None
    report = engine.launch(
        convolution_kernel(x, y, z, k, n, zblk=zblk),
        num_threads,
        trace=trace,
        label="flat-convolution",
    )
    return z.to_numpy(), report


def run_flat_prefix_sums(
    engine: MachineEngine,
    values: np.ndarray,
    num_threads: int,
    *,
    trace: TraceRecorder | None = None,
) -> tuple[np.ndarray, RunReport]:
    """Prefix-sums on a flat machine (``O(n/w + nl/p + l log n)``)."""
    vals = np.asarray(values, dtype=np.float64).ravel()
    n = vals.size
    a = engine.array_from(vals, "scan.in")
    out = engine.alloc(n, "scan.out")
    levels, prefixes = alloc_scan_scratch(engine.alloc, n)
    levels[0] = a  # level 0 is the input itself
    report = engine.launch(
        prefix_sums_kernel(a, levels, prefixes, out, n),
        num_threads,
        trace=trace,
        label="flat-prefix-sums",
    )
    return out.to_numpy(), report


# ---------------------------------------------------------------------------
# Front-end classes.
# ---------------------------------------------------------------------------

class _FlatMachine:
    """Common behaviour of the DMM and UMM front-ends.

    ``mode`` selects the evaluation engine for every operation run on
    this machine: ``"event"`` (exact discrete-event scheduling, the
    default), ``"batch"`` (the vectorized fast path, which falls back
    to the event engine automatically whenever it cannot reproduce event
    semantics), or ``"replay"`` (trace-compiled re-costing: each launch
    shape is captured once and re-priced from the stored trace at any
    latency).  Cycles and results are identical in every mode; see
    ``docs/PERFORMANCE.md``.
    """

    _policy_cls: type[SlotPolicy]
    _name: str

    def __init__(
        self,
        params: MachineParams | None = None,
        *,
        mode: str = "event",
        backend: str | None = None,
    ) -> None:
        self.params = params if params is not None else MachineParams()
        #: Default evaluation mode for engines built by this front-end.
        self.mode = resolve_mode(mode)
        #: Cost-model backend ("python"/"native") for those engines.
        self.backend = resolve_backend(backend)

    def engine(
        self, *, pipelined: bool = True, mode: str | None = None
    ) -> MachineEngine:
        """A fresh engine for custom kernels."""
        return MachineEngine(
            self.params,
            self._policy_cls(),
            name=self._name,
            pipelined=pipelined,
            mode=self.mode if mode is None else mode,
            backend=self.backend,
        )

    # -- operations -------------------------------------------------------
    def sum(
        self, values, num_threads: int, *, trace: TraceRecorder | None = None
    ) -> tuple[float, RunReport]:
        """Sum of ``n`` numbers (Lemma 5): ``O(n/w + nl/p + l·log n)``."""
        return run_flat_sum(self.engine(), np.fromiter(values, dtype=np.float64)
                            if not isinstance(values, np.ndarray) else values,
                            num_threads, trace=trace)

    def reduce(
        self, values, num_threads: int, op: str = "sum", *,
        trace: TraceRecorder | None = None,
    ) -> tuple[float, RunReport]:
        """Named reduction (``sum``/``max``/``min``/``prod``) with the
        Lemma 5 structure and cost."""
        vals = np.asarray(values, dtype=np.float64).ravel()
        eng = self.engine()
        a = eng.array_from(vals, "reduce.in")
        report = eng.launch(reduce_kernel(a, vals.size, op), num_threads,
                            trace=trace, label=f"flat-reduce-{op}")
        return float(a.to_numpy()[0]), report

    def convolve(
        self, x, y, num_threads: int, *, trace: TraceRecorder | None = None
    ) -> tuple[np.ndarray, RunReport]:
        """Direct convolution (Theorem 8): ``O(nk/w + nkl/p + l·log k)``."""
        return run_flat_convolution(self.engine(), np.asarray(x), np.asarray(y),
                                    num_threads, trace=trace)

    def prefix_sums(
        self, values, num_threads: int, *, trace: TraceRecorder | None = None
    ) -> tuple[np.ndarray, RunReport]:
        """Inclusive prefix-sums: ``O(n/w + nl/p + l·log n)``."""
        return run_flat_prefix_sums(self.engine(), np.asarray(values),
                                    num_threads, trace=trace)

    def approximate_match(
        self, pattern, text, num_threads: int, *,
        trace: TraceRecorder | None = None,
    ) -> tuple[np.ndarray, RunReport]:
        """Sellers approximate string matching (extension, ref [18]):
        ``out[j]`` = min edit distance of the pattern to a substring of
        the text ending at ``j``."""
        return flat_approximate_match(self.engine(), pattern, text,
                                      num_threads, trace=trace)

    # -- analytic predictions (no simulation) ---------------------------
    def predict_sum(self, n: int, num_threads: int) -> float:
        """Table I estimate (unit coefficients) of :meth:`sum`'s time."""
        q = CostParams(n=n, p=num_threads, w=self.params.width,
                       l=self.params.latency)
        return sum_time(self._name, q)

    def predict_convolution(self, n: int, k: int, num_threads: int) -> float:
        """Table I estimate of :meth:`convolve`'s time."""
        q = CostParams(n=n, k=k, p=num_threads, w=self.params.width,
                       l=self.params.latency)
        return convolution_time(self._name, q)

    def sort(
        self, values, num_threads: int, *, trace: TraceRecorder | None = None
    ) -> tuple[np.ndarray, RunReport]:
        """Ascending bitonic sort (extension):
        ``O((n/w + nl/p + l)·log^2 n)``."""
        return flat_bitonic_sort(self.engine(), np.asarray(values),
                                 num_threads, trace=trace)

    def merge(
        self, a, b, num_threads: int, *, trace: TraceRecorder | None = None
    ) -> tuple[np.ndarray, RunReport]:
        """Merge two sorted arrays via merge-path partitioning
        (extension)."""
        return flat_merge(self.engine(), a, b, num_threads, trace=trace)

    def matvec(
        self, matrix, vector, num_threads: int, *,
        trace: TraceRecorder | None = None,
    ) -> tuple[np.ndarray, RunReport]:
        """Dense ``y = A @ x``, warp-per-row (extension)."""
        return flat_matvec(self.engine(), matrix, vector, num_threads,
                           trace=trace)

    def spmv(
        self, matrix, vector, num_threads: int, *,
        trace: TraceRecorder | None = None,
    ) -> tuple[np.ndarray, RunReport]:
        """CSR sparse ``y = A @ x``, warp-per-row (extension)."""
        return flat_spmv(self.engine(), matrix, vector, num_threads,
                         trace=trace)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"{type(self).__name__}(w={self.params.width}, l={self.params.latency})"


class DMM(_FlatMachine):
    """The Discrete Memory Machine: banked memory, bank-conflict costs.

    The model of a GPU streaming multiprocessor's *shared memory*: a warp
    transaction costs as many pipeline slots as its worst per-bank count
    of distinct addresses.
    """

    _policy_cls = DMMBankPolicy
    _name = "dmm"


class UMM(_FlatMachine):
    """The Unified Memory Machine: address-group (coalescing) costs.

    The model of a GPU's *global memory*: a warp transaction costs one
    pipeline slot per distinct address group (``addr div w``) it touches.
    """

    _policy_cls = UMMGroupPolicy
    _name = "umm"


class HMM:
    """The Hierarchical Memory Machine: ``d`` DMMs plus one UMM.

    The paper's model of a whole GPU.  Convenience methods run the HMM
    algorithms of Sections VII and IX plus the extensions; each returns
    ``(result, report)``.
    """

    def __init__(
        self,
        params: HMMParams | None = None,
        *,
        mode: str = "event",
        backend: str | None = None,
    ) -> None:
        self.params = params if params is not None else HMMParams()
        #: Default evaluation mode for engines built by this front-end
        #: ("event", "batch", or "replay"; see ``docs/PERFORMANCE.md``).
        self.mode = resolve_mode(mode)
        #: Cost-model backend ("python"/"native") for those engines.
        self.backend = resolve_backend(backend)

    def engine(
        self, *, pipelined: bool = True, mode: str | None = None
    ) -> HMMEngine:
        """A fresh engine for custom kernels."""
        return HMMEngine(
            self.params,
            pipelined=pipelined,
            mode=self.mode if mode is None else mode,
            backend=self.backend,
        )

    # -- operations --------------------------------------------------------
    def sum(
        self, values, num_threads: int, *, trace: TraceRecorder | None = None
    ) -> tuple[float, RunReport]:
        """Theorem 7 sum: ``O(n/w + nl/p + l + log n)``, optimal."""
        return hmm_sum(self.engine(), np.fromiter(values, dtype=np.float64)
                       if not isinstance(values, np.ndarray) else values,
                       num_threads, trace=trace)

    def reduce(
        self, values, num_threads: int, op: str = "sum", *,
        trace: TraceRecorder | None = None,
    ) -> tuple[float, RunReport]:
        """Named reduction (``sum``/``max``/``min``/``prod``) with the
        Theorem 7 structure and cost."""
        return hmm_reduce(self.engine(), np.asarray(values), num_threads, op,
                          trace=trace)

    def sum_single_dmm(
        self, values, num_threads: int, *, trace: TraceRecorder | None = None
    ) -> tuple[float, RunReport]:
        """Lemma 6 sum using only ``DMM(0)``."""
        return hmm_sum_single_dmm(self.engine(), np.asarray(values), num_threads,
                                  trace=trace)

    def sum_flat(
        self, values, num_threads: int, *, trace: TraceRecorder | None = None
    ) -> tuple[float, RunReport]:
        """The strawman: Lemma 5 run entirely in the global memory,
        paying ``l`` at every tree level (``O(n/w + nl/p + l·log n)``)."""
        engine = self.engine()
        vals = np.asarray(values, dtype=np.float64).ravel()
        a = engine.global_from(vals, "sum.in")
        report = engine.launch(sum_kernel(a, vals.size), num_threads,
                               trace=trace, label="hmm-flat-sum")
        return float(a.to_numpy()[0]), report

    def convolve(
        self, x, y, num_threads: int, *, trace: TraceRecorder | None = None
    ) -> tuple[np.ndarray, RunReport]:
        """Theorem 9 direct convolution:
        ``O((n+dk)/w + nk/(dw) + (n+dk)l/p + l + log k)``, optimal."""
        return hmm_convolution(self.engine(), np.asarray(x), np.asarray(y),
                               num_threads, trace=trace)

    def prefix_sums(
        self, values, num_threads: int, *, trace: TraceRecorder | None = None
    ) -> tuple[np.ndarray, RunReport]:
        """HMM prefix-sums: ``O(n/w + nl/p + l + log n)`` (extension)."""
        return hmm_prefix_sums(self.engine(), np.asarray(values), num_threads,
                               trace=trace)

    def approximate_match(
        self, pattern, text, num_threads: int, *,
        trace: TraceRecorder | None = None,
    ) -> tuple[np.ndarray, RunReport]:
        """Sellers approximate string matching with the text chunked
        across the DMMs (extension, ref [18]): the per-diagonal latency
        that dominates the flat machines drops to 1."""
        return hmm_approximate_match(self.engine(), pattern, text,
                                     num_threads, trace=trace)

    def sort(
        self, values, num_threads: int, *, trace: TraceRecorder | None = None
    ) -> tuple[np.ndarray, RunReport]:
        """Ascending bitonic sort with chunk stages in the shared
        memories (extension): only the O(log^2 d) cross-chunk stages pay
        the global latency."""
        return hmm_bitonic_sort(self.engine(), np.asarray(values),
                                num_threads, trace=trace)

    def matvec(
        self, matrix, vector, num_threads: int, *,
        trace: TraceRecorder | None = None,
    ) -> tuple[np.ndarray, RunReport]:
        """Dense ``y = A @ x`` with the operand vector staged into each
        shared memory (extension)."""
        return hmm_matvec(self.engine(), matrix, vector, num_threads,
                          trace=trace)

    def compact(
        self, values, keep, num_threads: int, *,
        trace: TraceRecorder | None = None,
    ) -> tuple[np.ndarray, int]:
        """Stream compaction (filter) via the HMM scan (extension).
        Returns ``(kept_values, total_cycles)`` over the two launches."""
        return hmm_compact(self.engine(), values, keep, num_threads,
                           trace=trace)

    def histogram(
        self, values, bins: int, *, trace: TraceRecorder | None = None
    ) -> tuple[np.ndarray, RunReport]:
        """Exact histogram via per-DMM private histograms (extension).
        ``values`` are integer bin ids in ``[0, bins)``."""
        return hmm_histogram(self.engine(), values, bins, trace=trace)

    def merge(
        self, a, b, num_threads: int, *, trace: TraceRecorder | None = None
    ) -> tuple[np.ndarray, RunReport]:
        """Merge two sorted arrays, chunked over the DMMs by host-side
        merge-path partition (extension)."""
        return hmm_merge(self.engine(), a, b, num_threads, trace=trace)

    def spmv(
        self, matrix, vector, num_threads: int, *,
        trace: TraceRecorder | None = None,
    ) -> tuple[np.ndarray, RunReport]:
        """CSR sparse matrix-vector multiply with the operand vector
        staged into each shared memory (extension)."""
        return hmm_spmv(self.engine(), matrix, vector, num_threads,
                        trace=trace)

    def matmul(
        self, a, b, *, trace: TraceRecorder | None = None
    ) -> tuple[np.ndarray, RunReport]:
        """Shared-memory tiled matrix multiplication (extension)."""
        return hmm_matmul(self.engine(), np.asarray(a), np.asarray(b), trace=trace)

    # -- analytic predictions (no simulation) ---------------------------
    def predict_sum(self, n: int, num_threads: int) -> float:
        """Table I estimate (unit coefficients) of :meth:`sum`'s time."""
        q = CostParams(n=n, p=num_threads, w=self.params.width,
                       l=self.params.global_latency, d=self.params.num_dmms)
        return sum_time("hmm", q)

    def predict_convolution(self, n: int, k: int, num_threads: int) -> float:
        """Table I (Corollary 10) estimate of :meth:`convolve`'s time."""
        q = CostParams(n=n, k=k, p=num_threads, w=self.params.width,
                       l=self.params.global_latency, d=self.params.num_dmms)
        return convolution_time("hmm", q)

    def transpose(
        self, a, *, padded: bool = True, trace: TraceRecorder | None = None
    ) -> tuple[np.ndarray, RunReport]:
        """Shared-memory tiled transpose; ``padded=False`` exhibits the
        classic ``w``-way bank conflict (extension)."""
        return hmm_transpose(self.engine(), np.asarray(a), padded=padded,
                             trace=trace)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        p = self.params
        return f"HMM(d={p.num_dmms}, w={p.width}, l={p.global_latency})"
