"""Machine front-ends, baselines, and the paper's algorithms.

* :mod:`repro.core.machines` — the :class:`DMM`, :class:`UMM` and
  :class:`HMM` façades (the main entry points of the library);
* :mod:`repro.core.pram` / :mod:`repro.core.sequential` — the baseline
  models of Table I;
* :mod:`repro.core.kernels` — warp-program implementations of every
  algorithm in the paper plus extensions.
"""

from repro.core.machines import DMM, HMM, UMM
from repro.core.pram import PRAM, PRAMResult
from repro.core.sequential import SequentialMachine, SequentialResult

__all__ = [
    "DMM",
    "HMM",
    "PRAM",
    "PRAMResult",
    "SequentialMachine",
    "SequentialResult",
    "UMM",
]
