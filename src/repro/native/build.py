"""On-demand compilation of ``kernels.c`` with a content-hashed cache.

The shared library is built with the system C compiler (``$CC``, else
``cc``) the first time the native backend is used.  The compiled bytes
are cached in the unified artifact store's on-disk tier under the
``native`` namespace, keyed by a sha256 over the C source, the
compiler identity, the flags, and the binding ABI version — so a
source edit, a compiler upgrade, or a flag change each produce a new
entry, and a warm process (or a second process on the same machine)
never re-invokes the compiler.

Store entries carry the store's integrity envelope and cannot be
``dlopen``-ed directly; a loadable copy is materialized next to them
in ``<namespace dir>/lib/<key>.so``.  The ``lib/`` subdirectory is
invisible to the store's eviction/stats scan (which only considers
entry files directly in the namespace directory), so evicting the
framed entry never yanks a library out from under a running process.
When persistence is off (``REPRO_STORE=off``), the library is built
into a per-process temporary directory instead.
"""

from __future__ import annotations

import atexit
import ctypes
import os
import shutil
import subprocess
import tempfile
from pathlib import Path

from repro.store.store import ArtifactStore, content_key

__all__ = [
    "ABI_VERSION",
    "CFLAGS",
    "SOURCE",
    "compiler",
    "compiler_identity",
    "build_key",
    "load_library",
    "reset_build_cache",
]

#: Bump when the C ABI (kernel signatures) changes incompatibly.
ABI_VERSION = 1

CFLAGS = ("-O2", "-fPIC", "-shared", "-std=c99")

SOURCE = Path(__file__).with_name("kernels.c")

_namespace = None
_tmpdir: "Path | None" = None


def compiler() -> str:
    """The C compiler command: ``$CC``, else ``cc``."""
    return os.environ.get("CC", "").strip() or "cc"


def compiler_identity(cc: str) -> str | None:
    """First line of ``cc --version``, or ``None`` when unusable."""
    try:
        proc = subprocess.run(
            [cc, "--version"], capture_output=True, text=True, timeout=30
        )
    except (OSError, subprocess.SubprocessError):
        return None
    if proc.returncode != 0:
        return None
    lines = (proc.stdout or proc.stderr).splitlines()
    return lines[0].strip() if lines else cc


def build_key(source_text: str, cc_identity: str) -> str:
    """Content hash identifying one compiled library."""
    return content_key(
        {
            "abi": ABI_VERSION,
            "cc": cc_identity,
            "flags": list(CFLAGS),
            "source": source_text,
        }
    )


def _store_namespace():
    global _namespace
    if _namespace is None:
        _namespace = ArtifactStore().namespace(
            "native", "bytes", max_memory_entries=4
        )
    return _namespace


def _process_tmpdir() -> Path:
    global _tmpdir
    if _tmpdir is None:
        _tmpdir = Path(tempfile.mkdtemp(prefix="repro-native-"))
        atexit.register(shutil.rmtree, _tmpdir, ignore_errors=True)
    return _tmpdir


def _compile(cc: str, out_path: Path) -> str | None:
    """Compile the bundle; returns an error message or ``None``."""
    cmd = [cc, *CFLAGS, "-o", str(out_path), str(SOURCE)]
    try:
        proc = subprocess.run(cmd, capture_output=True, text=True, timeout=300)
    except (OSError, subprocess.SubprocessError) as exc:
        return f"{cc}: {exc}"
    if proc.returncode != 0:
        detail = (proc.stderr or proc.stdout or "").strip()
        return f"{' '.join(cmd)} failed ({proc.returncode}): {detail[:500]}"
    return None


def _materialize(lib_path: Path, blob: bytes) -> None:
    """Atomically write the loadable (unframed) library copy."""
    lib_path.parent.mkdir(parents=True, exist_ok=True)
    tmp = lib_path.with_name(f"{lib_path.name}.tmp{os.getpid()}")
    tmp.write_bytes(blob)
    os.replace(tmp, lib_path)


def load_library() -> tuple["ctypes.CDLL | None", str, str]:
    """Build or fetch the native library.

    Returns ``(lib, how, detail)`` where ``how`` is ``"cached"`` (the
    loadable copy or the store entry already existed), ``"compiled"``
    (the compiler ran), or ``"unavailable"`` (``detail`` explains why).
    """
    cc = compiler()
    identity = compiler_identity(cc)
    if identity is None:
        return None, "unavailable", (
            f"no usable C compiler ({cc!r} not found or not runnable); "
            "set $CC or install one"
        )
    try:
        source_text = SOURCE.read_text()
    except OSError as exc:
        return None, "unavailable", f"cannot read {SOURCE}: {exc}"
    key = build_key(source_text, identity)

    ns = _store_namespace()
    if ns.persist:
        lib_path = ns.directory / "lib" / f"{key}.so"
    else:
        lib_path = _process_tmpdir() / f"{key}.so"

    if lib_path.exists():
        try:
            return ctypes.CDLL(str(lib_path)), "cached", str(lib_path)
        except OSError:
            lib_path.unlink(missing_ok=True)  # stale/corrupt: rebuild

    blob = ns.get(key) if ns.persist else None
    if blob is not None:
        _materialize(lib_path, blob)
        try:
            return ctypes.CDLL(str(lib_path)), "cached", str(lib_path)
        except OSError:
            ns.delete(key)
            lib_path.unlink(missing_ok=True)

    tmp_out = Path(tempfile.mkdtemp(prefix="repro-cc-")) / "kernels.so"
    try:
        error = _compile(cc, tmp_out)
        if error is not None:
            return None, "unavailable", error
        blob = tmp_out.read_bytes()
    finally:
        shutil.rmtree(tmp_out.parent, ignore_errors=True)
    if ns.persist:
        ns.put(key, blob, skip_existing=True)
    _materialize(lib_path, blob)
    try:
        return ctypes.CDLL(str(lib_path)), "compiled", str(lib_path)
    except OSError as exc:
        return None, "unavailable", f"compiled library failed to load: {exc}"


def reset_build_cache() -> None:
    """Drop the cached namespace handle (tests re-point env vars)."""
    global _namespace
    _namespace = None
