/* Native backend for the repro cost model's hot integer loops.
 *
 * Compiled on demand with the system C compiler (see build.py) and
 * bound via ctypes (see cdefs.py).  Every kernel is a *faithful
 * integer port* of an existing pure-Python loop — same heap
 * discipline, same tie-breaking, same port recurrences — so results
 * are bit-identical to the Python backend:
 *
 *   repro_replay_price   ReplayCostEvaluator.evaluate's heap loop
 *                        (the event scheduler's loop over a compiled
 *                        op stream: FIFO/round-robin dispatch, barrier
 *                        groups, pipelined port recurrence).
 *   repro_slot_counts    DMMBankPolicy / UMMGroupPolicy / IdealPolicy
 *                        slot counting over trace address segments.
 *   repro_batch_sim      BatchCostEngine._sim_dispatch's integer heap
 *                        replay of queued (range) transactions.
 *   repro_safe_prefix    BatchCostEngine._safe_prefix's tentative
 *                        port scan (longest dispatchable prefix).
 *   repro_wave_starts    BatchCostEngine._wave_dispatch's per-wave
 *                        prefix-maximum port recurrence.
 *
 * All quantities are int64; time values stay far below 2^62 (the
 * engines' _INF sentinel), so no overflow handling is needed beyond
 * what the numpy paths already assume.  Status returns: 0 (or a
 * nonnegative count) on success, -1 on allocation failure — the
 * Python wrapper falls back to the pure-Python loop on any negative
 * return.
 */

#include <stdlib.h>
#include <string.h>

typedef long long i64;
typedef signed char i8;
typedef short i16;
typedef unsigned char u8;

#define I64_INF 0x3fffffffffffffffLL

/* Python-style floored division/modulo (addresses are nonnegative in
 * practice; this keeps the semantics exact regardless). */
static i64 pydiv(i64 a, i64 m) {
    i64 q = a / m;
    if ((a % m) != 0 && ((a < 0) != (m < 0)))
        q--;
    return q;
}

static i64 pymod(i64 a, i64 m) {
    i64 r = a % m;
    return r < 0 ? r + m : r;
}

/* ------------------------------------------------------------------ */
/* Binary min-heap keyed by (t, w) — matches heapq over (int, int)    */
/* tuples.  Keys are unique (one live entry per warp), so strict      */
/* comparison reproduces Python's pop order exactly.                  */
/* ------------------------------------------------------------------ */

typedef struct {
    i64 *t;   /* primary key (time / encoded key) */
    i64 *w;   /* secondary key (warp id / entry index) */
    i64 *x;   /* payload (warp index), may alias w */
    i64 size;
} heap_t;

static int heap_less(const heap_t *h, i64 a, i64 b) {
    return h->t[a] < h->t[b] || (h->t[a] == h->t[b] && h->w[a] < h->w[b]);
}

static void heap_push(heap_t *h, i64 t, i64 w, i64 x) {
    i64 i = h->size++;
    h->t[i] = t;
    h->w[i] = w;
    h->x[i] = x;
    while (i > 0) {
        i64 p = (i - 1) / 2;
        if (!heap_less(h, i, p))
            break;
        i64 tt = h->t[p]; h->t[p] = h->t[i]; h->t[i] = tt;
        i64 tw = h->w[p]; h->w[p] = h->w[i]; h->w[i] = tw;
        i64 tx = h->x[p]; h->x[p] = h->x[i]; h->x[i] = tx;
        i = p;
    }
}

static void heap_pop(heap_t *h, i64 *t, i64 *w, i64 *x) {
    *t = h->t[0];
    *w = h->w[0];
    *x = h->x[0];
    h->size--;
    if (h->size == 0)
        return;
    h->t[0] = h->t[h->size];
    h->w[0] = h->w[h->size];
    h->x[0] = h->x[h->size];
    i64 i = 0;
    for (;;) {
        i64 c = 2 * i + 1;
        if (c >= h->size)
            break;
        if (c + 1 < h->size && heap_less(h, c + 1, c))
            c++;
        if (!heap_less(h, c, i))
            break;
        i64 tt = h->t[c]; h->t[c] = h->t[i]; h->t[i] = tt;
        i64 tw = h->w[c]; h->w[c] = h->w[i]; h->w[i] = tw;
        i64 tx = h->x[c]; h->x[c] = h->x[i]; h->x[i] = tx;
        i = c;
    }
}

/* ------------------------------------------------------------------ */
/* repro_replay_price                                                 */
/* ------------------------------------------------------------------ */

/* Barrier-group release: when every live member waits, all waiting
 * warps resume at the latest arrival, pushed in ascending-warp-id
 * order (matching `for w in sorted(group.waiting)`). */
static i64 rp_release(
    i64 g, i64 n_warps, const i64 *warp_ids, const i64 *wid_order,
    u8 *waiting, const i64 *arrival,
    const i64 *member_cnt, i64 *waiting_cnt,
    i64 *ready, heap_t *heap, u8 *in_heap)
{
    if (member_cnt[g] == 0 || waiting_cnt[g] != member_cnt[g])
        return 0;
    u8 *wrow = waiting + g * n_warps;
    const i64 *arow = arrival + g * n_warps;
    i64 rt = 0;
    int first = 1;
    i64 k;
    for (k = 0; k < n_warps; k++) {
        if (wrow[k] && (first || arow[k] > rt)) {
            rt = arow[k];
            first = 0;
        }
    }
    for (k = 0; k < n_warps; k++) {
        i64 x = wid_order[k];
        if (!wrow[x])
            continue;
        ready[x] = rt;
        heap_push(heap, rt, warp_ids[x], x);
        in_heap[x] = 1;
        wrow[x] = 0;
    }
    waiting_cnt[g] = 0;
    return 1;
}

/* The replay pricing loop.  Streams are per-warp op-index lists
 * (stream_ops[stream_off[x] .. stream_off[x+1]]); op kind 0 is a
 * memory transaction (op_arg = post-transaction compute), 1 a compute
 * op (op_arg = cycles), 2 a barrier (op_arg = scope; `scope_device`
 * marks device scope, anything else the warp's DMM group).
 * warp_group[x] in [1, n_groups) names warp x's DMM barrier group;
 * group 0 is the device group.  Returns 0 on success. */
i64 repro_replay_price(
    i64 n_warps,
    const i64 *warp_ids,
    const i64 *warp_group,
    const i64 *wid_order,
    const i64 *stream_off,
    const i64 *stream_ops,
    const i8 *op_kind,
    const i16 *op_unit,
    const i64 *op_arg,
    const i64 *slots,
    i64 n_units,
    const i64 *latency,
    const u8 *pipelined,
    i64 n_groups,
    i64 round_robin,
    i64 scope_device,
    i64 *out_scalars,
    i64 *out_busy,
    i64 *out_last)
{
    i64 makespan = 0, compute_ops = 0, compute_cycles = 0, releases = 0;
    i64 u;
    for (u = 0; u < n_units; u++) {
        out_busy[u] = 0;
        out_last[u] = 0;
    }
    if (n_warps == 0) {
        out_scalars[0] = out_scalars[1] = out_scalars[2] = out_scalars[3] = 0;
        return 0;
    }

    size_t nw = (size_t)n_warps, ng = (size_t)n_groups, nu = (size_t)n_units;
    size_t i64s = (nw * 5      /* ready, ptr, heap t/w/x */
                   + nw * 2    /* round-robin cohort w/x */
                   + ng * nw   /* arrival */
                   + ng * 2    /* member_cnt, waiting_cnt */
                   + nu);      /* port_free */
    size_t u8s = nw * 2 + ng * nw * 2;  /* in_heap, finished, member, waiting */
    char *blob = (char *)malloc(i64s * sizeof(i64) + u8s);
    if (blob == NULL)
        return -1;
    memset(blob, 0, i64s * sizeof(i64) + u8s);
    i64 *p64 = (i64 *)blob;
    i64 *ready = p64;        p64 += nw;
    i64 *ptr = p64;          p64 += nw;
    i64 *heap_tv = p64;      p64 += nw;
    i64 *heap_wv = p64;      p64 += nw;
    i64 *heap_xv = p64;      p64 += nw;
    i64 *cohort_w = p64;     p64 += nw;
    i64 *cohort_x = p64;     p64 += nw;
    i64 *arrival = p64;      p64 += ng * nw;
    i64 *member_cnt = p64;   p64 += ng;
    i64 *waiting_cnt = p64;  p64 += ng;
    i64 *pf = p64;           p64 += nu;
    u8 *pu8 = (u8 *)p64;
    u8 *in_heap = pu8;       pu8 += nw;
    u8 *finished = pu8;      pu8 += nw;
    u8 *member = pu8;        pu8 += ng * nw;
    u8 *waiting = pu8;

    heap_t heap = { heap_tv, heap_wv, heap_xv, 0 };
    i64 x;
    for (x = 0; x < n_warps; x++) {
        heap_push(&heap, 0, warp_ids[x], x);
        in_heap[x] = 1;
        member[x] = 1;                       /* device group row 0 */
        member[warp_group[x] * n_warps + x] = 1;
    }
    member_cnt[0] = n_warps;
    for (x = 0; x < n_warps; x++)
        member_cnt[warp_group[x]]++;

    i64 rr_next = 0;
    while (heap.size > 0) {
        i64 t, w, ix;
        heap_pop(&heap, &t, &w, &ix);
        if (round_robin) {
            i64 csize = 1;
            cohort_w[0] = w;
            cohort_x[0] = ix;
            while (heap.size > 0 && heap.t[0] == t) {
                heap_pop(&heap, &t, &cohort_w[csize], &cohort_x[csize]);
                csize++;
            }
            i64 best = 0;
            i64 best_key = pymod(cohort_w[0] - rr_next, n_warps);
            i64 c;
            for (c = 1; c < csize; c++) {
                i64 key = pymod(cohort_w[c] - rr_next, n_warps);
                if (key < best_key) {
                    best = c;
                    best_key = key;
                }
            }
            for (c = 0; c < csize; c++)
                if (c != best)
                    heap_push(&heap, t, cohort_w[c], cohort_x[c]);
            w = cohort_w[best];
            ix = cohort_x[best];
            rr_next = (w + 1) % n_warps;
        }
        in_heap[ix] = 0;
        if (finished[ix])
            continue;
        if (t != ready[ix]) {
            /* Stale entry (warp re-timed by a barrier release). */
            if (!in_heap[ix]) {
                heap_push(&heap, ready[ix], warp_ids[ix], ix);
                in_heap[ix] = 1;
            }
            continue;
        }
        if (ptr[ix] == stream_off[ix + 1] - stream_off[ix]) {
            finished[ix] = 1;
            if (t > makespan)
                makespan = t;
            /* Retire from the device group, then the DMM group. */
            i64 gs[2];
            gs[0] = 0;
            gs[1] = warp_group[ix];
            int gi;
            for (gi = 0; gi < 2; gi++) {
                i64 g = gs[gi];
                u8 *mrow = member + g * n_warps;
                if (!mrow[ix])
                    continue;
                mrow[ix] = 0;
                member_cnt[g]--;
                u8 *wrow = waiting + g * n_warps;
                if (wrow[ix]) {
                    wrow[ix] = 0;
                    waiting_cnt[g]--;
                }
                releases += rp_release(
                    g, n_warps, warp_ids, wid_order, waiting, arrival,
                    member_cnt, waiting_cnt, ready, &heap, in_heap);
            }
            continue;
        }
        i64 i = stream_ops[stream_off[ix] + ptr[ix]];
        ptr[ix]++;
        i8 k = op_kind[i];
        if (k == 0) {  /* memory transaction */
            i64 un = (i64)op_unit[i];
            i64 s = slots[i];
            i64 start = t > pf[un] ? t : pf[un];
            i64 complete = start + s + latency[un] - 2;
            pf[un] = pipelined[un] ? start + s : complete + 1;
            if (start + s > out_busy[un])
                out_busy[un] = start + s;
            if (complete > out_last[un])
                out_last[un] = complete;
            i64 post = op_arg[i];
            if (post) {
                compute_ops++;
                compute_cycles += post;
            }
            i64 nr = complete + 1 + post;
            ready[ix] = nr;
            if (nr > makespan)
                makespan = nr;
            heap_push(&heap, nr, w, ix);
            in_heap[ix] = 1;
        } else if (k == 1) {  /* compute */
            compute_ops++;
            compute_cycles += op_arg[i];
            i64 nr = t + op_arg[i];
            ready[ix] = nr;
            if (nr > makespan)
                makespan = nr;
            heap_push(&heap, nr, w, ix);
            in_heap[ix] = 1;
        } else {  /* barrier arrival */
            i64 g = op_arg[i] == scope_device ? 0 : warp_group[ix];
            waiting[g * n_warps + ix] = 1;
            waiting_cnt[g]++;
            arrival[g * n_warps + ix] = t;
            releases += rp_release(
                g, n_warps, warp_ids, wid_order, waiting, arrival,
                member_cnt, waiting_cnt, ready, &heap, in_heap);
        }
    }

    out_scalars[0] = makespan;
    out_scalars[1] = compute_ops;
    out_scalars[2] = compute_cycles;
    out_scalars[3] = releases;
    free(blob);
    return 0;
}

/* ------------------------------------------------------------------ */
/* repro_slot_counts                                                  */
/* ------------------------------------------------------------------ */

static int cmp_i64(const void *a, const void *b) {
    i64 x = *(const i64 *)a, y = *(const i64 *)b;
    return (x > y) - (x < y);
}

static void sort_i64(i64 *a, i64 n) {
    if (n > 64) {
        qsort(a, (size_t)n, sizeof(i64), cmp_i64);
        return;
    }
    i64 i;
    for (i = 1; i < n; i++) {
        i64 v = a[i];
        i64 j = i - 1;
        while (j >= 0 && a[j] > v) {
            a[j + 1] = a[j];
            j--;
        }
        a[j + 1] = v;
    }
}

/* Slot counts for `n_list` memory transactions.  ops[e] indexes the
 * trace's address table: lanes addresses[addr_off[op] .. addr_off[op+1]].
 * policy 0: DMM bank conflicts — distinct addresses, max per-bank
 *           count of `a mod width` (numpy: unique then bincount max).
 * policy 1: UMM address groups — count of distinct `a div width`.
 * policy 2: ideal — 1 per non-empty transaction.
 * Empty transactions count 0 under every policy. */
i64 repro_slot_counts(
    i64 n_list,
    const i64 *ops,
    const i64 *addr_off,
    const i64 *addresses,
    i64 width,
    i64 policy,
    i64 *out)
{
    i64 max_len = 0, e;
    for (e = 0; e < n_list; e++) {
        i64 op = ops[e];
        i64 len = addr_off[op + 1] - addr_off[op];
        if (len > max_len)
            max_len = len;
    }
    if (max_len == 0 || policy == 2) {
        for (e = 0; e < n_list; e++)
            out[e] = (addr_off[ops[e] + 1] - addr_off[ops[e]]) > 0 ? 1 : 0;
        if (max_len == 0)
            for (e = 0; e < n_list; e++)
                out[e] = 0;
        return 0;
    }
    i64 *buf = (i64 *)malloc((size_t)(max_len + width) * sizeof(i64));
    if (buf == NULL)
        return -1;
    i64 *bank = buf + max_len;
    memset(bank, 0, (size_t)width * sizeof(i64));
    for (e = 0; e < n_list; e++) {
        i64 op = ops[e];
        i64 lo = addr_off[op];
        i64 len = addr_off[op + 1] - lo;
        if (len == 0) {
            out[e] = 0;
            continue;
        }
        memcpy(buf, addresses + lo, (size_t)len * sizeof(i64));
        sort_i64(buf, len);
        i64 m = 1, i;
        for (i = 1; i < len; i++)
            if (buf[i] != buf[m - 1])
                buf[m++] = buf[i];
        if (policy == 1) {  /* distinct address groups */
            i64 cnt = 1;
            i64 g = pydiv(buf[0], width);
            for (i = 1; i < m; i++) {
                i64 gg = pydiv(buf[i], width);
                if (gg != g) {
                    cnt++;
                    g = gg;
                }
            }
            out[e] = cnt;
        } else {  /* max per-bank count of distinct addresses */
            i64 best = 0;
            for (i = 0; i < m; i++) {
                i64 c = ++bank[pymod(buf[i], width)];
                if (c > best)
                    best = c;
            }
            for (i = 0; i < m; i++)
                bank[pymod(buf[i], width)] = 0;
            out[e] = best;
        }
    }
    free(buf);
    return 0;
}

/* ------------------------------------------------------------------ */
/* repro_batch_sim                                                    */
/* ------------------------------------------------------------------ */

/* Integer heap replay of a dispatch queue with fused ranges (the
 * while-heap loop of BatchCostEngine._sim_dispatch).  Entry i starts
 * at key enc0[i] with rounds j0[i]..nround[i]-1; its per-round slot
 * counts are slot_flat[slot_off[i] + j].  Pops are emitted in event
 * order into out_enc/out_i/out_j/out_nxt/out_pf (capacity: total
 * remaining rounds); a chain's final next-ready lands in out_final[i].
 * Returns the number of pops, or -1 on allocation failure. */
i64 repro_batch_sim(
    i64 n,
    const i64 *enc0,
    const i64 *wid,
    const i64 *comp,
    const i64 *j0,
    const i64 *nround,
    const i64 *slot_off,
    const i64 *slot_flat,
    i64 nw,
    i64 lat1,
    i64 pipelined,
    i64 pf0,
    i64 *out_enc,
    i64 *out_i,
    i64 *out_j,
    i64 *out_nxt,
    i64 *out_pf,
    i64 *out_final)
{
    i64 *blob = (i64 *)malloc((size_t)n * 4 * sizeof(i64));
    if (blob == NULL)
        return -1;
    i64 *ht = blob;
    i64 *hw = blob + n;
    i64 *hx = blob + 2 * n;
    i64 *js = blob + 3 * n;
    heap_t heap = { ht, hw, hx, 0 };
    i64 i;
    for (i = 0; i < n; i++) {
        js[i] = j0[i];
        out_final[i] = 0;
        heap_push(&heap, enc0[i], i, i);
    }
    i64 pf = pf0, p = 0;
    while (heap.size > 0) {
        i64 enc, iw, ix;
        heap_pop(&heap, &enc, &iw, &ix);
        i64 j = js[ix];
        i64 s = slot_flat[slot_off[ix] + j];
        i64 ready = pydiv(enc, nw);
        i64 start = ready > pf ? ready : pf;
        pf = start + (pipelined ? s : s + lat1);
        i64 nxt = start + s + lat1 + comp[ix];
        out_enc[p] = enc;
        out_i[p] = ix;
        out_j[p] = j;
        out_nxt[p] = nxt;
        out_pf[p] = pf;
        p++;
        js[ix] = j + 1;
        if (js[ix] < nround[ix])
            heap_push(&heap, nxt * nw + wid[ix], ix, ix);
        else
            out_final[ix] = nxt;
    }
    free(blob);
    return p;
}

/* ------------------------------------------------------------------ */
/* repro_safe_prefix                                                  */
/* ------------------------------------------------------------------ */

/* Longest dispatchable prefix of a sorted queue of plain transactions
 * (the scalar scan of BatchCostEngine._safe_prefix).  Returns k. */
i64 repro_safe_prefix(
    i64 n,
    const i64 *enc,
    const i64 *slots,
    i64 nw,
    i64 lat,
    i64 pipelined,
    i64 pf0,
    i64 outside)
{
    i64 pf = pf0;
    i64 prev_min = I64_INF;
    i64 cap = prev_min < outside ? prev_min : outside;
    i64 k = 0, e;
    for (e = 0; e < n; e++) {
        i64 ec = enc[e];
        if (ec >= cap)
            break;
        i64 ready = pydiv(ec, nw);
        i64 w = ec - ready * nw;
        i64 s = slots[e];
        i64 start = ready > pf ? ready : pf;
        pf = start + (pipelined ? s : s + lat - 1);
        i64 enc_nr = (start + s + lat - 1) * nw + w;
        if (enc_nr < prev_min) {
            prev_min = enc_nr;
            if (prev_min < cap)
                cap = prev_min;
        }
        k++;
    }
    return k;
}

/* ------------------------------------------------------------------ */
/* repro_wave_starts                                                  */
/* ------------------------------------------------------------------ */

/* The per-wave prefix-maximum port recurrence of
 * BatchCostEngine._wave_dispatch's non-uniform branch.  S is the
 * (R x n) row-major slot matrix; READY/STARTS are filled (R x n);
 * out_final receives each chain's next-ready after its last round.
 * Returns the final port-free time. */
i64 repro_wave_starts(
    i64 R,
    i64 n,
    const i64 *S,
    i64 r0,
    i64 pf0,
    i64 lat1,
    i64 pipelined,
    i64 lag,
    i64 *READY,
    i64 *STARTS,
    i64 *out_final)
{
    i64 pf = pf0, i, j;
    for (i = 0; i < n; i++)
        out_final[i] = r0;
    for (j = 0; j < R; j++) {
        const i64 *Sj = S + j * n;
        i64 *Rj = READY + j * n;
        i64 *Tj = STARTS + j * n;
        i64 cs = 0;
        i64 run = -I64_INF;
        i64 last_start = 0, last_eff = 0;
        for (i = 0; i < n; i++) {
            i64 eff = pipelined ? Sj[i] : Sj[i] + lat1;
            i64 v = out_final[i] - cs;
            if (v > run)
                run = v;
            i64 t = run > pf ? run : pf;
            Rj[i] = out_final[i];
            i64 st = t + cs;
            Tj[i] = st;
            out_final[i] = st + Sj[i] + lag;
            cs += eff;
            last_start = st;
            last_eff = eff;
        }
        pf = last_start + last_eff;
    }
    return pf;
}
