"""Typed kernel descriptions for the native library.

The xobjects pattern: each C entry point is described once — name,
argument order, dtypes, scalar/array kind — and the ctypes binding is
generated from the description.  The wrapper validates every array
argument (ndarray, exact dtype, C-contiguous) before handing out raw
pointers, so a mismatched buffer fails loudly in Python instead of
corrupting memory in C.
"""

from __future__ import annotations

import ctypes
from dataclasses import dataclass

import numpy as np

__all__ = ["Arg", "KernelDescription", "KERNELS", "bind", "bind_all"]

_CTYPES = {
    np.dtype(np.int64): ctypes.c_longlong,
    np.dtype(np.int16): ctypes.c_short,
    np.dtype(np.int8): ctypes.c_byte,
    np.dtype(np.uint8): ctypes.c_ubyte,
}


@dataclass(frozen=True)
class Arg:
    """One kernel argument: a typed scalar or a typed array pointer."""

    name: str
    dtype: "np.dtype"
    array: bool = False

    @classmethod
    def scalar(cls, name: str, dtype=np.int64) -> "Arg":
        return cls(name, np.dtype(dtype), array=False)

    @classmethod
    def arr(cls, name: str, dtype=np.int64) -> "Arg":
        return cls(name, np.dtype(dtype), array=True)


@dataclass(frozen=True)
class KernelDescription:
    """C entry point: name, ordered args, int return type."""

    name: str
    args: tuple[Arg, ...]
    restype: "np.dtype" = np.dtype(np.int64)

    def bind(self, lib: ctypes.CDLL):
        """Resolve the symbol and return a validating Python callable."""
        fn = getattr(lib, self.name)
        fn.restype = _CTYPES[np.dtype(self.restype)]
        fn.argtypes = [
            ctypes.POINTER(_CTYPES[a.dtype]) if a.array else _CTYPES[a.dtype]
            for a in self.args
        ]
        args = self.args
        kname = self.name

        def call(*values):
            if len(values) != len(args):
                raise TypeError(
                    f"{kname} takes {len(args)} arguments, got {len(values)}"
                )
            cvals = []
            for a, v in zip(args, values):
                if not a.array:
                    cvals.append(int(v))
                    continue
                if not isinstance(v, np.ndarray):
                    raise TypeError(
                        f"{kname}: argument {a.name!r} must be an ndarray, "
                        f"got {type(v).__name__}"
                    )
                if v.dtype != a.dtype:
                    raise TypeError(
                        f"{kname}: argument {a.name!r} must have dtype "
                        f"{a.dtype}, got {v.dtype}"
                    )
                if not v.flags["C_CONTIGUOUS"]:
                    raise TypeError(
                        f"{kname}: argument {a.name!r} must be C-contiguous"
                    )
                cvals.append(v.ctypes.data_as(ctypes.POINTER(_CTYPES[a.dtype])))
            return int(fn(*cvals))

        call.__name__ = self.name
        call.description = self
        return call


#: Every kernel exported by ``kernels.c``, in its argument order.
KERNELS = {
    d.name: d
    for d in (
        KernelDescription(
            "repro_replay_price",
            (
                Arg.scalar("n_warps"),
                Arg.arr("warp_ids"),
                Arg.arr("warp_group"),
                Arg.arr("wid_order"),
                Arg.arr("stream_off"),
                Arg.arr("stream_ops"),
                Arg.arr("op_kind", np.int8),
                Arg.arr("op_unit", np.int16),
                Arg.arr("op_arg"),
                Arg.arr("slots"),
                Arg.scalar("n_units"),
                Arg.arr("latency"),
                Arg.arr("pipelined", np.uint8),
                Arg.scalar("n_groups"),
                Arg.scalar("round_robin"),
                Arg.scalar("scope_device"),
                Arg.arr("out_scalars"),
                Arg.arr("out_busy"),
                Arg.arr("out_last"),
            ),
        ),
        KernelDescription(
            "repro_slot_counts",
            (
                Arg.scalar("n_list"),
                Arg.arr("ops"),
                Arg.arr("addr_off"),
                Arg.arr("addresses"),
                Arg.scalar("width"),
                Arg.scalar("policy"),
                Arg.arr("out"),
            ),
        ),
        KernelDescription(
            "repro_batch_sim",
            (
                Arg.scalar("n"),
                Arg.arr("enc0"),
                Arg.arr("wid"),
                Arg.arr("comp"),
                Arg.arr("j0"),
                Arg.arr("nround"),
                Arg.arr("slot_off"),
                Arg.arr("slot_flat"),
                Arg.scalar("nw"),
                Arg.scalar("lat1"),
                Arg.scalar("pipelined"),
                Arg.scalar("pf0"),
                Arg.arr("out_enc"),
                Arg.arr("out_i"),
                Arg.arr("out_j"),
                Arg.arr("out_nxt"),
                Arg.arr("out_pf"),
                Arg.arr("out_final"),
            ),
        ),
        KernelDescription(
            "repro_safe_prefix",
            (
                Arg.scalar("n"),
                Arg.arr("enc"),
                Arg.arr("slots"),
                Arg.scalar("nw"),
                Arg.scalar("lat"),
                Arg.scalar("pipelined"),
                Arg.scalar("pf0"),
                Arg.scalar("outside"),
            ),
        ),
        KernelDescription(
            "repro_wave_starts",
            (
                Arg.scalar("R"),
                Arg.scalar("n"),
                Arg.arr("S"),
                Arg.scalar("r0"),
                Arg.scalar("pf0"),
                Arg.scalar("lat1"),
                Arg.scalar("pipelined"),
                Arg.scalar("lag"),
                Arg.arr("READY"),
                Arg.arr("STARTS"),
                Arg.arr("out_final"),
            ),
        ),
    )
}


def bind(lib: ctypes.CDLL, name: str):
    """Bind one kernel by name."""
    return KERNELS[name].bind(lib)


def bind_all(lib: ctypes.CDLL) -> dict:
    """Bind every described kernel; the native backend's call table."""
    return {name: desc.bind(lib) for name, desc in KERNELS.items()}
