"""Backend selection, the kernel table, counters, and the fallback.

Two backends price the cost model: ``"python"`` (the pure-Python
loops, always available) and ``"native"`` (the compiled kernels of
:mod:`repro.native.build`).  Selection:

* explicit ``backend=`` arguments win;
* ``backend=None`` reads ``$REPRO_BACKEND`` (default ``"python"``);
* when ``"native"`` is selected but no compiler is available, the
  caller gets ``None`` from :func:`native_kernels`, a
  :class:`RuntimeWarning` is emitted once per process, and the Python
  loop runs instead — results are identical either way.

Counters (``native_calls`` / ``python_fallbacks`` /
``build_cache_hits`` / ``builds``) mirror the artifact store's
metrics style and surface in the service's ``/metrics`` snapshot.
"""

from __future__ import annotations

import os

from repro.errors import ConfigurationError, reset_warn_once, warn_once
from repro.native import build as _build
from repro.native.cdefs import bind_all

__all__ = [
    "BACKENDS",
    "BACKEND_ENV",
    "resolve_backend",
    "native_available",
    "native_kernels",
    "NativeCounters",
    "NATIVE_METRICS",
    "native_metrics_snapshot",
    "reset_native",
]

#: Valid backend names (service specs additionally accept ``"auto"``,
#: which defers to ``$REPRO_BACKEND`` at evaluation time).
BACKENDS = ("python", "native")

#: Environment default for ``backend=None``.
BACKEND_ENV = "REPRO_BACKEND"

_WARN_KEY = "native:no-compiler"

#: None = not tried yet; (True, kernels) = bound; (False, detail) = failed.
_state: "tuple[bool, object] | None" = None


class NativeCounters:
    """Process-wide native-backend counters (store-metrics style)."""

    __slots__ = ("native_calls", "python_fallbacks", "build_cache_hits",
                 "builds")

    def __init__(self) -> None:
        self.reset()

    def reset(self) -> None:
        self.native_calls = 0
        self.python_fallbacks = 0
        self.build_cache_hits = 0
        self.builds = 0

    def snapshot(self) -> dict:
        return {name: getattr(self, name) for name in self.__slots__}


NATIVE_METRICS = NativeCounters()


def resolve_backend(backend: "str | None" = None) -> str:
    """Normalize a backend choice; ``None`` defers to ``$REPRO_BACKEND``."""
    if backend is None:
        backend = os.environ.get(BACKEND_ENV, "").strip().lower() or "python"
    else:
        backend = str(backend).strip().lower()
    if backend not in BACKENDS:
        raise ConfigurationError(
            f"backend must be one of {BACKENDS}, got {backend!r} "
            f"(explicit argument or ${BACKEND_ENV})"
        )
    return backend


def _ensure() -> "tuple[bool, object]":
    """Build/load/bind the library once per process."""
    global _state
    if _state is None:
        lib, how, detail = _build.load_library()
        if lib is None:
            _state = (False, detail)
        else:
            _state = (True, bind_all(lib))
            if how == "compiled":
                NATIVE_METRICS.builds += 1
            else:
                NATIVE_METRICS.build_cache_hits += 1
    return _state


def native_available() -> bool:
    """Can the native backend run on this host? (Builds on first call.)"""
    return _ensure()[0]


def native_kernels() -> "dict | None":
    """The bound kernel table, or ``None`` with a warn-once fallback.

    Call sites that were asked for ``backend="native"`` use this; a
    ``None`` return means "run the Python loop instead" and is counted
    as a ``python_fallback``.
    """
    ok, payload = _ensure()
    if ok:
        return payload  # type: ignore[return-value]
    NATIVE_METRICS.python_fallbacks += 1
    warn_once(
        _WARN_KEY,
        f"native backend unavailable ({payload}); falling back to the "
        "pure-Python backend (results are identical, just slower)",
        category=RuntimeWarning,
    )
    return None


def native_metrics_snapshot() -> dict:
    """The ``/metrics`` ``"native"`` section."""
    snap = NATIVE_METRICS.snapshot()
    try:
        snap["default_backend"] = resolve_backend(None)
    except ConfigurationError:
        snap["default_backend"] = "invalid"
    # Report availability without forcing a compile on an idle service:
    # before the first native call the state is simply unknown.
    snap["available"] = _state[0] if _state is not None else None
    return snap


def reset_native() -> None:
    """Forget the bound library, the warn-once, and the store handle
    (tests re-point ``$CC`` / ``$REPRO_STORE_DIR`` between cases)."""
    global _state
    _state = None
    reset_warn_once("native:")
    _build.reset_build_cache()
