"""Native compiled backend for the cost model's hot integer loops.

``kernels.c`` is compiled on demand with the system C compiler into a
shared library (content-hash cached in the artifact store's ``native``
namespace) and bound via ctypes with typed kernel descriptions.  See
:mod:`repro.native.backend` for selection (``backend=`` /
``$REPRO_BACKEND``) and fallback semantics, and
docs/PERFORMANCE.md ("Native backend") for the user guide.
"""

from repro.native.backend import (
    BACKEND_ENV,
    BACKENDS,
    NATIVE_METRICS,
    NativeCounters,
    native_available,
    native_kernels,
    native_metrics_snapshot,
    reset_native,
    resolve_backend,
)

__all__ = [
    "BACKEND_ENV",
    "BACKENDS",
    "NATIVE_METRICS",
    "NativeCounters",
    "native_available",
    "native_kernels",
    "native_metrics_snapshot",
    "reset_native",
    "resolve_backend",
]
