"""Pluggable per-artifact-type codecs for the artifact store.

A codec turns one artifact into its canonical payload bytes and back.
The store frames those bytes with an integrity envelope (see
:mod:`repro.store.store`) — codecs never see the envelope.

Built-ins:

``json``
    Canonical JSON (sorted keys, compact separators) — sweep points and
    tune reports.
``npz``
    A ``dict[str, numpy.ndarray]`` as one compressed ``.npz`` archive —
    compiled replay traces.
``bytes``
    Raw pass-through for callers that already hold bytes.

Custom artifact types register with :func:`register_codec` and are then
addressable by name from :meth:`ArtifactStore.namespace`.
"""

from __future__ import annotations

import io
import json
from typing import Any, Protocol

import numpy as np

__all__ = [
    "Codec",
    "JsonCodec",
    "NpzCodec",
    "BytesCodec",
    "get_codec",
    "register_codec",
]


class Codec(Protocol):
    """One artifact type's byte encoding."""

    #: Registry name (also the default lookup key).
    name: str
    #: On-disk file extension (without the dot).
    extension: str

    def encode(self, obj: Any) -> bytes: ...

    def decode(self, data: bytes) -> Any: ...


class JsonCodec:
    """Canonical JSON: sorted keys, compact separators, UTF-8."""

    name = "json"
    extension = "json"

    def encode(self, obj: Any) -> bytes:
        return json.dumps(
            obj, sort_keys=True, separators=(",", ":")
        ).encode("utf-8")

    def decode(self, data: bytes) -> Any:
        return json.loads(data.decode("utf-8"))


class NpzCodec:
    """A mapping of names to numpy arrays as one ``.npz`` archive."""

    name = "npz"
    extension = "npz"

    def encode(self, obj: "dict[str, np.ndarray]") -> bytes:
        buf = io.BytesIO()
        np.savez_compressed(buf, **obj)
        return buf.getvalue()

    def decode(self, data: bytes) -> "dict[str, np.ndarray]":
        with np.load(io.BytesIO(data), allow_pickle=False) as npz:
            return {name: npz[name] for name in npz.files}


class BytesCodec:
    """Raw bytes, unchanged."""

    name = "bytes"
    extension = "bin"

    def encode(self, obj: bytes) -> bytes:
        if not isinstance(obj, (bytes, bytearray, memoryview)):
            raise TypeError(f"bytes codec got {type(obj).__qualname__}")
        return bytes(obj)

    def decode(self, data: bytes) -> bytes:
        return data


_REGISTRY: dict[str, Codec] = {}


def register_codec(codec: Codec) -> Codec:
    """Make a codec addressable by name; returns it (decorator-friendly)."""
    _REGISTRY[codec.name] = codec
    return codec


for _codec in (JsonCodec(), NpzCodec(), BytesCodec()):
    register_codec(_codec)


def get_codec(codec: "Codec | str") -> Codec:
    """Resolve a codec instance or registry name."""
    if isinstance(codec, str):
        try:
            return _REGISTRY[codec]
        except KeyError:
            raise KeyError(
                f"unknown codec {codec!r} (registered: {sorted(_REGISTRY)})"
            ) from None
    return codec
