"""Store configuration: the unified env knobs and their legacy shims.

One family of variables governs the content-addressed artifact store
(see :mod:`repro.store.store`):

=============================  =============================================
``REPRO_STORE``                ``off``/``0``/``no`` disables on-disk
                               persistence for every namespace.
``REPRO_STORE_DIR``            Root directory (default
                               ``benchmarks/.store``, or ``.store`` when no
                               ``benchmarks/`` exists under the cwd).
``REPRO_STORE_<NS>``           Per-namespace off switch (``<NS>`` is the
                               upper-cased namespace, e.g.
                               ``REPRO_STORE_SWEEP=off``).
``REPRO_STORE_<NS>_DIR``       Per-namespace directory override; entries
                               live directly in that directory instead of
                               ``<root>/<ns>/``.
``REPRO_STORE_<NS>_LRU``       Per-namespace in-memory entry budget.
``REPRO_STORE_<NS>_MAX_BYTES``    Per-namespace on-disk byte budget
                                  (evicts oldest unpinned entries;
                                  default unlimited).
``REPRO_STORE_<NS>_MAX_ENTRIES``  Per-namespace on-disk entry budget
                                  (default unlimited).
=============================  =============================================

The pre-unification knobs keep working — each one maps onto the matching
per-namespace variable and emits a :class:`DeprecationWarning` the first
time it is read in a process:

==========================  =================================
``REPRO_SWEEP_CACHE``       → ``REPRO_STORE_SWEEP``
``REPRO_SWEEP_CACHE_DIR``   → ``REPRO_STORE_SWEEP_DIR``
``REPRO_TRACE_STORE``       → ``REPRO_STORE_TRACE``
``REPRO_TRACE_STORE_DIR``   → ``REPRO_STORE_TRACE_DIR``
``REPRO_TRACE_LRU``         → ``REPRO_STORE_TRACE_LRU``
``REPRO_TUNE_CACHE_DIR``    → ``REPRO_STORE_TUNE_DIR``
==========================  =================================

New variables win when both are set.  ``REPRO_SWEEP_FINGERPRINT`` is not
deprecated: it overrides the cache-invalidation fingerprint for every
namespace, exactly as before.
"""

from __future__ import annotations

import os
from pathlib import Path

from repro.errors import reset_warn_once, warn_once

__all__ = [
    "STORE_ENV",
    "STORE_DIR_ENV",
    "NAMESPACES",
    "LEGACY_KNOBS",
    "default_store_root",
    "store_allowed",
    "namespace_allowed",
    "namespace_dir",
    "namespace_dir_overridden",
    "namespace_env",
    "namespace_int",
    "legacy_default_dir",
    "reset_deprecation_warnings",
]

#: Global off switch for on-disk persistence.
STORE_ENV = "REPRO_STORE"
#: Root directory override.
STORE_DIR_ENV = "REPRO_STORE_DIR"

#: The standard namespaces (new ones are allowed; these always appear in
#: the service's ``/metrics`` snapshot).  ``telemetry`` holds persisted
#: metrics time series (see :mod:`repro.telemetry.series`).
NAMESPACES = ("sweep", "trace", "tune", "telemetry")

_OFF = ("off", "0", "no")

#: legacy-variable → (replacement-variable, kind) mapping, for the
#: deprecation shim and the STORAGE.md reference table.
LEGACY_KNOBS = {
    "REPRO_SWEEP_CACHE": ("REPRO_STORE_SWEEP", "switch"),
    "REPRO_SWEEP_CACHE_DIR": ("REPRO_STORE_SWEEP_DIR", "dir"),
    "REPRO_TRACE_STORE": ("REPRO_STORE_TRACE", "switch"),
    "REPRO_TRACE_STORE_DIR": ("REPRO_STORE_TRACE_DIR", "dir"),
    "REPRO_TRACE_LRU": ("REPRO_STORE_TRACE_LRU", "lru"),
    "REPRO_TUNE_CACHE_DIR": ("REPRO_STORE_TUNE_DIR", "dir"),
}

#: Default directories of the three pre-unification caches, relative to
#: the benchmarks dir (or the cwd): migration sources.
_LEGACY_DIRS = {
    "sweep": ".sweep_cache",
    "trace": ".trace_store",
    "tune": ".tune_cache",
}

#: warn-once key prefix for the deprecation shims (shared registry in
#: :mod:`repro.errors`; the native backend uses its own ``native:`` keys).
_WARN_PREFIX = "deprecated-env:"


def reset_deprecation_warnings() -> None:
    """Forget which legacy knobs already warned (tests only)."""
    reset_warn_once(_WARN_PREFIX)


def _legacy_env(legacy_name: str) -> str | None:
    """Read a deprecated variable, warning once per process."""
    value = os.environ.get(legacy_name)
    if value is not None:
        replacement, _ = LEGACY_KNOBS[legacy_name]
        warn_once(
            _WARN_PREFIX + legacy_name,
            f"{legacy_name} is deprecated; use {replacement} "
            "(see docs/STORAGE.md)",
            category=DeprecationWarning,
            stacklevel=4,
        )
    return value


def namespace_env(namespace: str, suffix: str = "") -> str | None:
    """``REPRO_STORE_<NS>[_<suffix>]``, falling back to the legacy knob."""
    new_name = f"REPRO_STORE_{namespace.upper()}" + (
        f"_{suffix}" if suffix else ""
    )
    value = os.environ.get(new_name)
    if value is not None:
        return value
    kind = {"": "switch", "DIR": "dir", "LRU": "lru"}.get(suffix)
    for legacy_name, (replacement, legacy_kind) in LEGACY_KNOBS.items():
        if replacement == new_name and legacy_kind == kind:
            return _legacy_env(legacy_name)
    return None


def _bench_relative(leaf: str) -> Path:
    bench = Path.cwd() / "benchmarks"
    return (bench if bench.is_dir() else Path.cwd()) / leaf


def default_store_root() -> Path:
    """``$REPRO_STORE_DIR``, else ``benchmarks/.store`` under the working
    directory (``.store`` when there is no ``benchmarks/`` dir)."""
    env = os.environ.get(STORE_DIR_ENV)
    if env:
        return Path(env)
    return _bench_relative(".store")


def store_allowed() -> bool:
    """False when ``REPRO_STORE`` disables on-disk persistence globally."""
    return os.environ.get(STORE_ENV, "").strip().lower() not in _OFF


def namespace_allowed(namespace: str) -> bool:
    """May this namespace persist?  Honors the global and per-namespace
    off switches (and the legacy one, with a deprecation warning)."""
    if not store_allowed():
        return False
    value = namespace_env(namespace)
    if value is None:
        return True
    return value.strip().lower() not in _OFF


def namespace_dir_overridden(namespace: str) -> bool:
    """Is this namespace's directory pinned by an env variable?"""
    return namespace_env(namespace, "DIR") is not None


def namespace_dir(namespace: str, root: "Path | str | None" = None) -> Path:
    """Where one namespace's entries live.

    A per-namespace dir override (new or legacy variable) wins and is
    used *directly*; otherwise ``<root>/<namespace>`` under ``root``
    (default :func:`default_store_root`).
    """
    env = namespace_env(namespace, "DIR")
    if env:
        return Path(env)
    base = Path(root) if root is not None else default_store_root()
    return base / namespace


def namespace_int(namespace: str, suffix: str) -> int | None:
    """An integer per-namespace knob (LRU / MAX_BYTES / MAX_ENTRIES)."""
    raw = namespace_env(namespace, suffix)
    if raw is None or not raw.strip():
        return None
    try:
        return int(raw)
    except ValueError:
        return None


def legacy_default_dir(namespace: str) -> Path | None:
    """The pre-unification default directory of a namespace (a migration
    source), or ``None`` for namespaces that never had one."""
    leaf = _LEGACY_DIRS.get(namespace)
    return _bench_relative(leaf) if leaf else None
