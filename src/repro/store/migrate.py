"""One-shot migration of the three legacy cache dirs into the store.

Legacy formats understood:

* ``shard_*.jsonl`` — the sweep executor's (and tuner's) JSON-lines
  result shards.  Each line is ``{"key", "fingerprint", "cycles",
  "extra"}``; the last line for a key wins, unparsable lines are
  skipped, exactly as the old loader behaved.
* raw ``*.npz`` — the trace store's compiled traces, one file per
  launch key.  (New-format trace entries also end in ``.npz`` but start
  with the store's envelope magic, so the two are never confused.)

Migration is *idempotent*: keys already present in the store are
skipped, so re-running an import — or racing two processes through one
— converges to the same state.  The legacy files are left in place
unless ``remove=True``; ``make clean`` keeps deleting the legacy dirs
for one more release.

Automatic migration: the sweep/trace/tune facades call
:func:`auto_migrate` the first time they open their default-located
namespace.  A ``.migrated`` marker in the namespace directory makes
that a true one-shot — delete the marker to re-import.
"""

from __future__ import annotations

import json
import shutil
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterator

import numpy as np

from repro.store import config
from repro.store.store import ArtifactStore, Namespace

__all__ = [
    "MigrationReport",
    "migrate_jsonl_dir",
    "migrate_npz_dir",
    "migrate_legacy",
    "auto_migrate",
    "MARKER_NAME",
]

MARKER_NAME = ".migrated"

#: Raw (legacy, un-enveloped) npz files start with the zip magic.
_ZIP_MAGIC = b"PK\x03\x04"


@dataclass
class MigrationReport:
    """What one migration pass did, per namespace."""

    imported: dict = field(default_factory=dict)
    skipped: dict = field(default_factory=dict)
    invalid: dict = field(default_factory=dict)
    sources: dict = field(default_factory=dict)

    def _bump(self, table: dict, namespace: str, amount: int = 1) -> None:
        table[namespace] = table.get(namespace, 0) + amount

    def describe(self) -> str:
        lines = []
        for ns in sorted(set(self.imported) | set(self.skipped)
                         | set(self.invalid)):
            lines.append(
                f"{ns}: imported {self.imported.get(ns, 0)}, "
                f"already present {self.skipped.get(ns, 0)}, "
                f"invalid {self.invalid.get(ns, 0)} "
                f"(from {', '.join(self.sources.get(ns, [])) or 'nothing'})"
            )
        return "\n".join(lines) or "nothing to migrate"


def _iter_jsonl_entries(directory: Path) -> Iterator[tuple[str, dict]]:
    """Last-wins legacy shard entries of one directory."""
    merged: dict[str, dict] = {}
    for shard in sorted(directory.glob("shard_*.jsonl")):
        try:
            lines = shard.read_text().splitlines()
        except OSError:
            continue
        for line in lines:
            try:
                entry = json.loads(line)
                key = str(entry["key"])
                payload = {
                    "key": key,
                    "fingerprint": str(entry.get("fingerprint", "")),
                    "cycles": int(entry["cycles"]),
                    "extra": dict(entry.get("extra", {})),
                }
            except (ValueError, KeyError, TypeError):
                continue
            merged[key] = payload
    yield from merged.items()


def migrate_jsonl_dir(
    ns: Namespace, directory: Path, report: MigrationReport
) -> None:
    """Import one legacy JSON-lines cache dir into ``ns``."""
    if not directory.is_dir():
        return
    report.sources.setdefault(ns.name, []).append(str(directory))
    for key, payload in _iter_jsonl_entries(directory):
        try:
            wrote = ns.put(key, payload, skip_existing=True)
        except ValueError:
            report._bump(report.invalid, ns.name)
            continue
        report._bump(report.imported if wrote else report.skipped, ns.name)


def migrate_npz_dir(
    ns: Namespace, directory: Path, report: MigrationReport
) -> None:
    """Import one legacy raw-``.npz`` trace dir into ``ns``."""
    if not directory.is_dir():
        return
    report.sources.setdefault(ns.name, []).append(str(directory))
    for path in sorted(directory.glob("*.npz")):
        try:
            with open(path, "rb") as fh:
                if fh.read(4) != _ZIP_MAGIC:
                    continue  # already store-framed (or junk): not legacy
            with np.load(path, allow_pickle=False) as npz:
                arrays = {name: npz[name] for name in npz.files}
        except (OSError, ValueError, KeyError):
            report._bump(report.invalid, ns.name)
            continue
        try:
            wrote = ns.put(path.stem, arrays, skip_existing=True)
        except ValueError:
            report._bump(report.invalid, ns.name)
            continue
        report._bump(report.imported if wrote else report.skipped, ns.name)


def migrate_legacy(
    root: "Path | str | None" = None,
    *,
    sweep_dir: "Path | str | None" = None,
    trace_dir: "Path | str | None" = None,
    tune_dir: "Path | str | None" = None,
    remove: bool = False,
) -> MigrationReport:
    """Import the three legacy cache dirs into the unified store.

    Source dirs default to the pre-unification locations
    (``benchmarks/.sweep_cache`` etc. under the cwd).  ``remove=True``
    deletes each source dir after a successful import.
    """
    store = ArtifactStore(root)
    report = MigrationReport()
    plans = [
        ("sweep", "json", sweep_dir, migrate_jsonl_dir),
        ("trace", "npz", trace_dir, migrate_npz_dir),
        ("tune", "json", tune_dir, migrate_jsonl_dir),
    ]
    for name, codec, source, importer in plans:
        source = (
            Path(source) if source is not None
            else config.legacy_default_dir(name)
        )
        if source is None or not source.is_dir():
            continue
        ns = store.namespace(name, codec)
        if not ns.persist:
            continue
        # Guard against importing a directory into itself (a namespace
        # dir override pointed at the legacy dir): in-place upgrades are
        # fine, removal afterwards is not.
        in_place = source.resolve() == ns.directory.resolve()
        importer(ns, source, report)
        if remove and not in_place:
            shutil.rmtree(source, ignore_errors=True)
    return report


def auto_migrate(ns: Namespace, source: "Path | None") -> None:
    """First-open hook: import ``source`` (and any legacy-format files
    already inside the namespace dir) exactly once.

    No-ops when the namespace does not persist, when the ``.migrated``
    marker exists, or when there is nothing legacy to import.  Written
    for concurrent first-opens: imports are idempotent and the marker
    write is atomic-enough (a torn marker just re-runs a no-op import).
    """
    if not ns.persist:
        return
    marker = ns.directory / MARKER_NAME
    if marker.exists():
        return
    report = MigrationReport()
    importer = migrate_npz_dir if ns.codec.name == "npz" \
        else migrate_jsonl_dir
    # In-place: legacy-format files inside the namespace dir itself
    # (callers who pointed a dir override at their old cache dir).
    importer(ns, ns.directory, report)
    if source is not None and source.is_dir() \
            and source.resolve() != ns.directory.resolve():
        importer(ns, source, report)
    # Only drop the marker into a directory that already exists (the
    # import itself creates it when anything was written): an empty
    # cache should not materialize on disk just to hold a marker, and
    # re-running the no-op scan is cheap.
    try:
        if ns.directory.is_dir():
            marker.write_text(
                json.dumps(report.sources.get(ns.name, [])) + "\n"
            )
    except OSError:
        pass
