"""The unified content-addressed artifact store.

One store, one key scheme (``<namespace>/<sha256>``), one metrics
surface for every persisted artifact the reproduction produces: sweep
measurements (namespace ``sweep``), compiled replay traces (``trace``),
and autotune measurements (``tune``).  See docs/STORAGE.md for the
architecture, the on-disk format, eviction and pinning, integrity
checks, and migration from the three pre-unification cache dirs.

The sweep executor (:mod:`repro.analysis.executor`), the trace replay
engine (:mod:`repro.machine.replay`), and the tuner
(:mod:`repro.tuner.tuner`) all ride on this layer behind their existing
APIs; this package is the shared substrate plus the maintenance CLI
(``python -m repro.store``).
"""

from repro.store.codecs import (
    BytesCodec,
    Codec,
    JsonCodec,
    NpzCodec,
    get_codec,
    register_codec,
)
from repro.store.config import (
    LEGACY_KNOBS,
    NAMESPACES,
    STORE_DIR_ENV,
    STORE_ENV,
    default_store_root,
    namespace_allowed,
    namespace_dir,
    store_allowed,
)
from repro.store.metrics import (
    STORE_METRICS,
    NamespaceCounters,
    StoreMetrics,
    reset_store_metrics,
    store_metrics_snapshot,
)
from repro.store.migrate import (
    MigrationReport,
    auto_migrate,
    migrate_legacy,
)
from repro.store.store import (
    ArtifactStore,
    Namespace,
    NamespaceStats,
    content_key,
)

__all__ = [
    "ArtifactStore",
    "BytesCodec",
    "Codec",
    "JsonCodec",
    "LEGACY_KNOBS",
    "MigrationReport",
    "NAMESPACES",
    "Namespace",
    "NamespaceCounters",
    "NamespaceStats",
    "NpzCodec",
    "STORE_DIR_ENV",
    "STORE_ENV",
    "STORE_METRICS",
    "StoreMetrics",
    "auto_migrate",
    "content_key",
    "default_store_root",
    "get_codec",
    "migrate_legacy",
    "namespace_allowed",
    "namespace_dir",
    "register_codec",
    "reset_store_metrics",
    "store_allowed",
    "store_metrics_snapshot",
]
