"""Store observability: per-namespace counters.

Every :class:`~repro.store.store.Namespace` owns a private
:class:`NamespaceCounters` (so tests and callers see exactly their own
traffic) and *also* increments the matching counters of the process-wide
:data:`STORE_METRICS` registry, which is what the service's
``GET /metrics`` endpoint snapshots — one ``store`` section with one
entry per namespace, aggregated over every store instance in the
process.
"""

from __future__ import annotations

from repro.store.config import NAMESPACES

__all__ = [
    "NamespaceCounters",
    "StoreMetrics",
    "STORE_METRICS",
    "store_metrics_snapshot",
    "reset_store_metrics",
]


class NamespaceCounters:
    """Mutable hit/miss/eviction/byte counters for one namespace."""

    __slots__ = (
        "hits_memory", "hits_disk", "misses", "puts",
        "bytes_written", "bytes_read",
        "evictions_memory", "evictions_disk",
        "integrity_failures", "quarantined", "io_errors",
        "remote_puts", "remote_rejected", "remote_duplicates",
        "hits_remote",
    )

    def __init__(self) -> None:
        for name in self.__slots__:
            setattr(self, name, 0)

    @property
    def hits(self) -> int:
        return self.hits_memory + self.hits_disk

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def evictions(self) -> int:
        return self.evictions_memory + self.evictions_disk

    def snapshot(self) -> dict:
        """JSON-able counter dump (the ``/metrics`` per-namespace body)."""
        lookups = self.lookups
        return {
            "hits": self.hits,
            "hits_memory": self.hits_memory,
            "hits_disk": self.hits_disk,
            "misses": self.misses,
            "hit_rate": round(self.hits / lookups, 4) if lookups else 0.0,
            "puts": self.puts,
            "bytes_written": self.bytes_written,
            "bytes_read": self.bytes_read,
            "evictions": self.evictions,
            "evictions_memory": self.evictions_memory,
            "evictions_disk": self.evictions_disk,
            "integrity_failures": self.integrity_failures,
            "quarantined": self.quarantined,
            "io_errors": self.io_errors,
            "remote_puts": self.remote_puts,
            "remote_rejected": self.remote_rejected,
            "remote_duplicates": self.remote_duplicates,
            "hits_remote": self.hits_remote,
        }


class StoreMetrics:
    """A registry of :class:`NamespaceCounters`, keyed by namespace name.

    The standard namespaces (:data:`~repro.store.config.NAMESPACES`)
    always exist — zeroed until traffic arrives — so dashboards and CI
    assertions can rely on their presence.
    """

    def __init__(self) -> None:
        self._by_namespace: dict[str, NamespaceCounters] = {}
        for name in NAMESPACES:
            self._by_namespace[name] = NamespaceCounters()

    def counters(self, namespace: str) -> NamespaceCounters:
        """The (created-on-demand) counters for one namespace."""
        found = self._by_namespace.get(namespace)
        if found is None:
            found = self._by_namespace[namespace] = NamespaceCounters()
        return found

    def snapshot(self) -> dict:
        """Per-namespace counter dump, namespaces sorted by name."""
        return {
            name: self._by_namespace[name].snapshot()
            for name in sorted(self._by_namespace)
        }

    def reset(self) -> None:
        """Zero every counter and drop non-standard namespaces."""
        self._by_namespace.clear()
        for name in NAMESPACES:
            self._by_namespace[name] = NamespaceCounters()


#: Process-wide aggregate, surfaced through the service ``/metrics``.
STORE_METRICS = StoreMetrics()


def store_metrics_snapshot() -> dict:
    """The global per-namespace counters (the ``store`` metrics section)."""
    return STORE_METRICS.snapshot()


def reset_store_metrics() -> None:
    """Zero the global registry (tests only)."""
    STORE_METRICS.reset()
