"""Store maintenance CLI.

::

    python -m repro.store migrate [--root DIR] [--sweep DIR] [--trace DIR]
                                  [--tune DIR] [--remove]
    python -m repro.store stats   [--root DIR]
    python -m repro.store clear   [--root DIR] [--namespace NS]

``migrate`` imports the legacy cache dirs (``benchmarks/.sweep_cache``,
``benchmarks/.trace_store``, ``benchmarks/.tune_cache``) into the
unified store; ``stats`` prints per-namespace contents; ``clear`` drops
entries (one namespace, or all three standard ones).
"""

from __future__ import annotations

import argparse
import sys

from repro.store.config import NAMESPACES
from repro.store.migrate import migrate_legacy
from repro.store.store import ArtifactStore

_CODECS = {"sweep": "json", "trace": "npz", "tune": "json",
           "telemetry": "json"}


def main(argv: "list[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.store",
        description="Unified artifact store maintenance.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_migrate = sub.add_parser(
        "migrate", help="import the legacy cache dirs into the store"
    )
    p_migrate.add_argument("--root", default=None, help="store root dir")
    p_migrate.add_argument("--sweep", default=None,
                           help="legacy sweep cache dir")
    p_migrate.add_argument("--trace", default=None,
                           help="legacy trace store dir")
    p_migrate.add_argument("--tune", default=None,
                           help="legacy tune cache dir")
    p_migrate.add_argument("--remove", action="store_true",
                           help="delete the legacy dirs after importing")

    p_stats = sub.add_parser("stats", help="print per-namespace contents")
    p_stats.add_argument("--root", default=None, help="store root dir")

    p_clear = sub.add_parser("clear", help="drop stored entries")
    p_clear.add_argument("--root", default=None, help="store root dir")
    p_clear.add_argument("--namespace", default=None, choices=NAMESPACES,
                         help="only this namespace (default: all)")

    args = parser.parse_args(argv)

    if args.command == "migrate":
        report = migrate_legacy(
            args.root, sweep_dir=args.sweep, trace_dir=args.trace,
            tune_dir=args.tune, remove=args.remove,
        )
        print(report.describe())
        return 0

    store = ArtifactStore(args.root)
    if args.command == "stats":
        print(f"store root: {store.resolve_root()}")
        for name in NAMESPACES:
            ns = store.namespace(name, _CODECS[name])
            print("  " + ns.stats().describe())
        return 0

    # clear
    names = [args.namespace] if args.namespace else list(NAMESPACES)
    for name in names:
        ns = store.namespace(name, _CODECS[name])
        removed = ns.clear()
        print(f"{name}: removed {removed} entries")
    return 0


if __name__ == "__main__":
    sys.exit(main())
