"""The unified content-addressed artifact store.

One :class:`ArtifactStore` replaces the three parallel caches that grew
around the sweep executor (``benchmarks/.sweep_cache``), the trace
replay engine (``benchmarks/.trace_store``), and the autotuner
(``benchmarks/.tune_cache``).  Artifacts of every type live under one
root, one key scheme, and one metrics surface:

* **Keys** are ``<namespace>/<sha256>``: the namespace names the
  artifact type (``sweep``, ``trace``, ``tune``, ...), the digest is a
  SHA-256 over a canonical byte encoding of whatever identifies the
  artifact (:func:`content_key` hashes canonical JSON; callers with
  their own canonical encoding — e.g. replay's
  :func:`~repro.machine.replay.derive_launch_key` — pass their digest
  straight through).
* **Two tiers** — an in-memory LRU in front of an on-disk directory.
  Disk writes are atomic (temp file + ``os.replace``), and every entry
  is framed with an integrity envelope (header carrying the payload's
  SHA-256 and size) that is verified on read.  A corrupt or truncated
  entry is *quarantined* (moved into ``quarantine/``) and reported as a
  miss — never a crash.
* **Eviction** is size- and count-based per tier, and never touches
  *pinned* keys.  Memory defaults to a bounded LRU; disk defaults to
  unlimited (a cache you paid to fill), with opt-in budgets via
  constructor caps or ``REPRO_STORE_<NS>_MAX_BYTES`` /
  ``REPRO_STORE_<NS>_MAX_ENTRIES``.
* **Metrics** — every namespace counts hits (per tier), misses, puts,
  evictions, bytes, and integrity failures, both privately
  (:attr:`Namespace.counters`) and into the process-wide
  :data:`~repro.store.metrics.STORE_METRICS` registry the service's
  ``/metrics`` endpoint snapshots.

The layer is deliberately network-serializable: an entry is one header
line plus payload bytes, and the sharded cost-oracle cluster
(:mod:`repro.cluster`) ships exactly those framed bytes between worker
shards — :meth:`Namespace.get_framed` reads an entry in wire form,
:meth:`Namespace.put_framed` verifies the envelope before storing, so a
corrupted-in-flight push is rejected rather than cached.
"""

from __future__ import annotations

import hashlib
import json
import os
import re
from collections import OrderedDict, deque
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Iterator

from repro.store import config
from repro.store.codecs import Codec, get_codec
from repro.store.metrics import STORE_METRICS, NamespaceCounters, StoreMetrics

__all__ = [
    "ArtifactStore",
    "Namespace",
    "NamespaceStats",
    "content_key",
    "ENVELOPE_MAGIC",
    "ENVELOPE_VERSION",
]

ENVELOPE_MAGIC = b"repro-store"
ENVELOPE_VERSION = 1

_DEFAULT_MEMORY_ENTRIES = 4096
_DEFAULT_MEMORY_BYTES = 64 << 20  # 64 MiB of decoded payloads


def content_key(material: Any) -> str:
    """SHA-256 digest of ``material``'s canonical JSON encoding.

    The standard way to derive a store key from a JSON-able identity
    (a spec dict, a parameter point, ...).  Keys derived elsewhere just
    need to be 64 hex chars — any canonical byte encoding works.
    """
    blob = json.dumps(material, sort_keys=True, default=str)
    return hashlib.sha256(blob.encode()).hexdigest()


_KEY_RE = re.compile(r"[0-9a-f]{64}")


def _check_key(key: str) -> str:
    if _KEY_RE.fullmatch(key) is None:
        raise ValueError(
            f"store keys are 64-char lowercase sha256 hex digests, got {key!r}"
        )
    return key


@dataclass(frozen=True)
class NamespaceStats:
    """Current contents of one namespace (counters live on
    :attr:`Namespace.counters`)."""

    namespace: str
    entries_memory: int
    entries_disk: int
    disk_bytes: int
    pinned: int

    def describe(self) -> str:
        return (
            f"{self.namespace}: {self.entries_memory} in memory / "
            f"{self.entries_disk} on disk ({self.disk_bytes} bytes, "
            f"{self.pinned} pinned)"
        )


class Namespace:
    """One artifact type's keyed view of the store.

    Obtained from :meth:`ArtifactStore.namespace`; all reads and writes
    go through here.  Each instance owns its memory tier; the disk tier
    is shared with every other process pointing at the same directory.
    """

    def __init__(
        self,
        name: str,
        codec: Codec,
        directory: Path,
        *,
        persist: bool,
        max_memory_entries: int,
        max_memory_bytes: int | None,
        max_disk_entries: int | None,
        max_disk_bytes: int | None,
        counters: NamespaceCounters,
        shared: NamespaceCounters,
    ) -> None:
        self.name = name
        self.codec = codec
        self.directory = Path(directory)
        self.persist = persist
        self.max_memory_entries = max(1, max_memory_entries)
        self.max_memory_bytes = max_memory_bytes
        self.max_disk_entries = max_disk_entries
        self.max_disk_bytes = max_disk_bytes
        #: This instance's private counters.
        self.counters = counters
        self._shared = shared
        self._lru: "OrderedDict[str, tuple[Any, int]]" = OrderedDict()
        self._memory_bytes = 0
        self._pinned: set[str] = set()
        # Cluster support: keys that arrived via a remote warm push (so
        # later lookups can be attributed to warming) and a bounded log
        # of locally-written keys (what a shard offers its peers).
        self._remote_keys: set[str] = set()
        self._recent_puts: "deque[str] | None" = None

    # -- bookkeeping --------------------------------------------------------
    def _count(self, counter: str, amount: int = 1) -> None:
        setattr(self.counters, counter,
                getattr(self.counters, counter) + amount)
        setattr(self._shared, counter,
                getattr(self._shared, counter) + amount)

    # -- paths and framing --------------------------------------------------
    def path_of(self, key: str) -> Path:
        """The on-disk entry file for one key."""
        return self.directory / f"{key}.{self.codec.extension}"

    @property
    def quarantine_dir(self) -> Path:
        return self.directory / "quarantine"

    def _frame(self, key: str, payload: bytes) -> bytes:
        digest = hashlib.sha256(payload).hexdigest()
        header = (
            f"{ENVELOPE_MAGIC.decode()} {ENVELOPE_VERSION} {self.name} "
            f"{key} {self.codec.name} {digest} {len(payload)}\n"
        )
        return header.encode("ascii") + payload

    def _unframe(self, key: str, blob: bytes) -> bytes | None:
        """Payload bytes of a framed entry, or ``None`` when invalid."""
        head, sep, payload = blob.partition(b"\n")
        if not sep:
            return None
        try:
            fields = head.decode("ascii").split()
            magic, version, namespace, k, codec, digest, size = fields
        except (UnicodeDecodeError, ValueError):
            return None
        if (
            magic != ENVELOPE_MAGIC.decode()
            or version != str(ENVELOPE_VERSION)
            or namespace != self.name
            or k != key
            or codec != self.codec.name
            or size != str(len(payload))
            or hashlib.sha256(payload).hexdigest() != digest
        ):
            return None
        return payload

    def _quarantine(self, path: Path) -> None:
        self._count("integrity_failures")
        try:
            self.quarantine_dir.mkdir(parents=True, exist_ok=True)
            os.replace(path, self.quarantine_dir / path.name)
            self._count("quarantined")
        except OSError:
            self._count("io_errors")

    # -- memory tier --------------------------------------------------------
    def _remember(self, key: str, obj: Any, nbytes: int) -> None:
        old = self._lru.pop(key, None)
        if old is not None:
            self._memory_bytes -= old[1]
        self._lru[key] = (obj, nbytes)
        self._memory_bytes += nbytes
        self._evict_memory()

    def _evict_memory(self) -> None:
        over = True
        while over:
            over = len(self._lru) > self.max_memory_entries or (
                self.max_memory_bytes is not None
                and self._memory_bytes > self.max_memory_bytes
                and len(self._lru) > 1
            )
            if not over:
                return
            victim = next(
                (k for k in self._lru if k not in self._pinned), None
            )
            if victim is None:
                return  # everything pinned: over budget, but untouchable
            _, nbytes = self._lru.pop(victim)
            self._memory_bytes -= nbytes
            self._count("evictions_memory")

    # -- disk tier ----------------------------------------------------------
    def _disk_entries(self) -> list[tuple[Path, os.stat_result]]:
        if not self.directory.is_dir():
            return []
        out = []
        suffix = f".{self.codec.extension}"
        for path in self.directory.iterdir():
            if path.name.endswith(suffix) and not path.name.startswith("."):
                try:
                    out.append((path, path.stat()))
                except OSError:  # pragma: no cover - fs race
                    continue
        return out

    def _evict_disk(self) -> None:
        if self.max_disk_entries is None and self.max_disk_bytes is None:
            return
        entries = self._disk_entries()
        total = sum(st.st_size for _, st in entries)
        count = len(entries)
        if (self.max_disk_entries is None or count <= self.max_disk_entries) \
                and (self.max_disk_bytes is None
                     or total <= self.max_disk_bytes):
            return
        for path, st in sorted(entries, key=lambda e: e[1].st_mtime):
            key = path.name.rsplit(".", 1)[0]
            if key in self._pinned:
                continue
            try:
                path.unlink()
            except OSError:  # pragma: no cover - fs race
                self._count("io_errors")
                continue
            count -= 1
            total -= st.st_size
            self._count("evictions_disk")
            if (self.max_disk_entries is None
                    or count <= self.max_disk_entries) and \
               (self.max_disk_bytes is None or total <= self.max_disk_bytes):
                return

    # -- the keyed interface ------------------------------------------------
    def get(self, key: str) -> Any | None:
        """The artifact stored under ``key``, or ``None`` (a miss).

        Memory first, then disk with integrity verification; a disk hit
        is promoted into the memory tier.  Corrupt entries quarantine.
        """
        _check_key(key)
        found = self._lru.get(key)
        if found is not None:
            # Warm path: inlined counter bumps (dynamic `_count` costs a
            # measurable fraction of a memory hit; see bench_store.py).
            self._lru.move_to_end(key)
            self.counters.hits_memory += 1
            self._shared.hits_memory += 1
            if self._remote_keys and key in self._remote_keys:
                self.counters.hits_remote += 1
                self._shared.hits_remote += 1
            return found[0]
        if self.persist:
            path = self.path_of(key)
            try:
                blob = path.read_bytes()
            except FileNotFoundError:
                pass
            except OSError:
                self._count("io_errors")
            else:
                payload = self._unframe(key, blob)
                if payload is None:
                    self._quarantine(path)
                else:
                    try:
                        obj = self.codec.decode(payload)
                    except Exception:  # noqa: BLE001 - codec-level corruption
                        self._quarantine(path)
                    else:
                        self._count("hits_disk")
                        self._count("bytes_read", len(payload))
                        if self._remote_keys and key in self._remote_keys:
                            self._count("hits_remote")
                        self._remember(key, obj, len(payload))
                        return obj
        self._count("misses")
        return None

    def put(
        self, key: str, obj: Any, *, pin: bool = False,
        skip_existing: bool = False,
    ) -> bool:
        """Store ``obj`` under ``key``; returns ``False`` when
        ``skip_existing`` suppressed an overwrite.

        The write is atomic (temp file + rename), so concurrent writers
        race harmlessly — both produce complete, verifiable entries and
        the last rename wins.
        """
        _check_key(key)
        if pin:
            self._pinned.add(key)
        if skip_existing and (
            key in self._lru
            or (self.persist and self.path_of(key).exists())
        ):
            return False
        # A memory-only namespace with no byte budget never needs the
        # encoded payload — skip the (possibly expensive) encode.
        if self.persist or self.max_memory_bytes is not None:
            payload = self.codec.encode(obj)
        else:
            payload = None
        self._count("puts")
        self._remember(key, obj, len(payload) if payload is not None else 0)
        if self._recent_puts is not None:
            self._recent_puts.append(key)
        if not self.persist:
            return True
        try:
            self.directory.mkdir(parents=True, exist_ok=True)
            tmp = self.directory / f".tmp-{os.getpid()}-{key}"
            tmp.write_bytes(self._frame(key, payload))
            os.replace(tmp, self.path_of(key))
        except OSError:
            self._count("io_errors")
            return True
        self._count("bytes_written", len(payload))
        self._evict_disk()
        return True

    def contains(self, key: str) -> bool:
        """Is ``key`` present (either tier), without counting a lookup?"""
        _check_key(key)
        return key in self._lru or (
            self.persist and self.path_of(key).exists()
        )

    def delete(self, key: str) -> bool:
        """Drop one entry from both tiers; ``True`` if anything existed."""
        _check_key(key)
        existed = False
        found = self._lru.pop(key, None)
        if found is not None:
            self._memory_bytes -= found[1]
            existed = True
        self._pinned.discard(key)
        if self.persist:
            try:
                self.path_of(key).unlink()
                existed = True
            except FileNotFoundError:
                pass
            except OSError:  # pragma: no cover - fs race
                self._count("io_errors")
        return existed

    # -- framed transfer (cluster warm push / pull) --------------------------
    def get_framed(self, key: str) -> bytes | None:
        """One entry as its framed wire bytes (envelope + payload).

        This is the cluster transfer format: the exact blob another
        process can verify and store with :meth:`put_framed`.  Disk
        entries ship verbatim after an integrity check (corrupt ones
        quarantine and return ``None``); memory-only entries are framed
        on the fly.  Counter-neutral apart from integrity failures.
        """
        _check_key(key)
        if self.persist:
            path = self.path_of(key)
            try:
                blob = path.read_bytes()
            except FileNotFoundError:
                blob = None
            except OSError:
                self._count("io_errors")
                blob = None
            if blob is not None:
                if self._unframe(key, blob) is None:
                    self._quarantine(path)
                else:
                    return blob
        found = self._lru.get(key)
        if found is None:
            return None
        try:
            payload = self.codec.encode(found[0])
        except Exception:  # noqa: BLE001 - unencodable artifact
            return None
        return self._frame(key, payload)

    def put_framed(self, key: str, blob: bytes, *,
                   overwrite: bool = False) -> str:
        """Store a framed entry received over the wire.

        The envelope is verified *before* anything is written — magic,
        version, namespace, key, codec, payload digest and size must all
        match, and the payload must decode — so a corrupted-in-flight
        push is rejected, never stored.  Returns ``"stored"``,
        ``"duplicate"`` (already present and ``overwrite`` unset), or
        ``"rejected"``.
        """
        _check_key(key)
        payload = self._unframe(key, bytes(blob))
        if payload is None:
            self._count("remote_rejected")
            return "rejected"
        try:
            obj = self.codec.decode(payload)
        except Exception:  # noqa: BLE001 - codec-level corruption
            self._count("remote_rejected")
            return "rejected"
        if not overwrite and self.contains(key):
            self._count("remote_duplicates")
            return "duplicate"
        self._count("remote_puts")
        self._remember(key, obj, len(payload))
        self._remote_keys.add(key)
        while len(self._remote_keys) > 8192:  # bounded attribution set
            self._remote_keys.pop()
        if not self.persist:
            return "stored"
        try:
            self.directory.mkdir(parents=True, exist_ok=True)
            tmp = self.directory / f".tmp-{os.getpid()}-{key}"
            tmp.write_bytes(bytes(blob))
            os.replace(tmp, self.path_of(key))
        except OSError:
            self._count("io_errors")
            return "stored"
        self._count("bytes_written", len(payload))
        self._evict_disk()
        return "stored"

    def track_recent_puts(self, capacity: int = 512) -> None:
        """Start logging locally-written keys (for cluster warm push).

        Only genuine local :meth:`put` calls are logged — entries that
        arrived via :meth:`put_framed` are not, so shards never re-push
        what a peer just pushed to them.
        """
        if self._recent_puts is None or self._recent_puts.maxlen != capacity:
            self._recent_puts = deque(self._recent_puts or (),
                                      maxlen=capacity)

    def drain_recent_puts(self) -> list[str]:
        """Keys written locally since the last drain (oldest first)."""
        if not self._recent_puts:
            return []
        out, self._recent_puts = (list(self._recent_puts),
                                  deque(maxlen=self._recent_puts.maxlen))
        return out

    # -- pinning ------------------------------------------------------------
    def pin(self, key: str) -> None:
        """Exempt ``key`` from eviction in both tiers."""
        self._pinned.add(_check_key(key))

    def unpin(self, key: str) -> None:
        self._pinned.discard(key)

    def pinned(self) -> frozenset[str]:
        return frozenset(self._pinned)

    # -- enumeration and maintenance ----------------------------------------
    def keys(self) -> list[str]:
        """Keys present on disk (sorted); memory-only keys when not
        persisting."""
        if not self.persist:
            return sorted(self._lru)
        return sorted(
            path.name.rsplit(".", 1)[0] for path, _ in self._disk_entries()
        )

    def scan(self) -> Iterator[tuple[str, Any]]:
        """Yield every decodable on-disk entry as ``(key, artifact)``.

        Counter-neutral: nothing is counted as a hit or a miss and the
        memory tier is left alone, so maintenance passes (stats, CLI
        listings) do not distort session metrics.  Invalid entries are
        skipped, not quarantined.
        """
        if not self.persist:
            for key in sorted(self._lru):
                yield key, self._lru[key][0]
            return
        for key in self.keys():
            try:
                blob = self.path_of(key).read_bytes()
            except OSError:
                continue
            payload = self._unframe(key, blob)
            if payload is None:
                continue
            try:
                yield key, self.codec.decode(payload)
            except Exception:  # noqa: BLE001 - codec-level corruption
                continue

    def clear(self) -> int:
        """Drop every entry (memory, disk, quarantine); returns the
        number of disk entry files removed.  Pins survive."""
        self._lru.clear()
        self._memory_bytes = 0
        removed = 0
        if self.directory.is_dir():
            for path, _ in self._disk_entries():
                try:
                    path.unlink()
                    removed += 1
                except OSError:  # pragma: no cover - fs race
                    self._count("io_errors")
            if self.quarantine_dir.is_dir():
                for path in self.quarantine_dir.iterdir():
                    try:
                        path.unlink()
                    except OSError:  # pragma: no cover - fs race
                        self._count("io_errors")
        return removed

    def stats(self) -> NamespaceStats:
        entries = self._disk_entries() if self.persist else []
        return NamespaceStats(
            namespace=self.name,
            entries_memory=len(self._lru),
            entries_disk=len(entries),
            disk_bytes=sum(st.st_size for _, st in entries),
            pinned=len(self._pinned),
        )


class ArtifactStore:
    """The unified store: a root directory of codec-typed namespaces.

    Parameters
    ----------
    root:
        Store root (default
        :func:`~repro.store.config.default_store_root`, honoring
        ``REPRO_STORE_DIR``).  Namespaces with a directory override
        (argument or ``REPRO_STORE_<NS>_DIR``) live outside the root.
    persist:
        Force disk persistence on/off for every namespace; default
        defers to ``REPRO_STORE`` / per-namespace switches.
    metrics:
        The :class:`~repro.store.metrics.StoreMetrics` registry shared
        counters go to (default the process-wide one ``/metrics``
        snapshots).
    """

    def __init__(
        self,
        root: "Path | str | None" = None,
        *,
        persist: bool | None = None,
        metrics: StoreMetrics | None = None,
    ) -> None:
        self.root = Path(root) if root is not None else None
        self._persist = persist
        self._metrics = metrics if metrics is not None else STORE_METRICS

    def resolve_root(self) -> Path:
        return self.root if self.root is not None \
            else config.default_store_root()

    def namespace(
        self,
        name: str,
        codec: "Codec | str" = "json",
        *,
        directory: "Path | str | None" = None,
        persist: bool | None = None,
        max_memory_entries: int | None = None,
        max_memory_bytes: "int | None" = _DEFAULT_MEMORY_BYTES,
        max_disk_entries: int | None = None,
        max_disk_bytes: int | None = None,
    ) -> Namespace:
        """Open one namespace view.

        ``directory`` pins the entry directory (back-compat with the
        legacy per-cache dir knobs); otherwise the env override or
        ``<root>/<name>`` applies.  Memory/disk budgets default from the
        ``REPRO_STORE_<NS>_{LRU,MAX_ENTRIES,MAX_BYTES}`` variables.
        """
        if directory is not None:
            where = Path(directory)
        else:
            where = config.namespace_dir(name, self.root)
        if persist is None:
            persist = self._persist
        if persist is None:
            persist = config.namespace_allowed(name)
        if max_memory_entries is None:
            max_memory_entries = (
                config.namespace_int(name, "LRU") or _DEFAULT_MEMORY_ENTRIES
            )
        if max_disk_entries is None:
            max_disk_entries = config.namespace_int(name, "MAX_ENTRIES")
        if max_disk_bytes is None:
            max_disk_bytes = config.namespace_int(name, "MAX_BYTES")
        return Namespace(
            name,
            get_codec(codec),
            where,
            persist=persist,
            max_memory_entries=max_memory_entries,
            max_memory_bytes=max_memory_bytes,
            max_disk_entries=max_disk_entries,
            max_disk_bytes=max_disk_bytes,
            counters=NamespaceCounters(),
            shared=self._metrics.counters(name),
        )

    def metrics_snapshot(self) -> dict:
        """Per-namespace counters of this store's metrics registry."""
        return self._metrics.snapshot()
