"""Exception hierarchy for the memory machine simulator.

Every error raised by :mod:`repro` derives from :class:`ReproError` so that
callers can catch library failures without masking unrelated bugs.

This module also hosts :func:`warn_once`, the shared once-per-process
warning helper used by the store's deprecation shims and the native
backend's no-compiler fallback (one registry instead of per-module
``_warned`` sets).
"""

from __future__ import annotations

import warnings

__all__ = [
    "ReproError",
    "ConfigurationError",
    "AllocationError",
    "AddressError",
    "KernelError",
    "LockstepError",
    "DeadlockError",
    "SpaceMismatchError",
    "TraceOverflowError",
    "warn_once",
    "reset_warn_once",
]


_warned_keys: set[str] = set()


def warn_once(
    key: str,
    message: str,
    *,
    category: type[Warning] = UserWarning,
    stacklevel: int = 3,
) -> bool:
    """Emit ``message`` at most once per process per ``key``.

    Returns ``True`` when the warning was actually emitted.  Keys are
    namespaced by convention (``"deprecated-env:REPRO_TRACE_LRU"``,
    ``"native:no-compiler"``) so callers can reset their own family via
    :func:`reset_warn_once` without silencing anyone else's.
    """
    if key in _warned_keys:
        return False
    _warned_keys.add(key)
    warnings.warn(message, category, stacklevel=stacklevel)
    return True


def reset_warn_once(prefix: str | None = None) -> None:
    """Forget emitted warn-once keys (tests only).

    With ``prefix``, forget only keys starting with it; without, forget
    everything.
    """
    if prefix is None:
        _warned_keys.clear()
        return
    for key in [k for k in _warned_keys if k.startswith(prefix)]:
        _warned_keys.discard(key)


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ConfigurationError(ReproError, ValueError):
    """Invalid machine parameters (width, latency, thread counts, ...)."""


class AllocationError(ReproError):
    """A memory space cannot satisfy an allocation request."""


class AddressError(ReproError, IndexError):
    """A kernel accessed an address outside the bounds of its array."""


class KernelError(ReproError):
    """A warp program violated the execution protocol."""


class LockstepError(KernelError):
    """Warps of a SIMD group diverged where the model requires lockstep.

    The memory machine models execute every thread of a warp in lockstep;
    a warp program must issue the same *kind* of operation for all active
    lanes at every step.  Divergence is expressed with lane masks, never
    with per-lane control flow.
    """


class DeadlockError(KernelError):
    """The scheduler detected that no warp can make progress.

    This typically means a barrier was reached by only a subset of the
    warps that synchronize on it.
    """


class SpaceMismatchError(KernelError):
    """An operation referenced an array that lives in a different memory
    space than the one the operation targets (e.g. a shared-memory read of
    a global-memory array)."""


class TraceOverflowError(ReproError):
    """A trace recorder hit its configured ``max_transactions`` cap.

    Tracing stores every warp transaction; on large launches that grows
    without bound.  Recorders accept an optional cap and raise this error
    instead of silently exhausting memory; the trace-replay capture path
    catches it and falls back to an untraced event run.
    """
