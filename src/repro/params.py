"""Machine parameters for the memory machine models.

The paper evaluates every algorithm as a function of five parameters:

``n``
    problem size (an algorithm property, not a machine property),
``p``
    total number of threads,
``w``
    the *width* — the number of memory banks of each shared memory and of
    the global memory, which is also the warp size,
``l``
    the *latency* of the global memory (shared memory has latency 1),
``d``
    the number of DMMs (streaming multiprocessors) of the HMM.

:class:`MachineParams` captures ``(w, l)`` for a single DMM or UMM;
:class:`HMMParams` adds ``d`` and the shared-memory latency.  Presets for
the GPU the paper uses to motivate parameter magnitudes (GeForce GTX 580)
are provided, together with a couple of small configurations convenient
for tests and figures.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.errors import ConfigurationError

__all__ = [
    "MachineParams",
    "HMMParams",
    "GTX580",
    "C2050",
    "FIG4_PARAMS",
    "TINY",
    "validate_thread_count",
    "warps_for",
]


def _require(cond: bool, message: str) -> None:
    if not cond:
        raise ConfigurationError(message)


@dataclass(frozen=True)
class MachineParams:
    """Parameters of a single memory machine (DMM or UMM).

    Parameters
    ----------
    width:
        Number of memory banks ``w``; also the warp size.  Must be a
        positive power of two (the paper's bank mapping ``addr mod w`` and
        NVIDIA hardware both use power-of-two widths).
    latency:
        Memory access latency ``l`` in time units (``l >= 1``).
    """

    width: int = 32
    latency: int = 1

    def __post_init__(self) -> None:
        _require(self.width >= 1, f"width must be >= 1, got {self.width}")
        _require(
            self.width & (self.width - 1) == 0,
            f"width must be a power of two, got {self.width}",
        )
        _require(self.latency >= 1, f"latency must be >= 1, got {self.latency}")

    @property
    def w(self) -> int:
        """Paper notation alias for :attr:`width`."""
        return self.width

    @property
    def l(self) -> int:  # noqa: E743 - paper notation
        """Paper notation alias for :attr:`latency`."""
        return self.latency

    def with_latency(self, latency: int) -> "MachineParams":
        """Return a copy with a different latency."""
        return replace(self, latency=latency)


@dataclass(frozen=True)
class HMMParams:
    """Parameters of the Hierarchical Memory Machine.

    An HMM consists of ``d`` DMMs (each with a width-``w`` shared memory of
    latency ``shared_latency``, 1 in the paper) and a single UMM global
    memory of width ``w`` and latency ``global_latency``.
    """

    num_dmms: int = 16
    width: int = 32
    global_latency: int = 400
    shared_latency: int = 1
    #: Maximum resident threads per DMM (GTX580: 1536).  ``None`` disables
    #: the cap; algorithms use it only to pick default thread counts.
    max_threads_per_dmm: int | None = None

    def __post_init__(self) -> None:
        _require(self.num_dmms >= 1, f"num_dmms must be >= 1, got {self.num_dmms}")
        _require(self.width >= 1, f"width must be >= 1, got {self.width}")
        _require(
            self.width & (self.width - 1) == 0,
            f"width must be a power of two, got {self.width}",
        )
        _require(
            self.global_latency >= 1,
            f"global_latency must be >= 1, got {self.global_latency}",
        )
        _require(
            self.shared_latency >= 1,
            f"shared_latency must be >= 1, got {self.shared_latency}",
        )
        if self.max_threads_per_dmm is not None:
            _require(
                self.max_threads_per_dmm >= self.width,
                "max_threads_per_dmm must be at least one warp "
                f"({self.width}), got {self.max_threads_per_dmm}",
            )

    # -- paper notation ---------------------------------------------------
    @property
    def d(self) -> int:
        """Paper notation alias for :attr:`num_dmms`."""
        return self.num_dmms

    @property
    def w(self) -> int:
        """Paper notation alias for :attr:`width`."""
        return self.width

    @property
    def l(self) -> int:  # noqa: E743 - paper notation
        """Paper notation alias for :attr:`global_latency`."""
        return self.global_latency

    # -- derived machines --------------------------------------------------
    def shared_params(self) -> MachineParams:
        """Parameters of one DMM's shared memory."""
        return MachineParams(width=self.width, latency=self.shared_latency)

    def global_params(self) -> MachineParams:
        """Parameters of the UMM global memory."""
        return MachineParams(width=self.width, latency=self.global_latency)

    def max_threads(self) -> int | None:
        """Device-wide resident thread cap, if configured."""
        if self.max_threads_per_dmm is None:
            return None
        return self.max_threads_per_dmm * self.num_dmms

    def with_global_latency(self, latency: int) -> "HMMParams":
        """Return a copy with a different global-memory latency."""
        return replace(self, global_latency=latency)

    def with_num_dmms(self, d: int) -> "HMMParams":
        """Return a copy with a different number of DMMs."""
        return replace(self, num_dmms=d)


#: The GPU the paper uses to ground its parameters (Section III): 16
#: streaming multiprocessors, warps of 32 threads, 32 shared-memory banks,
#: up to 1536 resident threads per SM, and a global-memory latency of
#: "several hundred clock cycles" (we default to 400).
GTX580 = HMMParams(
    num_dmms=16,
    width=32,
    global_latency=400,
    shared_latency=1,
    max_threads_per_dmm=1536,
)

#: A Fermi-generation compute GPU (Tesla C2050): 14 SMs, 32-wide warps
#: and banks, ~1150 resident threads per SM, global latency in the same
#: several-hundred-cycle class as the GTX580.
C2050 = HMMParams(
    num_dmms=14,
    width=32,
    global_latency=400,
    shared_latency=1,
    max_threads_per_dmm=1536,
)

#: Parameters of the paper's Figure 4 (global memory access example):
#: width 4, latency 5.
FIG4_PARAMS = MachineParams(width=4, latency=5)

#: A tiny configuration convenient for exhaustive tests.
TINY = HMMParams(num_dmms=2, width=4, global_latency=5, shared_latency=1)


def warps_for(num_threads: int, width: int) -> int:
    """Number of warps needed for ``num_threads`` threads (``ceil(p / w)``)."""
    _require(num_threads >= 1, f"need at least one thread, got {num_threads}")
    return -(-num_threads // width)


def validate_thread_count(
    p: int,
    *,
    width: int,
    num_dmms: int = 1,
    require_full_warps: bool = False,
) -> None:
    """Validate a thread count against the machine shape.

    The paper assumes ``p >= d·w`` (each DMM runs at least one warp) for
    its HMM algorithms; callers that rely on that assumption pass
    ``require_full_warps=True``.
    """
    _require(p >= 1, f"thread count must be >= 1, got {p}")
    if require_full_warps:
        _require(
            p % (width * num_dmms) == 0,
            f"thread count {p} must be a multiple of num_dmms*width = "
            f"{num_dmms * width} so every DMM runs whole warps",
        )


def log2_ceil(n: int) -> int:
    """``ceil(log2 n)`` for ``n >= 1`` (0 for ``n == 1``)."""
    _require(n >= 1, f"log2_ceil requires n >= 1, got {n}")
    return (n - 1).bit_length()


def is_power_of_two(n: int) -> bool:
    """True when ``n`` is a positive power of two."""
    return n >= 1 and (n & (n - 1)) == 0


def next_power_of_two(n: int) -> int:
    """Smallest power of two ``>= n`` (``n >= 1``)."""
    _require(n >= 1, f"next_power_of_two requires n >= 1, got {n}")
    return 1 << log2_ceil(n)
