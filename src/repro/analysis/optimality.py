"""Optimality checks: measured time vs. Table II lower bounds.

The paper's optimality theorems say each algorithm's time matches its
lower bound up to a constant.  Empirically that is two inequalities over
a parameter sweep:

* **soundness** — every measured run takes at least the largest
  limitation (a simulator that beat a lower bound would be broken);
* **tightness** — the ratio measured / lower-bound stays below a modest
  constant across the entire sweep (no parameter regime where the
  algorithm loses more than a constant factor).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.terms import Formula, Params
from repro.errors import ConfigurationError

__all__ = ["OptimalityReport", "check_optimality"]


@dataclass(frozen=True)
class OptimalityReport:
    """Outcome of an optimality check over a sweep."""

    #: True when no measurement undercuts its lower bound.
    sound: bool
    #: Largest measured / lower-bound ratio over the sweep.
    worst_ratio: float
    #: Smallest measured / lower-bound ratio over the sweep.
    best_ratio: float
    #: Number of points checked.
    points: int
    #: Violating points (sweep index, measured, bound) when not sound.
    violations: tuple[tuple[int, float, float], ...] = ()

    def tight_within(self, constant: float) -> bool:
        """True when every ratio is at most ``constant``."""
        return self.sound and self.worst_ratio <= constant

    def describe(self) -> str:
        status = "sound" if self.sound else f"VIOLATED at {len(self.violations)} points"
        return (
            f"optimality over {self.points} points: {status}; measured/bound "
            f"in [{self.best_ratio:.2f}, {self.worst_ratio:.2f}]"
        )


def check_optimality(
    limitations: dict[str, Formula],
    points: list[Params],
    measured: list[float],
) -> OptimalityReport:
    """Check a sweep of measurements against a set of limitations.

    ``limitations`` is one model's entry of
    :data:`repro.analysis.lower_bounds.SUM_BOUNDS` /
    :data:`~repro.analysis.lower_bounds.CONV_BOUNDS`.  The lower bound at
    each point is the *maximum* limitation (each is individually
    necessary).
    """
    if len(points) != len(measured):
        raise ConfigurationError(
            f"{len(points)} parameter points but {len(measured)} measurements"
        )
    if not points:
        raise ConfigurationError("need at least one sweep point")
    ratios = []
    violations = []
    for i, (q, t) in enumerate(zip(points, measured)):
        bound = max(f(q) for f in limitations.values())
        if bound <= 0:
            raise ConfigurationError(f"nonpositive lower bound at point {i}")
        ratio = t / bound
        ratios.append(ratio)
        if t < bound - 1e-9:
            violations.append((i, float(t), float(bound)))
    return OptimalityReport(
        sound=not violations,
        worst_ratio=max(ratios),
        best_ratio=min(ratios),
        points=len(points),
        violations=tuple(violations),
    )
