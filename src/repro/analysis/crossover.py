"""Crossover analysis: where one model/algorithm overtakes another.

The paper's comparative claims are about *regimes* — the HMM beats the
flat machines once the latency is large enough, extra threads stop
helping once ``p >= lw``, and so on.  This module finds those regime
boundaries from the closed forms, so the benchmarks can verify that the
*measured* crossovers land where the formulas put them.

All searches walk an integer parameter axis (optionally in doubling
steps), so the results are exact grid points rather than interpolated
reals — matching how the benchmarks sweep.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Sequence

from repro.analysis.terms import Params
from repro.errors import ConfigurationError

__all__ = ["crossover_point", "saturation_point", "axis_values"]


def axis_values(lo: int, hi: int, *, doubling: bool = True) -> list[int]:
    """The search grid for a parameter axis: ``lo, 2lo, ...`` up to ``hi``
    (or every integer when ``doubling=False`` and the range is small)."""
    if lo < 1 or hi < lo:
        raise ConfigurationError(f"need 1 <= lo <= hi, got [{lo}, {hi}]")
    if not doubling:
        return list(range(lo, hi + 1))
    values = []
    v = lo
    while v <= hi:
        values.append(v)
        v *= 2
    if values[-1] != hi:
        values.append(hi)
    return values


def crossover_point(
    cost_a: Callable[[Params], float],
    cost_b: Callable[[Params], float],
    base: Params,
    axis: str,
    values: Sequence[int],
) -> int | None:
    """First axis value where ``cost_a`` becomes cheaper than ``cost_b``.

    ``axis`` names a :class:`Params` field; ``values`` must be
    increasing.  Returns ``None`` when A never wins on the grid.
    Intended use: ``cost_a`` = HMM formula, ``cost_b`` = flat formula,
    axis = ``"l"`` — "from which latency on does the hierarchy pay off?"
    """
    _check_axis(base, axis, values)
    for v in values:
        point = dataclasses.replace(base, **{axis: v})
        if cost_a(point) < cost_b(point):
            return v
    return None


def saturation_point(
    cost: Callable[[Params], float],
    base: Params,
    axis: str,
    values: Sequence[int],
    *,
    gain_threshold: float = 1.10,
) -> int | None:
    """First axis value after which the next step stops paying.

    Walks increasing ``values`` and returns the first value whose
    successor improves cost by less than ``gain_threshold`` (default:
    10%).  Intended use: the occupancy sweep — where does adding threads
    stop helping? (The formulas put it at ``p ~ lw``.)  Returns ``None``
    when every step keeps paying.
    """
    _check_axis(base, axis, values)
    if len(values) < 2:
        raise ConfigurationError("need at least two axis values")
    for a, b in zip(values, values[1:]):
        cost_a = cost(dataclasses.replace(base, **{axis: a}))
        cost_b = cost(dataclasses.replace(base, **{axis: b}))
        if cost_b <= 0:
            raise ConfigurationError("cost must stay positive")
        if cost_a / cost_b < gain_threshold:
            return a
    return None


def _check_axis(base: Params, axis: str, values: Sequence[int]) -> None:
    if not hasattr(base, axis):
        raise ConfigurationError(f"Params has no axis {axis!r}")
    if not values:
        raise ConfigurationError("axis values must be non-empty")
    if list(values) != sorted(values):
        raise ConfigurationError("axis values must be increasing")
