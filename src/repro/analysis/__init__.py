"""Closed-form analysis of the memory machine models.

* :mod:`repro.analysis.terms` — composable cost terms (``n/w``,
  ``nl/p``, ``l·log n``, ...);
* :mod:`repro.analysis.costmodel` — Table I: the computing time of the
  sum and the direct convolution on every model;
* :mod:`repro.analysis.lower_bounds` — Table II: speed-up / bandwidth /
  latency / reduction limitations;
* :mod:`repro.analysis.tables` — renders both tables, symbolically and
  numerically;
* :mod:`repro.analysis.fitting` — least-squares fits of measured time
  units against the formula terms (the shape-agreement check);
* :mod:`repro.analysis.optimality` — verifies measured times sit between
  the lower bound and a constant multiple of the upper bound;
* :mod:`repro.analysis.sweeps` — parameter-sweep drivers used by the
  benchmarks and EXPERIMENTS.md;
* :mod:`repro.analysis.executor` — sharded process-pool sweep execution
  with a persistent on-disk result cache.
"""

from repro.analysis.advisor import Advice, Regime, UnitDiagnosis, diagnose
from repro.analysis.executor import (
    CacheStats,
    ResultCache,
    SweepExecutor,
    SweepProgress,
)
from repro.analysis.crossover import axis_values, crossover_point, saturation_point
from repro.analysis.costmodel import (
    CONV_FORMULAS,
    SUM_FORMULAS,
    convolution_time,
    sum_time,
)
from repro.analysis.fitting import FitResult, fit_terms
from repro.analysis.lower_bounds import (
    CONV_BOUNDS,
    SUM_BOUNDS,
    convolution_lower_bound,
    sum_lower_bound,
)
from repro.analysis.optimality import OptimalityReport, check_optimality
from repro.analysis.sweeps import SweepPoint, run_sweep
from repro.analysis.tables import render_table1, render_table2
from repro.analysis.terms import Params, Term, Formula

__all__ = [
    "Advice",
    "CacheStats",
    "CONV_BOUNDS",
    "CONV_FORMULAS",
    "FitResult",
    "Formula",
    "OptimalityReport",
    "Params",
    "ResultCache",
    "SUM_BOUNDS",
    "SUM_FORMULAS",
    "SweepExecutor",
    "SweepPoint",
    "SweepProgress",
    "Term",
    "axis_values",
    "check_optimality",
    "crossover_point",
    "saturation_point",
    "Regime",
    "UnitDiagnosis",
    "convolution_lower_bound",
    "diagnose",
    "convolution_time",
    "fit_terms",
    "render_table1",
    "render_table2",
    "run_sweep",
    "sum_lower_bound",
    "sum_time",
]
