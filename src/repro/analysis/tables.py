"""Render the paper's Table I and Table II.

Both tables render in two modes:

* **symbolic** — the O-term strings, matching the paper's presentation;
* **numeric** — every formula evaluated at a concrete parameter point,
  which is what the table-reproduction benchmarks print next to the
  measured time-unit counts.
"""

from __future__ import annotations

from repro.analysis.costmodel import CONV_FORMULAS, SUM_FORMULAS
from repro.analysis.lower_bounds import CONV_BOUNDS, SUM_BOUNDS
from repro.analysis.terms import Params

__all__ = ["render_table1", "render_table2", "format_grid"]

_MODELS_T1 = ["sequential", "pram", "dmm", "hmm"]  # dmm row covers "DMM and UMM"
_MODEL_LABELS = {
    "sequential": "Sequential",
    "pram": "PRAM",
    "dmm": "DMM and UMM",
    "umm": "DMM and UMM",
    "hmm": "HMM",
}
_LIMITATIONS = ["speed-up", "bandwidth", "latency", "reduction"]


def format_grid(headers: list[str], rows: list[list[str]]) -> str:
    """Plain-text grid with per-column alignment."""
    widths = [len(h) for h in headers]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    def fmt(cells: list[str]) -> str:
        return "  ".join(c.ljust(widths[i]) for i, c in enumerate(cells)).rstrip()
    rule = "  ".join("-" * wd for wd in widths)
    lines = [fmt(headers), rule]
    lines.extend(fmt(row) for row in rows)
    return "\n".join(lines)


def render_table1(params: Params | None = None) -> str:
    """Table I: computing time of the sum and the direct convolution.

    With ``params`` the formulas are also evaluated numerically
    (convolution columns require ``params.k >= 1``).
    """
    headers = ["Model", "Sum", "Direct convolution"]
    rows = []
    for model in _MODELS_T1:
        sum_f = SUM_FORMULAS[model]
        conv_f = CONV_FORMULAS[model]
        sum_cell = sum_f.text()
        conv_cell = conv_f.text()
        if params is not None:
            sum_cell += f" = {sum_f(params):.0f}"
            if params.k >= 1:
                conv_cell += f" = {conv_f(params):.0f}"
        rows.append([_MODEL_LABELS[model], sum_cell, conv_cell])
    title = "Table I: computing time of the sum and the direct convolution"
    if params is not None:
        title += (
            f"  [n={params.n}, k={params.k}, p={params.p}, w={params.w}, "
            f"l={params.l}, d={params.d}]"
        )
    return title + "\n" + format_grid(headers, rows)


def render_table2(params: Params | None = None) -> str:
    """Table II: the four limitations per model and problem."""
    headers = ["Problem", "Limitation", "PRAM", "DMM and UMM", "HMM"]
    rows = []
    for problem, table in (("Sum", SUM_BOUNDS), ("Direct convolution", CONV_BOUNDS)):
        for limitation in _LIMITATIONS:
            row = [problem, limitation]
            for model in ("pram", "dmm", "hmm"):
                formula = table[model].get(limitation)
                if formula is None:
                    row.append("-")
                    continue
                cell = "Ω(" + " + ".join(t.text for t in formula.terms) + ")"
                if params is not None and (problem == "Sum" or params.k >= 1):
                    cell += f" = {formula(params):.0f}"
                row.append(cell)
            rows.append(row)
            problem = ""  # only print the problem label once per block
    title = "Table II: lower bounds of the computing time"
    if params is not None:
        title += (
            f"  [n={params.n}, k={params.k}, p={params.p}, w={params.w}, "
            f"l={params.l}, d={params.d}]"
        )
    return title + "\n" + format_grid(headers, rows)
