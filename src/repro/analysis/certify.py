"""Machine-checked obliviousness / conflict-freedom certificates.

The tuner's ``certificate: "conflict-free"`` early exit and the replay
engine's eligibility registry both rest on two claims about a kernel:

1. **Obliviousness** — its access stream (the sequence of transactions,
   their addresses, lane masks and barriers) does not depend on the
   values stored in memory; and
2. **Conflict-freedom** — no unit ever issued an *avoidable* conflicted
   transaction: every transaction of ``m`` distinct addresses costs the
   floor ``ceil(m / w)`` pipeline slots (``w`` distinct banks per slot
   on the DMM, one address group per slot on the UMM).

This module turns both claims into a trace-level *proof obligation* the
machine checks, instead of a property the kernel author asserts:
:func:`certify_launch` runs the kernel on the event engine under a
:class:`~repro.machine.trace.TraceRecorder` for several distinct random
inputs, digests each run's access stream with :func:`trace_signature`,
and audits every recorded transaction against the slot floor with
:func:`conflict_violations`.  A :class:`CertificateReport` is
``certified`` only when all signatures are byte-identical *and* the
avoidable excess is zero.

The checker is deliberately independent of the replay registry — it
re-derives both properties from the recorded transactions, so it also
guards the registry itself (see ``tests/machine/test_replay_registry``).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.errors import ConfigurationError
from repro.machine.trace import TraceRecorder

__all__ = [
    "CertificateReport",
    "ConflictViolation",
    "certify_launch",
    "conflict_violations",
    "trace_signature",
]

#: Seed namespace for the certificate input draws (the paper's date).
_SEED = 20130520


@dataclass(frozen=True)
class ConflictViolation:
    """One transaction that cost more slots than its address floor."""

    unit: str
    index: int
    kind: str
    slots: int
    min_slots: int
    num_addresses: int

    @property
    def excess(self) -> int:
        return self.slots - self.min_slots

    def describe(self) -> str:
        return (
            f"{self.unit} transaction #{self.index} ({self.kind}): "
            f"{self.num_addresses} addresses cost {self.slots} slots "
            f"(floor {self.min_slots}, avoidable excess {self.excess})"
        )


@dataclass(frozen=True)
class CertificateReport:
    """The checker's verdict over ``runs`` distinct random inputs."""

    #: Access streams byte-identical across every input.
    oblivious: bool
    #: Zero avoidable conflicted transactions in every run.
    conflict_free: bool
    runs: int
    transactions: int
    avoidable_excess_slots: int
    #: One structural digest per run (all equal iff ``oblivious``).
    signatures: tuple[str, ...]
    violations: tuple[ConflictViolation, ...]

    @property
    def certified(self) -> bool:
        """Both proof obligations discharged."""
        return self.oblivious and self.conflict_free

    def describe(self) -> str:
        lines = [
            f"certificate over {self.runs} random inputs, "
            f"{self.transactions} transactions/run:",
            f"  oblivious:     {'yes' if self.oblivious else 'NO'}"
            f" ({len(set(self.signatures))} distinct access streams)",
            f"  conflict-free: {'yes' if self.conflict_free else 'NO'}"
            f" (avoidable excess {self.avoidable_excess_slots} slots)",
        ]
        for v in self.violations[:8]:
            lines.append(f"    {v.describe()}")
        if len(self.violations) > 8:
            lines.append(f"    ... {len(self.violations) - 8} more")
        lines.append(
            f"  verdict: {'CERTIFIED' if self.certified else 'REFUSED'}")
        return "\n".join(lines)


def trace_signature(trace: TraceRecorder) -> str:
    """Structural digest of a recorded access stream.

    Covers, per transaction: the issuing warp, its DMM, the unit,
    read/write kind, request count and the exact (distinct, sorted)
    addresses — plus every barrier event's scope and DMM.  Transactions
    are digested grouped by warp in program order, *not* in global
    dispatch order: the cross-warp interleaving is a scheduling
    artifact that shifts with the latency, while each warp's own stream
    is what the kernel determines.  Timing and slot counts are likewise
    excluded — they are derived from the addresses by the policy.  A
    signature over the causes rather than the costs is what makes
    "identical streams" mean identical re-pricing under any latency or
    policy.
    """
    per_warp: dict[int, hashlib._Hash] = {}
    for rec in trace.records:
        h = per_warp.get(rec.warp_id)
        if h is None:
            h = per_warp[rec.warp_id] = hashlib.sha256()
        h.update(
            f"T:{rec.dmm_id}:{rec.unit}:{rec.kind.value}:"
            f"{rec.num_requests}:".encode()
        )
        h.update(np.ascontiguousarray(rec.addresses,
                                      dtype=np.int64).tobytes())
        h.update(b";")
    top = hashlib.sha256()
    for warp_id in sorted(per_warp):
        top.update(f"W:{warp_id}:".encode())
        top.update(per_warp[warp_id].digest())
    for scope, dmm_id, _time in trace.barrier_events:
        top.update(f"B:{scope.value}:{dmm_id};".encode())
    return top.hexdigest()


def conflict_violations(
    trace: TraceRecorder, width: int,
) -> tuple[int, list[ConflictViolation]]:
    """Audit every transaction against the ``ceil(m/w)`` slot floor.

    Returns ``(total avoidable excess, violations)``.  A transaction of
    ``m`` distinct addresses can always be laid out to cost
    ``ceil(m/w)`` slots (``w`` distinct banks, or one group, per slot);
    anything above that is an avoidable conflict.
    """
    if width < 1:
        raise ConfigurationError(f"width must be >= 1, got {width}")
    excess = 0
    out: list[ConflictViolation] = []
    for idx, rec in enumerate(trace.records):
        m = int(rec.addresses.size)
        floor = -(-m // width) if m else 0
        if rec.slots > floor:
            excess += rec.slots - floor
            out.append(ConflictViolation(
                unit=rec.unit, index=idx, kind=rec.kind.value,
                slots=int(rec.slots), min_slots=floor, num_addresses=m,
            ))
    return excess, out


def certify_launch(
    run: Callable[[np.random.Generator, TraceRecorder], object],
    *,
    width: int,
    runs: int = 3,
    seed: int = _SEED,
    max_transactions: int | None = 1 << 20,
) -> CertificateReport:
    """Certify one launch: identical access streams, zero avoidable
    conflicts.

    ``run(rng, trace)`` must build a **fresh** event-mode engine, draw
    all input data from ``rng``, and execute the launch with ``trace``
    attached.  The checker calls it ``runs`` times with independently
    seeded generators; the launch shape must stay fixed while the data
    varies — that is exactly the obliviousness contract replay relies
    on.

    ``width`` is the machine width the slot floor is computed against
    (for the HMM, shared and global units share one ``w``).
    """
    if runs < 2:
        raise ConfigurationError(
            f"obliviousness needs >= 2 distinct inputs, got runs={runs}")
    signatures: list[str] = []
    transactions = 0
    total_excess = 0
    violations: list[ConflictViolation] = []
    for r in range(runs):
        rng = np.random.default_rng([seed, r])
        trace = TraceRecorder(max_transactions=max_transactions)
        run(rng, trace)
        signatures.append(trace_signature(trace))
        if r == 0:
            transactions = len(trace.records)
        excess, viol = conflict_violations(trace, width)
        total_excess += excess
        if r == 0:
            violations = viol
    return CertificateReport(
        oblivious=len(set(signatures)) == 1,
        conflict_free=total_excess == 0,
        runs=runs,
        transactions=transactions,
        avoidable_excess_slots=total_excess,
        signatures=tuple(signatures),
        violations=tuple(violations),
    )
