"""Sharded, cached, resumable parameter-sweep execution.

The reproduction's wall-clock cost lives in its sweeps: hundreds of
independent, deterministic simulator launches per table or figure.
:class:`SweepExecutor` turns one of those sweeps into parallel, cached
work:

* **Sharding** — the point grid is chunked across a
  ``concurrent.futures.ProcessPoolExecutor`` (workers =
  ``min(points, cpu_count)`` under ``jobs="auto"``).  ``jobs=1``
  degrades to the plain in-process loop, so exceptions and determinism
  stay byte-identical with the historical serial path.
* **Memoization** — results persist in the ``sweep`` namespace of the
  unified artifact store (:mod:`repro.store`;
  ``benchmarks/.store/sweep/`` by default), keyed by a content hash of
  *(measure-fn qualified name + bound scalars, the parameter point, the
  engine mode, the repro version fingerprint)*.  A new package version
  changes the fingerprint and silently invalidates old entries;
  ``REPRO_STORE_SWEEP=off`` (or the deprecated ``REPRO_SWEEP_CACHE=off``)
  is the escape hatch.  Pre-unification ``benchmarks/.sweep_cache/``
  JSON-lines shards are imported automatically on first use (see
  docs/STORAGE.md).
* **Progress** — a pluggable callback receives
  :class:`SweepProgress` snapshots (points done/total, cache hits, ETA,
  per-shard timings) so CLIs can print live status.

Results come back as :class:`SweepPoint` rows in grid order regardless
of ``jobs``; a sweep is *resumable* because any prefix of points already
in the cache is skipped on the next run.

Measure callables used with ``jobs > 1`` must be picklable: a
module-level function, or ``functools.partial`` of one binding scalar
keyword arguments.  Anything non-scalar bound into the callable is
hashed by type/shape only — give such sweeps distinct functions.
"""

from __future__ import annotations

import dataclasses
import functools
import hashlib
import json
import os
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable, Iterable, Mapping

from repro.store import ArtifactStore
from repro.store import config as _store_config
from repro.store.migrate import auto_migrate as _auto_migrate

__all__ = [
    "SweepPoint",
    "SweepProgress",
    "CacheStats",
    "ResultCache",
    "SweepExecutor",
    "default_cache_dir",
    "repro_fingerprint",
    "resolve_jobs",
]

#: Set to ``off``/``0``/``no`` to disable the persistent cache entirely.
#: Deprecated alias of ``REPRO_STORE_SWEEP`` (see :mod:`repro.store.config`).
CACHE_ENV = "REPRO_SWEEP_CACHE"
#: Overrides the default cache directory.  Deprecated alias of
#: ``REPRO_STORE_SWEEP_DIR``.
CACHE_DIR_ENV = "REPRO_SWEEP_CACHE_DIR"
#: Overrides the version fingerprint (useful for tests).  Not
#: deprecated: it governs cache invalidation for every store namespace.
FINGERPRINT_ENV = "REPRO_SWEEP_FINGERPRINT"

_SCALARS = (bool, int, float, str, type(None))


@dataclass(frozen=True)
class SweepPoint:
    """One sweep measurement."""

    #: The parameter point, as given to the sweep (a
    #: :class:`repro.analysis.terms.Params` or a plain mapping).
    params: Any
    #: Measured simulator time units.
    cycles: int
    #: Optional extra metrics (transactions, slots, engine tag, ...).
    extra: dict


@dataclass(frozen=True)
class SweepProgress:
    """Snapshot handed to the progress callback after every shard."""

    #: Display label of the sweep ("" when none was given).
    label: str
    #: Total points in the grid.
    total: int
    #: Points resolved so far (cache hits + live measurements).
    done: int
    #: Points answered from the persistent cache.
    cache_hits: int
    #: Seconds since the sweep started.
    elapsed_s: float
    #: Estimated seconds until the remaining live points finish.
    eta_s: float
    #: ``(points, seconds)`` of each completed shard of live work.
    shard_timings: tuple[tuple[int, float], ...] = ()

    def describe(self) -> str:
        return (
            f"{self.label or 'sweep'}: {self.done}/{self.total} points "
            f"({self.cache_hits} cached) in {self.elapsed_s:.2f}s"
            + (f", eta {self.eta_s:.1f}s" if self.done < self.total else "")
        )


@dataclass(frozen=True)
class CacheStats:
    """On-disk contents plus this session's hit/miss counters."""

    #: Entries on disk usable under the current fingerprint.
    entries: int
    #: Entries on disk written under an older fingerprint (dead weight
    #: until ``clear()``).
    stale_entries: int
    #: Number of on-disk entry files (historically: shard files).
    shards: int
    #: Total bytes of the entry files.
    size_bytes: int
    #: Lookups answered from the cache this session.
    hits: int
    #: Lookups that fell through to a live measurement this session.
    misses: int

    def describe(self) -> str:
        return (
            f"sweep cache: {self.entries} entries ({self.stale_entries} stale) "
            f"in {self.shards} files, {self.size_bytes} bytes; "
            f"session: {self.hits} hits / {self.misses} misses"
        )


def repro_fingerprint() -> str:
    """The cache-invalidation fingerprint: the repro version (or the
    ``REPRO_SWEEP_FINGERPRINT`` override)."""
    env = os.environ.get(FINGERPRINT_ENV)
    if env:
        return env
    from repro import __version__  # deferred: repro imports this module

    return f"repro-{__version__}"


def default_cache_dir(namespace: str = "sweep") -> Path:
    """Where a sweep namespace's entries live: the per-namespace env
    override (``REPRO_STORE_SWEEP_DIR``, or the deprecated
    ``REPRO_SWEEP_CACHE_DIR``), else ``<store root>/<namespace>`` —
    ``benchmarks/.store/sweep`` under the working directory by default."""
    return _store_config.namespace_dir(namespace)


def cache_allowed(namespace: str = "sweep") -> bool:
    """False when ``REPRO_STORE``/``REPRO_STORE_SWEEP`` (or the
    deprecated ``REPRO_SWEEP_CACHE``) disables caching."""
    return _store_config.namespace_allowed(namespace)


def resolve_jobs(jobs: int | str, num_points: int) -> int:
    """Worker-process count for a sweep of ``num_points`` live points.

    ``"auto"`` (or 0) means every usable CPU; the result is always
    clamped to ``min(points, cpus)`` and at least 1.
    """
    if jobs in ("auto", 0, None):
        try:
            jobs = len(os.sched_getaffinity(0))
        except AttributeError:  # pragma: no cover - non-Linux
            jobs = os.cpu_count() or 1
    jobs = int(jobs)
    if jobs < 1:
        raise ValueError(f"jobs must be >= 1 or 'auto', got {jobs}")
    return max(1, min(jobs, num_points)) if num_points else 1


# ---------------------------------------------------------------------------
# Cache keys.
# ---------------------------------------------------------------------------

def _bound_value(value: Any) -> Any:
    """Stable, JSON-able stand-in for a value bound into a partial."""
    if isinstance(value, _SCALARS):
        return value
    tobytes = getattr(value, "tobytes", None)
    if callable(tobytes):  # numpy arrays and friends
        digest = hashlib.sha256(tobytes()).hexdigest()[:16]
        return f"{type(value).__name__}:{getattr(value, 'shape', '')}:{digest}"
    return f"{type(value).__module__}.{type(value).__qualname__}"


def describe_measure(measure: Callable) -> dict:
    """Identity of a measure callable for cache keying: the underlying
    function's qualified name plus any arguments bound via partial."""
    bound: dict[str, Any] = {}
    func = measure
    while isinstance(func, functools.partial):
        for k, v in (func.keywords or {}).items():
            bound.setdefault(k, _bound_value(v))
        if func.args:
            bound.setdefault("*args", [_bound_value(v) for v in func.args])
        func = func.func
    name = (
        getattr(func, "__module__", "?") + ":"
        + getattr(func, "__qualname__", repr(func))
    )
    return {"fn": name, "bound": bound}


def _point_material(point: Any) -> Any:
    if dataclasses.is_dataclass(point) and not isinstance(point, type):
        return dict(sorted(dataclasses.asdict(point).items()))
    if isinstance(point, Mapping):
        return {str(k): point[k] for k in sorted(point, key=str)}
    return point


def point_key(
    measure_desc: dict, point: Any, *, mode: str | None, fingerprint: str
) -> str:
    """Content hash identifying one measurement."""
    material = {
        "measure": measure_desc,
        "point": _point_material(point),
        "mode": mode,
        "fingerprint": fingerprint,
    }
    blob = json.dumps(material, sort_keys=True, default=str)
    return hashlib.sha256(blob.encode()).hexdigest()


# ---------------------------------------------------------------------------
# The persistent cache.
# ---------------------------------------------------------------------------

class ResultCache:
    """Persistent measurement cache: one store namespace of canonical
    JSON entries (:mod:`repro.store`), one entry file per key.

    Each entry is the same ``{"key", "fingerprint", "cycles", "extra"}``
    record the pre-unification JSON-lines shards carried; legacy
    ``shard_*.jsonl`` files found in (or at the historical default
    location of) the cache directory are imported once on first open.
    A corrupt or truncated entry is quarantined by the store and simply
    recomputed.  Only the parent process writes — workers just return
    values.
    """

    def __init__(
        self,
        directory: Path,
        fingerprint: str,
        *,
        namespace: str = "sweep",
        migrate_from: "Path | None" = None,
    ) -> None:
        self.directory = Path(directory)
        self.fingerprint = fingerprint
        self.namespace = namespace
        self._ns = ArtifactStore().namespace(
            namespace, "json", directory=self.directory
        )
        _auto_migrate(self._ns, migrate_from)
        self.hits = 0
        self.misses = 0

    @property
    def store_namespace(self):
        """The underlying :class:`repro.store.Namespace` (counters,
        pinning, quarantine live there)."""
        return self._ns

    def get(self, key: str) -> tuple[int, dict] | None:
        payload = self._ns.get(key)
        found: tuple[int, dict] | None = None
        if isinstance(payload, dict):
            try:
                found = (int(payload["cycles"]),
                         dict(payload.get("extra", {})))
            except (ValueError, KeyError, TypeError):
                found = None  # malformed record: recompute instead
        if found is None:
            self.misses += 1
            return None
        self.hits += 1
        return found

    def put(self, key: str, cycles: int, extra: dict) -> None:
        entry = {
            "key": key,
            "fingerprint": self.fingerprint,
            "cycles": int(cycles),
            "extra": _jsonable_extra(extra),
        }
        self._ns.put(key, entry, skip_existing=True)

    def clear(self) -> int:
        """Delete every entry file; returns how many were removed."""
        return self._ns.clear()

    def stats(self) -> CacheStats:
        disk = self._ns.stats()
        entries = stale = 0
        for _key, payload in self._ns.scan():
            fp = payload.get("fingerprint", "") \
                if isinstance(payload, dict) else ""
            if fp == self.fingerprint:
                entries += 1
            else:
                stale += 1
        return CacheStats(
            entries=entries,
            stale_entries=stale,
            shards=disk.entries_disk,
            size_bytes=disk.disk_bytes,
            hits=self.hits,
            misses=self.misses,
        )


def _jsonable_extra(extra: dict) -> dict:
    out: dict[str, Any] = {}
    for k, v in extra.items():
        if isinstance(v, _SCALARS):
            out[str(k)] = v
        else:
            try:
                out[str(k)] = float(v)
            except (TypeError, ValueError):
                out[str(k)] = str(v)
    return out


# ---------------------------------------------------------------------------
# Execution.
# ---------------------------------------------------------------------------

def _normalize(out: Any) -> tuple[int, dict]:
    if isinstance(out, tuple):
        cycles, extra = out
        return int(cycles), dict(extra)
    return int(out), {}


def _measure_chunk(measure: Callable, chunk: list) -> tuple[float, list]:
    """Worker body: measure one shard of points, timing the whole shard."""
    start = time.perf_counter()
    results = [_normalize(measure(q)) for q in chunk]
    return time.perf_counter() - start, results


def _chunked(indices: list[int], jobs: int) -> list[list[int]]:
    """Split live work into ~4 shards per worker (amortizes pickling
    while keeping the pool balanced); at least one point per shard."""
    target = max(1, -(-len(indices) // (jobs * 4)))
    return [indices[i:i + target] for i in range(0, len(indices), target)]


class SweepExecutor:
    """Runs parameter sweeps sharded over processes with a persistent
    result cache.  See the module docstring for the full contract.

    Parameters
    ----------
    jobs:
        Worker processes: an int, or ``"auto"`` for
        ``min(points, cpu_count)``.  ``1`` (default) keeps the
        historical in-process loop.
    cache:
        Enable the persistent result cache.  Overridden globally by
        ``REPRO_STORE=off`` / ``REPRO_STORE_SWEEP=off`` (or the
        deprecated ``REPRO_SWEEP_CACHE=off``).
    cache_dir:
        Cache directory (default: :func:`default_cache_dir`, i.e. the
        namespace's directory under the unified store root).
    namespace:
        Store namespace the cache lives in (default ``"sweep"``; the
        tuner passes ``"tune"``).
    fingerprint:
        Cache-invalidation token (default: :func:`repro_fingerprint`).
    progress:
        Optional callback receiving :class:`SweepProgress` snapshots.
    keep_pool:
        Retain the worker-process pool between :meth:`run` calls instead
        of forking a fresh one per sweep.  Long-lived callers (the
        serving layer, repeated driver runs) pay pool startup once;
        release it with :meth:`close` (or use the executor as a context
        manager).  Default off: one-shot sweeps keep the historical
        spawn-per-run behavior.
    """

    def __init__(
        self,
        jobs: int | str = 1,
        cache: bool = True,
        cache_dir: str | Path | None = None,
        fingerprint: str | None = None,
        progress: Callable[[SweepProgress], None] | None = None,
        keep_pool: bool = False,
        namespace: str = "sweep",
    ) -> None:
        self.jobs = jobs
        self.fingerprint = fingerprint or repro_fingerprint()
        self.progress = progress
        self.keep_pool = keep_pool
        self._pool: ProcessPoolExecutor | None = None
        self._pool_workers = 0
        self.cache: ResultCache | None = None
        if cache and cache_allowed(namespace):
            if cache_dir is not None:
                directory = Path(cache_dir)
                migrate_from = None
            else:
                directory = default_cache_dir(namespace)
                # Only pull in the historical default cache dir when the
                # namespace itself sits at its default location — a dir
                # override means the caller already chose where entries
                # live, and auto-importing elsewhere would surprise.
                migrate_from = (
                    None
                    if _store_config.namespace_dir_overridden(namespace)
                    else _store_config.legacy_default_dir(namespace)
                )
            self.cache = ResultCache(
                directory, self.fingerprint,
                namespace=namespace, migrate_from=migrate_from,
            )

    # -- pool reuse ---------------------------------------------------------
    def _acquire_pool(self, jobs: int) -> tuple[ProcessPoolExecutor, int, bool]:
        """``(pool, workers, transient)`` for a parallel run.

        Under ``keep_pool`` the retained pool is reused (growing it if a
        later sweep needs more workers); otherwise a transient pool is
        returned and the caller shuts it down.
        """
        if not self.keep_pool:
            return ProcessPoolExecutor(max_workers=jobs), jobs, True
        if self._pool is None or self._pool_workers < jobs:
            if self._pool is not None:
                self._pool.shutdown()
            self._pool = ProcessPoolExecutor(max_workers=jobs)
            self._pool_workers = jobs
        return self._pool, self._pool_workers, False

    def close(self) -> None:
        """Shut down the retained worker pool (no-op without one)."""
        if self._pool is not None:
            self._pool.shutdown()
            self._pool = None
            self._pool_workers = 0

    def __enter__(self) -> "SweepExecutor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- cache management ---------------------------------------------------
    def clear(self) -> int:
        """Drop every cached result; returns removed entry-file count."""
        return self.cache.clear() if self.cache else 0

    def stats(self) -> CacheStats:
        """Cache contents and this session's hit/miss counters."""
        if self.cache:
            return self.cache.stats()
        return CacheStats(0, 0, 0, 0, 0, 0)

    # -- the sweep ----------------------------------------------------------
    def run(
        self,
        measure: Callable[[Any], "int | tuple[int, dict]"],
        points: Iterable[Any],
        *,
        mode: str | None = None,
        label: str | None = None,
    ) -> list[SweepPoint]:
        """Measure every point, returning rows in grid order.

        ``measure`` returns the cycle count, optionally paired with an
        extra-metrics dict.  Exceptions propagate — a failing point is a
        bug, not data.  ``mode`` names the engine mode baked into
        ``measure`` and participates in the cache key; ``label`` is
        display-only (progress reporting).
        """
        pts = list(points)
        total = len(pts)
        start = time.perf_counter()
        results: list[SweepPoint | None] = [None] * total
        keys: list[str | None] = [None] * total
        missing: list[int] = []
        cache_hits = 0

        if self.cache is not None:
            desc = describe_measure(measure)
            for i, q in enumerate(pts):
                key = point_key(
                    desc, q, mode=mode, fingerprint=self.fingerprint
                )
                keys[i] = key
                found = self.cache.get(key)
                if found is None:
                    missing.append(i)
                else:
                    cycles, extra = found
                    results[i] = SweepPoint(params=q, cycles=cycles,
                                            extra=dict(extra))
                    cache_hits += 1
        else:
            missing = list(range(total))

        timings: list[tuple[int, float]] = []
        done = cache_hits
        self._emit(label, total, done, cache_hits, start, timings)

        jobs = resolve_jobs(self.jobs, len(missing))
        if missing and jobs <= 1:
            for i in missing:
                t0 = time.perf_counter()
                cycles, extra = _normalize(measure(pts[i]))
                timings.append((1, time.perf_counter() - t0))
                results[i] = SweepPoint(params=pts[i], cycles=cycles,
                                        extra=extra)
                self._store(keys[i], cycles, extra)
                done += 1
                self._emit(label, total, done, cache_hits, start, timings)
        elif missing:
            pool, workers, transient = self._acquire_pool(jobs)
            shards = _chunked(missing, workers)
            try:
                futures = {
                    pool.submit(_measure_chunk, measure,
                                [pts[i] for i in shard]): shard
                    for shard in shards
                }
                pending = set(futures)
                while pending:
                    finished, pending = wait(
                        pending, return_when=FIRST_COMPLETED
                    )
                    for fut in finished:
                        shard = futures[fut]
                        seconds, measured = fut.result()  # reraises
                        timings.append((len(shard), seconds))
                        for i, (cycles, extra) in zip(shard, measured):
                            results[i] = SweepPoint(params=pts[i],
                                                    cycles=cycles,
                                                    extra=extra)
                            self._store(keys[i], cycles, extra)
                        done += len(shard)
                        self._emit(label, total, done, cache_hits, start,
                                   timings)
            finally:
                if transient:
                    pool.shutdown()
        return results  # type: ignore[return-value]  # all slots filled

    # -- internals ----------------------------------------------------------
    def _store(self, key: str | None, cycles: int, extra: dict) -> None:
        if self.cache is not None and key is not None:
            self.cache.put(key, cycles, extra)

    def _emit(
        self,
        label: str | None,
        total: int,
        done: int,
        cache_hits: int,
        start: float,
        timings: list[tuple[int, float]],
    ) -> None:
        if self.progress is None:
            return
        elapsed = time.perf_counter() - start
        live_done = done - cache_hits
        live_total = total - cache_hits
        eta = (
            elapsed / live_done * (live_total - live_done)
            if live_done else 0.0
        )
        self.progress(SweepProgress(
            label=label or "",
            total=total,
            done=done,
            cache_hits=cache_hits,
            elapsed_s=elapsed,
            eta_s=eta,
            shard_timings=tuple(timings),
        ))
