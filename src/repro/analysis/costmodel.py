"""Table I — the computing time of the sum and the direct convolution.

Closed-form upper bounds (big-O, coefficient 1 per term) for every model
the paper compares:

===============  =============================  ==========================================
model            sum                            direct convolution
===============  =============================  ==========================================
Sequential       ``O(n)``                       ``O(nk)``
PRAM             ``O(n/p + log n)``             ``O(nk/p + log k)``
DMM and UMM      ``O(n/w + nl/p + l·log n)``    ``O(nk/w + nkl/p + l·log k)``
HMM              ``O(n/w + nl/p + l + log n)``  ``O(n/w + nk/dw + nl/p + l + log k)``
===============  =============================  ==========================================

(The HMM convolution row is Corollary 10's form, valid for ``k >= lw/d``;
``hmm_general`` below is the unconditional Theorem 9 form
``O((n+dk)/w + nk/dw + (n+dk)l/p + l + log k)``.)

These formulas are *predictions with unit coefficients*: the benchmarks
fit measured time units against the terms and check that the fitted
coefficients are O(1) and stable across the sweep — that is what
"reproducing Table I" means for a theory paper.
"""

from __future__ import annotations

from repro.analysis.terms import (
    Formula,
    Params,
    T_DK_W,
    T_DKL_P,
    T_L,
    T_LOG_K,
    T_LOG_N,
    T_L_LOG_K,
    T_L_LOG_N,
    T_N,
    T_NK,
    T_NK_DW,
    T_NK_P,
    T_NK_W,
    T_NKL_P,
    T_NL_P,
    T_N_P,
    T_N_W,
)
from repro.errors import ConfigurationError

__all__ = ["SUM_FORMULAS", "CONV_FORMULAS", "sum_time", "convolution_time"]


#: Table I, row "Sum".  Keys are model names.
SUM_FORMULAS: dict[str, Formula] = {
    "sequential": Formula("sequential", (T_N,)),
    "pram": Formula("pram", (T_N_P, T_LOG_N)),
    "dmm": Formula("dmm", (T_N_W, T_NL_P, T_L_LOG_N)),
    "umm": Formula("umm", (T_N_W, T_NL_P, T_L_LOG_N)),
    "hmm": Formula("hmm", (T_N_W, T_NL_P, T_L, T_LOG_N)),
}

#: Table I, row "Direct convolution".
CONV_FORMULAS: dict[str, Formula] = {
    "sequential": Formula("sequential", (T_NK,)),
    "pram": Formula("pram", (T_NK_P, T_LOG_K)),
    "dmm": Formula("dmm", (T_NK_W, T_NKL_P, T_L_LOG_K)),
    "umm": Formula("umm", (T_NK_W, T_NKL_P, T_L_LOG_K)),
    # Corollary 10 (k >= lw/d regime):
    "hmm": Formula("hmm", (T_N_W, T_NK_DW, T_NL_P, T_L, T_LOG_K)),
    # Theorem 9, unconditional:
    "hmm_general": Formula(
        "hmm_general", (T_N_W, T_DK_W, T_NK_DW, T_NL_P, T_DKL_P, T_L, T_LOG_K)
    ),
}


def _lookup(table: dict[str, Formula], model: str) -> Formula:
    try:
        return table[model.lower()]
    except KeyError:
        raise ConfigurationError(
            f"unknown model {model!r}; choose from {sorted(table)}"
        ) from None


def sum_time(model: str, params: Params) -> float:
    """Table I prediction for the sum on ``model`` at ``params``."""
    return _lookup(SUM_FORMULAS, model)(params)


def convolution_time(model: str, params: Params) -> float:
    """Table I prediction for the direct convolution on ``model``."""
    if params.k < 1:
        raise ConfigurationError("convolution_time requires params.k >= 1")
    return _lookup(CONV_FORMULAS, model)(params)
