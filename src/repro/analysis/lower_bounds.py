"""Table II — lower bounds on the computing time.

The paper decomposes every lower bound into four *limitations*; the
bound is their sum (equivalently, up to a factor of the number of terms,
their maximum):

* **speed-up** — total operations divided by operations per time unit
  (``p`` for the PRAM; ``w`` per machine for the memory machines, since
  one warp of ``w`` threads is active per time unit; ``dw`` for the HMM);
* **bandwidth** — cells that must cross a ``w``-wide memory per time
  unit;
* **latency** — each thread completes at most one access per ``l`` time
  units, so ``p`` threads read at most ``pT/l`` cells in ``T`` time,
  plus a flat ``l`` for the first access;
* **reduction** — the critical path of the summation tree: ``log``
  levels, each costing ``l`` when the operands must round-trip the
  latency-``l`` memory (DMM/UMM) and 1 when they can live in a latency-1
  shared memory (HMM).

===============  ====================================  ============================================
model            sum                                   direct convolution
===============  ====================================  ============================================
PRAM             ``Ω(n/p) + Ω(log n)``                 ``Ω(nk/p) + Ω(log k)``
DMM and UMM      ``Ω(n/p + n/w + nl/p + l·log n)``     ``Ω(nk/w + n/w + nkl/p + l + l·log k)``
HMM              ``Ω(n/p + n/w + nl/p + l + log n)``   ``Ω(nk/dw + n/w + nl/p + l + log k)``
===============  ====================================  ============================================

A measured run *respects* the bound when its time-unit count is at least
the maximum limitation; an algorithm is *optimal* when measured time is
within a constant factor of the bound across the sweep —
:mod:`repro.analysis.optimality` checks both.
"""

from __future__ import annotations

from repro.analysis.terms import (
    Formula,
    Params,
    T_L,
    T_LOG_K,
    T_LOG_N,
    T_L_LOG_K,
    T_L_LOG_N,
    T_NK_DW,
    T_NK_P,
    T_NK_W,
    T_NKL_P,
    T_NL_P,
    T_N_P,
    T_N_W,
)
from repro.errors import ConfigurationError

__all__ = [
    "SUM_BOUNDS",
    "CONV_BOUNDS",
    "sum_lower_bound",
    "convolution_lower_bound",
]

#: Table II, "Sum" block: the four limitations per model (absent
#: limitations are simply missing from the tuple).
SUM_BOUNDS: dict[str, dict[str, Formula]] = {
    "pram": {
        "speed-up": Formula("speed-up", (T_N_P,)),
        "reduction": Formula("reduction", (T_LOG_N,)),
    },
    "dmm": {
        "speed-up": Formula("speed-up", (T_N_P,)),
        "bandwidth": Formula("bandwidth", (T_N_W,)),
        "latency": Formula("latency", (T_NL_P, T_L)),
        "reduction": Formula("reduction", (T_L_LOG_N,)),
    },
    "hmm": {
        "speed-up": Formula("speed-up", (T_N_P,)),
        "bandwidth": Formula("bandwidth", (T_N_W,)),
        "latency": Formula("latency", (T_NL_P, T_L)),
        "reduction": Formula("reduction", (T_LOG_N,)),
    },
}
SUM_BOUNDS["umm"] = SUM_BOUNDS["dmm"]

#: Table II, "Direct convolution" block.
CONV_BOUNDS: dict[str, dict[str, Formula]] = {
    "pram": {
        "speed-up": Formula("speed-up", (T_NK_P,)),
        "reduction": Formula("reduction", (T_LOG_K,)),
    },
    "dmm": {
        "speed-up": Formula("speed-up", (T_NK_W,)),
        "bandwidth": Formula("bandwidth", (T_N_W,)),
        "latency": Formula("latency", (T_NKL_P, T_L)),
        "reduction": Formula("reduction", (T_L_LOG_K,)),
    },
    "hmm": {
        "speed-up": Formula("speed-up", (T_NK_DW,)),
        "bandwidth": Formula("bandwidth", (T_N_W,)),
        "latency": Formula("latency", (T_NL_P, T_L)),
        "reduction": Formula("reduction", (T_LOG_K,)),
    },
}
CONV_BOUNDS["umm"] = CONV_BOUNDS["dmm"]


def _bound(table: dict[str, dict[str, Formula]], model: str, params: Params,
           *, combine: str) -> float:
    try:
        limitations = table[model.lower()]
    except KeyError:
        raise ConfigurationError(
            f"unknown model {model!r}; choose from {sorted(table)}"
        ) from None
    values = [f(params) for f in limitations.values()]
    if combine == "max":
        return max(values)
    if combine == "sum":
        return sum(values)
    raise ConfigurationError(f"combine must be 'max' or 'sum', got {combine!r}")


def sum_lower_bound(model: str, params: Params, *, combine: str = "max") -> float:
    """Table II lower bound for the sum.

    ``combine='max'`` gives the defensible bound (every limitation is
    individually necessary); ``'sum'`` gives the paper's additive
    presentation (valid up to the number of terms).
    """
    return _bound(SUM_BOUNDS, model, params, combine=combine)


def convolution_lower_bound(
    model: str, params: Params, *, combine: str = "max"
) -> float:
    """Table II lower bound for the direct convolution."""
    if params.k < 1:
        raise ConfigurationError("convolution_lower_bound requires params.k >= 1")
    return _bound(CONV_BOUNDS, model, params, combine=combine)
