"""Parameter-sweep driver.

The table- and figure-reproduction benchmarks all share one shape: run an
operation over a grid of ``(n, k, p, w, l, d)`` points, record measured
time units next to the Table I prediction and Table II bound, then fit
and check.  :func:`run_sweep` factors that loop; a
:class:`SweepPoint` is one row of the resulting data.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, Sequence

from repro.analysis.terms import Params

__all__ = ["SweepPoint", "run_sweep", "grid"]


@dataclass(frozen=True)
class SweepPoint:
    """One sweep measurement."""

    params: Params
    #: Measured simulator time units.
    cycles: int
    #: Optional extra metrics (transactions, slots, ...).
    extra: dict[str, float]


def grid(**axes: Sequence) -> list[dict]:
    """Cartesian product of named axes, as a list of keyword dicts.

    >>> grid(n=[4, 8], l=[1, 2])
    [{'n': 4, 'l': 1}, {'n': 4, 'l': 2}, {'n': 8, 'l': 1}, {'n': 8, 'l': 2}]
    """
    points: list[dict] = [{}]
    for name, values in axes.items():
        points = [{**pt, name: v} for pt in points for v in values]
    return points


def run_sweep(
    measure: Callable[[Params], "int | tuple[int, dict[str, float]]"],
    points: Iterable[Params],
) -> list[SweepPoint]:
    """Measure every parameter point.

    ``measure`` returns the cycle count, optionally paired with extra
    metrics.  Exceptions propagate — a failing point is a bug, not data.
    """
    results: list[SweepPoint] = []
    for q in points:
        out = measure(q)
        if isinstance(out, tuple):
            cycles, extra = out
        else:
            cycles, extra = out, {}
        results.append(SweepPoint(params=q, cycles=int(cycles), extra=dict(extra)))
    return results
