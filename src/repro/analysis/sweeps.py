"""Parameter-sweep driver.

The table- and figure-reproduction benchmarks all share one shape: run an
operation over a grid of ``(n, k, p, w, l, d)`` points, record measured
time units next to the Table I prediction and Table II bound, then fit
and check.  :func:`run_sweep` factors that loop; a
:class:`SweepPoint` is one row of the resulting data.

Since the executor layer landed, :func:`run_sweep` can also shard the
grid across worker processes (``jobs=``) and memoize the results in the
persistent on-disk cache (``cache=``) — see
:class:`repro.analysis.executor.SweepExecutor` and the "Parallel sweeps
& the result cache" section of ``docs/PERFORMANCE.md``.  At the default
``jobs=1, cache=False`` the behavior is the historical in-process loop,
byte-identical including exception propagation.
"""

from __future__ import annotations

import pathlib
from typing import Callable, Iterable, Sequence

from repro.analysis.executor import SweepExecutor, SweepPoint, SweepProgress
from repro.analysis.terms import Params

__all__ = ["SweepPoint", "run_sweep", "grid"]


def grid(**axes: Sequence) -> list[dict]:
    """Cartesian product of named axes, as a list of keyword dicts.

    >>> grid(n=[4, 8], l=[1, 2])
    [{'n': 4, 'l': 1}, {'n': 4, 'l': 2}, {'n': 8, 'l': 1}, {'n': 8, 'l': 2}]
    """
    points: list[dict] = [{}]
    for name, values in axes.items():
        points = [{**pt, name: v} for pt in points for v in values]
    return points


def run_sweep(
    measure: Callable[[Params], "int | tuple[int, dict[str, float]]"],
    points: Iterable[Params],
    *,
    jobs: int | str = 1,
    cache: bool = False,
    cache_dir: "str | pathlib.Path | None" = None,
    mode: str | None = None,
    label: str | None = None,
    progress: "Callable[[SweepProgress], None] | None" = None,
) -> list[SweepPoint]:
    """Measure every parameter point.

    ``measure`` returns the cycle count, optionally paired with extra
    metrics.  Exceptions propagate — a failing point is a bug, not data.
    Results are always returned in grid order.

    ``jobs`` shards the grid across worker processes (``"auto"`` =
    ``min(points, cpu_count)``); with ``jobs != 1`` the measure callable
    must be picklable (a module-level function or a ``functools.partial``
    of one).  ``cache=True`` memoizes results in the persistent sweep
    cache (keyed by measure identity, point, ``mode``, and the repro
    version fingerprint); ``mode`` should name the engine mode baked
    into ``measure``.  ``label`` tags ``progress`` callbacks and is not
    part of the cache key.
    """
    executor = SweepExecutor(
        jobs=jobs, cache=cache, cache_dir=cache_dir, progress=progress
    )
    return executor.run(measure, points, mode=mode, label=label)
