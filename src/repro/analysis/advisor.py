"""Kernel performance advisor.

The paper's pitch is that the memory machine models predict GPU
performance pathologies analytically.  This module packages that pitch
as a tool: given a :class:`~repro.machine.report.RunReport` and the
machine parameters, it classifies what bound the kernel and produces
the diagnoses a profiler would —

* **conflict / coalescing efficiency** per memory unit (useful slots vs
  issued slots),
* **regime classification**: latency-bound, bandwidth-bound, or
  compute-bound, from the model's own quantities,
* **occupancy advice**: whether more threads could still hide latency
  (the ``p >= lw`` rule of Theorems 7/9).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.machine.pipeline import UnitStats
from repro.machine.report import RunReport
from repro.params import HMMParams, MachineParams

__all__ = ["Regime", "UnitDiagnosis", "Advice", "diagnose"]


class Regime(enum.Enum):
    """What dominates a kernel's time units."""

    LATENCY_BOUND = "latency-bound"
    BANDWIDTH_BOUND = "bandwidth-bound"
    COMPUTE_BOUND = "compute-bound"


@dataclass(frozen=True)
class UnitDiagnosis:
    """Per-memory-unit access quality."""

    unit: str
    transactions: int
    slots: int
    #: Fraction of issued slots that were unavoidable (1.0 = perfect
    #: coalescing / zero conflicts; 0.5 = half the slots were waste).
    efficiency: float
    #: Average requests served per slot (width = ideal).
    requests_per_slot: float

    def is_clean(self, tolerance: float = 0.999) -> bool:
        """True when the unit saw (almost) no avoidable slots."""
        return self.efficiency >= tolerance


@dataclass(frozen=True)
class Advice:
    """The advisor's verdict for one kernel launch."""

    regime: Regime
    units: dict[str, UnitDiagnosis]
    #: Threads launched vs the lw threshold that hides the latency.
    occupancy_ratio: float
    #: Human-readable findings, most important first.
    findings: tuple[str, ...]

    def render(self) -> str:
        lines = [f"regime: {self.regime.value}"]
        for name in sorted(self.units):
            d = self.units[name]
            lines.append(
                f"  {name}: {d.transactions} transactions, efficiency "
                f"{d.efficiency:.0%}, {d.requests_per_slot:.1f} requests/slot"
            )
        lines.append(f"occupancy: p = {self.occupancy_ratio:.2f} x (l*w)")
        for f in self.findings:
            lines.append(f"- {f}")
        return "\n".join(lines)


def _diagnose_unit(name: str, stats: UnitStats, width: int) -> UnitDiagnosis:
    useful = stats.slots - stats.excess_slots
    efficiency = useful / stats.slots if stats.slots else 1.0
    rps = stats.requests / stats.slots if stats.slots else 0.0
    return UnitDiagnosis(
        unit=name,
        transactions=stats.transactions,
        slots=stats.slots,
        efficiency=efficiency,
        requests_per_slot=rps,
    )


def diagnose(
    report: RunReport,
    params: "MachineParams | HMMParams",
) -> Advice:
    """Analyse a launch: access quality, binding regime, occupancy.

    The regime is inferred from the model's own accounting: the port
    with the most issued slots sets the bandwidth floor; the latency
    floor is the serial chain implied by the launch shape; the compute
    floor is the charged per-warp compute time.
    """
    width = params.width
    if isinstance(params, HMMParams):
        latency = params.global_latency
    else:
        latency = params.latency

    units = {
        name: _diagnose_unit(name, stats, width)
        for name, stats in report.unit_stats.items()
    }

    # Floors implied by the model.
    bandwidth_floor = max(
        (stats.slots for stats in report.unit_stats.values()), default=0
    )
    global_stats = None
    try:
        global_stats = report.global_stats()
    except KeyError:
        pass
    if global_stats is not None and report.num_warps > 0:
        # Each warp's own requests serialize at l apart; the pipelined
        # port overlaps warps, so the latency floor is the per-warp
        # transaction chain.
        per_warp_transactions = global_stats.transactions / report.num_warps
        latency_floor = per_warp_transactions * latency
    else:
        latency_floor = 0.0
    compute_floor = (
        report.compute_cycles / report.num_warps if report.num_warps else 0.0
    )

    floors = {
        Regime.BANDWIDTH_BOUND: bandwidth_floor,
        Regime.LATENCY_BOUND: latency_floor,
        Regime.COMPUTE_BOUND: compute_floor,
    }
    regime = max(floors, key=floors.get)

    occupancy_ratio = report.num_threads / (latency * width) if latency else 1.0

    findings: list[str] = []
    for name in sorted(units):
        d = units[name]
        if not d.is_clean(0.95):
            findings.append(
                f"unit {name}: {1 - d.efficiency:.0%} of issued slots are "
                "avoidable (bank conflicts / uncoalesced access) - "
                "restructure the access pattern or pad the layout"
            )
    if regime is Regime.LATENCY_BOUND and occupancy_ratio < 1.0:
        findings.append(
            f"latency-bound at {report.num_threads} threads: raising the "
            f"thread count toward l*w = {latency * width} would hide more "
            "of the global latency (Theorem 7's p >= lw rule)"
        )
    if regime is Regime.BANDWIDTH_BOUND:
        findings.append(
            "bandwidth-bound: the kernel saturates the memory width; only "
            "touching fewer cells (or more memory units) helps"
        )
    if not findings:
        findings.append("no pathologies detected: access is clean and the "
                        "launch shape fits the machine")
    return Advice(
        regime=regime,
        units=units,
        occupancy_ratio=occupancy_ratio,
        findings=tuple(findings),
    )
