"""Composable cost terms for the paper's formulas.

Every bound in Tables I and II is a sum of O-terms in the problem and
machine parameters.  A :class:`Term` pairs a display string with an
evaluator over :class:`Params`; a :class:`Formula` is a named sum of
terms.  Keeping the terms first-class lets the fitting layer regress
measured time units against each term separately — the "shape agreement"
criterion of EXPERIMENTS.md.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable

from repro.errors import ConfigurationError

__all__ = [
    "Params",
    "Term",
    "Formula",
    "T_N", "T_N_P", "T_LOG_N", "T_N_W", "T_NL_P", "T_L_LOG_N", "T_L",
    "T_NK", "T_NK_P", "T_LOG_K", "T_NK_W", "T_NKL_P", "T_L_LOG_K",
    "T_NK_DW", "T_DK_W", "T_DKL_P", "T_ONE",
]


@dataclass(frozen=True)
class Params:
    """Evaluation point: problem size(s) and machine shape.

    ``n`` — input size; ``k`` — convolution kernel length (0 when
    unused); ``p`` — threads/processors; ``w`` — width; ``l`` — latency;
    ``d`` — number of DMMs.
    """

    n: int
    p: int = 1
    w: int = 32
    l: int = 1  # noqa: E741 - paper notation
    d: int = 1
    k: int = 0

    def __post_init__(self) -> None:
        if self.n < 1:
            raise ConfigurationError(f"n must be >= 1, got {self.n}")
        for name in ("p", "w", "l", "d"):
            if getattr(self, name) < 1:
                raise ConfigurationError(
                    f"{name} must be >= 1, got {getattr(self, name)}"
                )
        if self.k < 0:
            raise ConfigurationError(f"k must be >= 0, got {self.k}")


@dataclass(frozen=True)
class Term:
    """One O-term: a display string plus its value at a parameter point."""

    text: str
    evaluate: Callable[[Params], float]

    def __call__(self, params: Params) -> float:
        return float(self.evaluate(params))


@dataclass(frozen=True)
class Formula:
    """A named sum of terms, e.g. ``O(n/w + nl/p + l·log n)``."""

    name: str
    terms: tuple[Term, ...]

    def __call__(self, params: Params) -> float:
        """Value of the sum of terms at ``params``."""
        return sum(t(params) for t in self.terms)

    def max_term(self, params: Params) -> float:
        """Value of the dominant term — a valid lower-bound proxy when the
        formula's terms are each individually necessary."""
        return max(t(params) for t in self.terms)

    def text(self) -> str:
        """Display string, ``O(a + b + ...)``."""
        return "O(" + " + ".join(t.text for t in self.terms) + ")"

    def term_values(self, params: Params) -> dict[str, float]:
        """Per-term values, keyed by display text."""
        return {t.text: t(params) for t in self.terms}


def _log2(x: float) -> float:
    """``log2`` clamped below at 1 (the paper's trees always have at
    least one level of work; avoids zero terms for n = 1 edge cases)."""
    return max(1.0, math.log2(max(x, 1.0)))


# -- shared vocabulary of terms ------------------------------------------------
T_ONE = Term("1", lambda q: 1.0)
T_N = Term("n", lambda q: q.n)
T_N_P = Term("n/p", lambda q: q.n / q.p)
T_LOG_N = Term("log n", lambda q: _log2(q.n))
T_N_W = Term("n/w", lambda q: q.n / q.w)
T_NL_P = Term("nl/p", lambda q: q.n * q.l / q.p)
T_L = Term("l", lambda q: q.l)
T_L_LOG_N = Term("l log n", lambda q: q.l * _log2(q.n))

T_NK = Term("nk", lambda q: q.n * q.k)
T_NK_P = Term("nk/p", lambda q: q.n * q.k / q.p)
T_LOG_K = Term("log k", lambda q: _log2(max(q.k, 1)))
T_NK_W = Term("nk/w", lambda q: q.n * q.k / q.w)
T_NKL_P = Term("nkl/p", lambda q: q.n * q.k * q.l / q.p)
T_L_LOG_K = Term("l log k", lambda q: q.l * _log2(max(q.k, 1)))
T_NK_DW = Term("nk/dw", lambda q: q.n * q.k / (q.d * q.w))
T_DK_W = Term("dk/w", lambda q: q.d * q.k / q.w)
T_DKL_P = Term("dkl/p", lambda q: q.d * q.k * q.l / q.p)
