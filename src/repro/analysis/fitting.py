"""Shape-agreement fitting: measured time units vs. formula terms.

Reproducing a complexity bound empirically means showing that measured
time is a bounded, non-negative combination of the bound's terms across a
parameter sweep.  :func:`fit_terms` performs a non-negative least-squares
regression of measured cycles on the per-term values and reports the
coefficients and the coefficient of determination: coefficients of order
1 and an R² near 1 mean the formula explains the measurements —
"Table I holds in shape".
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.terms import Formula, Params
from repro.errors import ConfigurationError

__all__ = ["FitResult", "fit_terms", "nnls"]


@dataclass(frozen=True)
class FitResult:
    """Outcome of a non-negative least-squares fit."""

    #: Term display strings, in formula order.
    term_names: tuple[str, ...]
    #: Fitted non-negative coefficients, one per term.
    coefficients: tuple[float, ...]
    #: Coefficient of determination of the fit.
    r_squared: float
    #: Largest |measured - predicted| / measured over the sweep.
    max_relative_error: float

    def coefficient_for(self, term_name: str) -> float:
        """Coefficient of the named term (KeyError when absent)."""
        try:
            return self.coefficients[self.term_names.index(term_name)]
        except ValueError:
            raise KeyError(term_name) from None

    def predict(self, formula: Formula, params: Params) -> float:
        """Fitted prediction at a new parameter point."""
        return sum(
            c * t(params) for c, t in zip(self.coefficients, formula.terms)
        )

    def describe(self) -> str:
        parts = [
            f"{c:.3g}*{name}" for c, name in zip(self.coefficients, self.term_names)
        ]
        return (
            f"fit: {' + '.join(parts)}  (R^2={self.r_squared:.4f}, "
            f"max rel err={self.max_relative_error:.3f})"
        )


def nnls(design: np.ndarray, target: np.ndarray) -> np.ndarray:
    """Non-negative least squares.

    Uses :func:`scipy.optimize.nnls` when scipy is importable, otherwise
    the Lawson-Hanson active-set algorithm implemented here (the design
    matrices are tiny: at most seven columns).
    """
    try:
        from scipy.optimize import nnls as scipy_nnls

        coef, _ = scipy_nnls(design, target)
        return coef
    except ImportError:  # pragma: no cover - scipy present in the test env
        return _lawson_hanson(design, target)


def _lawson_hanson(a: np.ndarray, b: np.ndarray, max_iter: int = 200) -> np.ndarray:
    """Reference Lawson-Hanson NNLS (fallback when scipy is missing)."""
    m, n = a.shape
    x = np.zeros(n)
    passive: list[int] = []
    w = a.T @ (b - a @ x)
    for _ in range(max_iter):
        candidates = [j for j in range(n) if j not in passive and w[j] > 1e-12]
        if not candidates:
            break
        passive.append(max(candidates, key=lambda j: w[j]))
        while True:
            ap = a[:, passive]
            z, *_ = np.linalg.lstsq(ap, b, rcond=None)
            if (z > 1e-12).all():
                x[:] = 0.0
                x[passive] = z
                break
            # Step back to the feasible boundary, drop zeroed indices.
            xp = x[passive]
            neg = z <= 1e-12
            with np.errstate(divide="ignore", invalid="ignore"):
                ratios = np.where(neg, xp / np.maximum(xp - z, 1e-300), np.inf)
            alpha = min(ratios.min(), 1.0)
            x[passive] = xp + alpha * (z - xp)
            passive = [j for j, v in zip(passive, x[passive]) if v > 1e-12]
            if not passive:
                return np.zeros(n)
        w = a.T @ (b - a @ x)
    return x


def fit_terms(
    formula: Formula,
    points: list[Params],
    measured: list[float] | np.ndarray,
) -> FitResult:
    """Fit measured cycle counts to a formula's terms over a sweep.

    Requires at least as many sweep points as terms.  Returns the
    non-negative coefficients, R², and the worst relative error.
    """
    y = np.asarray(measured, dtype=np.float64)
    if len(points) != y.size:
        raise ConfigurationError(
            f"{len(points)} parameter points but {y.size} measurements"
        )
    if y.size < len(formula.terms):
        raise ConfigurationError(
            f"need at least {len(formula.terms)} points to fit "
            f"{formula.text()}, got {y.size}"
        )
    design = np.array(
        [[t(q) for t in formula.terms] for q in points], dtype=np.float64
    )
    coef = nnls(design, y)
    pred = design @ coef
    residual = y - pred
    ss_res = float(residual @ residual)
    ss_tot = float(((y - y.mean()) ** 2).sum())
    r2 = 1.0 - ss_res / ss_tot if ss_tot > 0 else 1.0
    with np.errstate(divide="ignore", invalid="ignore"):
        rel = np.where(y > 0, np.abs(residual) / y, 0.0)
    return FitResult(
        term_names=tuple(t.text for t in formula.terms),
        coefficients=tuple(float(c) for c in coef),
        r_squared=r2,
        max_relative_error=float(rel.max()) if rel.size else 0.0,
    )
